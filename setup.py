"""Setup shim for offline environments lacking the ``wheel`` package.

``pip install -e . --no-build-isolation`` needs ``bdist_wheel`` for PEP-660
editable installs; this shim lets pip fall back to the legacy
``setup.py develop`` path (``pip install -e . --no-use-pep517``) when wheels
are unavailable.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
