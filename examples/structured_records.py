#!/usr/bin/env python3
"""Structured records: field-aware similarity and CSV round-tripping.

Real dedup inputs are usually tables, not strings.  This example builds a
small restaurant table with structured fields, saves/loads it as CSV,
scores pairs with a per-field similarity config (Jaro-Winkler on names,
exact match on city, token overlap on the rest), and runs ACD on top.

Run:  python examples/structured_records.py
"""

import tempfile
from pathlib import Path

from repro import (
    AnswerFile,
    DifficultyModel,
    Dataset,
    GoldStandard,
    Record,
    WorkerPool,
    build_candidate_set,
    f1_score,
    run_acd,
)
from repro.datasets import load_dataset, save_dataset
from repro.similarity import (
    FieldRule,
    FieldSimilarityConfig,
    exact_match,
    jaro_winkler_similarity,
    token_jaccard,
)

ROWS = [
    # (entity, name, street, city)
    (0, "chez panisse", "1517 shattuck ave", "berkeley"),
    (0, "chez panise restaurant", "1517 shattuck", "berkeley"),
    (1, "chez panini", "2115 allston way", "berkeley"),
    (2, "blue bottle cafe", "300 webster st", "oakland"),
    (2, "blue bottle coffee", "300 webster", "oakland"),
    (3, "blue plate", "3218 mission st", "san francisco"),
]


def build_dataset() -> Dataset:
    records = []
    entity_of = {}
    for record_id, (entity, name, street, city) in enumerate(ROWS):
        records.append(Record.make(
            record_id, f"{name} {street} {city}",
            {"name": name, "street": street, "city": city},
        ))
        entity_of[record_id] = entity
    return Dataset(name="bayarea", records=records,
                   gold=GoldStandard(entity_of))


def main() -> None:
    dataset = build_dataset()

    # Round-trip through CSV, as a user with their own table would.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "restaurants.csv"
        save_dataset(dataset, path)
        print(f"CSV written: {path.name}")
        print(path.read_text().splitlines()[0])  # the header
        dataset = load_dataset(path)

    # Field-aware similarity: names fuzzily, cities exactly.
    config = FieldSimilarityConfig(
        [
            FieldRule("name", jaro_winkler_similarity, weight=3.0),
            FieldRule("street", token_jaccard, weight=2.0),
            FieldRule("city", exact_match, weight=1.0),
        ],
        fallback=token_jaccard,
    )
    similarity = config.as_similarity_function("restaurant-fields")
    candidates = build_candidate_set(
        dataset.records, similarity, threshold=0.5, use_token_blocking=False
    )
    print(f"\ncandidate pairs (field similarity > 0.5):")
    for a, b in candidates:
        print(f"  {dataset.record(a).field('name')!r} ~ "
              f"{dataset.record(b).field('name')!r} "
              f"f={candidates.machine_scores[(a, b)]:.2f}")

    # A light simulated crowd settles the confusable ones.
    answers = AnswerFile(
        dataset.gold,
        WorkerPool(DifficultyModel(easy_error=0.05, seed=3), num_workers=3),
    )
    result = run_acd(dataset.record_ids, candidates, answers, seed=1)

    print(f"\nACD F1: {f1_score(result.clustering, dataset.gold):.3f} "
          f"({result.stats.pairs_issued} pairs crowdsourced)")
    for cluster in result.clustering.as_sets():
        names = [dataset.record(r).field("name") for r in sorted(cluster)]
        print(f"  cluster: {names}")


if __name__ == "__main__":
    main()
