#!/usr/bin/env python3
"""The paper's worked examples, executed line by line.

Walks through the three illustrations the paper uses to explain ACD —
Example 1 (Table 2's optimal clustering), the three Figure 2 pivot cases of
Section 4.2, and the full Appendix B refinement walkthrough (Example 3) —
each reproduced by the library and checked against the paper's stated
outcome.

Run:  python examples/paper_walkthrough.py
"""

from repro.core import (
    Clustering,
    Permutation,
    crowd_refine,
    lambda_objective,
    pc_pivot,
    waste_estimates,
)
from repro.crowd import CrowdOracle, ScriptedAnswers
from repro.pruning import CandidateSet, CandidateGraph


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


NAMES = "abcdef"
IDS = {name: index for index, name in enumerate(NAMES)}


def example_1() -> None:
    banner("Example 1 — Table 2's optimal clustering")
    scores = {
        ("a", "b"): 0.81, ("b", "c"): 0.75, ("a", "c"): 0.73,
        ("d", "e"): 0.72, ("d", "f"): 0.70, ("e", "f"): 0.69,
        ("c", "d"): 0.45, ("a", "d"): 0.43, ("a", "e"): 0.37,
    }
    numeric = {(IDS[x], IDS[y]): value for (x, y), value in scores.items()}

    def lookup(a, b):
        return numeric.get((min(a, b), max(a, b)), 0.0)

    paper_clustering = Clustering([{0, 1, 2}, {3, 4, 5}])
    value = lambda_objective(paper_clustering, numeric, lookup)
    print(f"Λ(R) of {{a,b,c}}, {{d,e,f}} = {value:.2f}")
    alternative = Clustering([{0, 1, 2, 3}, {4, 5}])
    print(f"Λ(R) of {{a,b,c,d}}, {{e,f}} = "
          f"{lambda_objective(alternative, numeric, lookup):.2f}  (worse)")


def figure_2() -> None:
    banner("Figure 2 — the three pivot-distance cases")
    edges = [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d"),
             ("a", "e"), ("d", "e"), ("e", "f"), ("d", "f")]
    numeric_edges = [(IDS[x], IDS[y]) for x, y in edges]
    graph = CandidateGraph(range(6), numeric_edges)
    for case, pivots in (("1 (distance > 2)", "bf"),
                         ("2 (distance = 2)", "be"),
                         ("3 (adjacent)", "bc")):
        waste = waste_estimates(graph, [IDS[p] for p in pivots])
        print(f"case {case}: pivots {tuple(pivots)} -> "
              f"Equation-3 waste bound {waste}")


def example_3() -> None:
    banner("Example 3 (Appendix B) — generation then refinement")
    confidences = {
        ("a", "b"): 0.9, ("a", "c"): 0.9, ("b", "c"): 0.9, ("c", "d"): 0.6,
        ("a", "e"): 0.3, ("d", "e"): 0.8, ("e", "f"): 0.9,
        ("a", "d"): 0.4, ("d", "f"): 0.8,
    }
    numeric = {(IDS[x], IDS[y]): v for (x, y), v in confidences.items()}
    candidates = CandidateSet(
        pairs=tuple(sorted((min(a, b), max(a, b)) for a, b in numeric)),
        machine_scores={(min(a, b), max(a, b)): v
                        for (a, b), v in numeric.items()},
        threshold=0.3,
    )
    oracle = CrowdOracle(ScriptedAnswers(numeric, num_workers=5))
    permutation = Permutation([IDS[x] for x in "cebdaf"])

    clustering = pc_pivot(range(6), candidates, oracle, epsilon=0.4,
                          permutation=permutation)
    def show(partition):
        return sorted(
            "".join(sorted(NAMES[r] for r in cluster))
            for cluster in partition.as_sets()
        )
    print(f"after PC-Pivot (pivots c, e in one batch): {show(clustering)}")
    print(f"  pairs crowdsourced so far: {oracle.stats.pairs_issued}, "
          f"iterations: {oracle.stats.iterations}")

    refined = crowd_refine(clustering, candidates, oracle)
    print(f"after Crowd-Refine: {show(refined)}")
    print(f"  total pairs crowdsourced: {oracle.stats.pairs_issued} "
          f"(the refinement asked exactly (a,d) and (d,f))")


if __name__ == "__main__":
    example_1()
    figure_2()
    example_3()
