#!/usr/bin/env python3
"""End-to-end on the full platform simulator: ACD against a living crowd.

Everything at once: a Restaurant dataset, a worker population with mixed
reliabilities, and the discrete-event platform (HIT packing, distinct-worker
assignments, per-worker speeds, payments).  ACD's crowd batches become
posted HIT batches; afterwards we read the audit trail — money spent,
simulated wall-clock, top earners — and re-aggregate the collected votes
with Dawid-Skene to see what truth inference would have added.

Run:  python examples/full_platform_run.py
"""

from repro import f1_score, prepare_instance, run_acd
from repro.crowd import (
    PlatformAnswerFile,
    PlatformSimulator,
    Workforce,
    format_duration,
)
from repro.crowd.truth_inference import dawid_skene
from repro.experiments import difficulty_model


def main() -> None:
    instance = prepare_instance("restaurant", "3w", scale=0.3, seed=6)
    print(f"{len(instance.dataset)} records, "
          f"{len(instance.candidates)} candidate pairs")

    workforce = Workforce(size=120, reliability_alpha=8.0,
                          reliability_beta=1.4, seed=11)
    platform = PlatformSimulator(
        workforce=workforce,
        gold=instance.dataset.gold,
        difficulty=difficulty_model("restaurant"),
        pairs_per_hit=20,
        assignments_per_hit=3,
        concurrent_workers=15,
        seed=11,
    )
    answers = PlatformAnswerFile(platform)

    result = run_acd(instance.record_ids, instance.candidates, answers,
                     seed=3)
    f1 = f1_score(result.clustering, instance.dataset.gold)

    print("\nrun outcome:")
    print(f"  F1:                 {f1:.3f}")
    print(f"  clusters:           {len(result.clustering)}")
    print(f"  pairs crowdsourced: {result.stats.pairs_issued}")
    print(f"  platform batches:   {len(platform.receipts)}")
    print(f"  total cost:         ${platform.total_cost_cents() / 100:.2f}")
    print(f"  simulated time:     {format_duration(platform.clock_seconds)}")

    earnings = sorted(platform.earnings().items(), key=lambda kv: -kv[1])
    print("\ntop-earning workers:")
    reliability = {w.worker_id: w.reliability for w in workforce}
    for worker_id, cents in earnings[:5]:
        print(f"  worker {worker_id:3d}: {cents / 100:5.2f}$ "
              f"(reliability {reliability[worker_id]:.2f})")

    # Hindsight: what would Dawid-Skene have made of the same votes?
    votes = platform.all_votes()
    inferred = dawid_skene(votes)
    flips = sum(
        1 for pair, posterior in inferred.posteriors.items()
        if (posterior > 0.5) != (
            sum(1 for _, v in votes[pair] if v) / len(votes[pair]) > 0.5
        )
    )
    print(f"\ntruth inference over the same votes would flip {flips} "
          f"of {len(votes)} answers")


if __name__ == "__main__":
    main()
