#!/usr/bin/env python3
"""The paper's future work, implemented: adaptive worker assignment.

Section 8 proposes assigning more crowd workers to more difficult record
pairs.  This example compares three policies on the Product dataset —
flat 3-worker panels, flat 9-worker panels, and adaptive escalation
(3 workers, re-asking with a 9 panel whenever the initial vote splits) —
and shows where escalation pays and where it cannot.

Run:  python examples/adaptive_crowd.py
"""

from repro.crowd import AdaptiveAnswerFile, AnswerFile, WorkerPool
from repro.eval.ascii import bar_chart
from repro.experiments import difficulty_model, prepare_instance


def evaluate(dataset_name: str) -> None:
    instance = prepare_instance(dataset_name, "3w", scale=0.4, seed=5)
    gold = instance.dataset.gold
    difficulty = difficulty_model(dataset_name)
    pairs = list(instance.candidates.pairs)

    policies = {
        "flat 3 workers": AnswerFile(gold, WorkerPool(difficulty, 3)),
        "flat 9 workers": AnswerFile(gold, WorkerPool(difficulty, 9)),
        "adaptive 3->9": AdaptiveAnswerFile(
            gold, WorkerPool(difficulty, 3), escalated_workers=9
        ),
    }

    print(f"\n=== {dataset_name} ({len(pairs)} candidate pairs) ===")
    errors = {}
    votes = {}
    for name, answers in policies.items():
        answers.prefetch(pairs)
        errors[name] = answers.majority_error_rate(pairs)
        if isinstance(answers, AdaptiveAnswerFile):
            votes[name] = answers.total_votes_spent()
            print(f"  {name}: escalated {answers.escalation_rate():.0%} of pairs")
        else:
            votes[name] = len(pairs) * answers.num_workers

    print("\nmajority error rate:")
    print(bar_chart(errors, width=30, value_format="{:.2%}"))
    print("\nworker votes spent:")
    print(bar_chart({k: float(v) for k, v in votes.items()}, width=30,
                    value_format="{:.0f}"))


def main() -> None:
    # Product: worker errors mostly independent -> escalation matches the
    # 9-worker panel's accuracy at a fraction of its cost.
    evaluate("product")
    # Paper: hard pairs are near coin flips for every worker -> not even a
    # 9-worker panel helps much (this is why Table 3's 5w barely beats 3w).
    evaluate("paper")


if __name__ == "__main__":
    main()
