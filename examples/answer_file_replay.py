#!/usr/bin/env python3
"""The answer-file protocol: record once, replay everywhere.

Section 6.1 of the paper posts all candidate pairs to AMT once, records the
answers in a local file F, and replays that file for every method — the
only way to compare methods fairly on identical crowd behaviour.  This
example does exactly that: it materializes the simulated crowd's answers
for the whole candidate set, saves them to JSON, loads them back, and runs
two methods against the recorded file.

Run:  python examples/answer_file_replay.py
"""

import tempfile
from pathlib import Path

from repro import prepare_instance
from repro.crowd import CrowdOracle, load_answers, save_answers
from repro.baselines import crowder_plus, transm
from repro.eval import f1_score


def main() -> None:
    instance = prepare_instance("product", "3w", scale=0.2, seed=9)
    print(f"{len(instance.dataset)} records, "
          f"{len(instance.candidates)} candidate pairs")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "answers_F.json"

        # 1. Record: ask the (simulated) crowd everything once.
        written = save_answers(instance.answers, instance.candidates.pairs,
                               path)
        print(f"recorded {written} answers to {path.name} "
              f"({path.stat().st_size} bytes)")

        # 2. Replay: every method reads the same file.
        recorded = load_answers(path)

        for name, method in (("TransM", transm), ("CrowdER+", crowder_plus)):
            oracle = CrowdOracle(recorded)
            clustering = method(instance.record_ids, instance.candidates,
                                oracle)
            print(f"  {name:9s} F1 = "
                  f"{f1_score(clustering, instance.dataset.gold):.3f}  "
                  f"(pairs: {oracle.stats.pairs_issued}, "
                  f"iterations: {oracle.stats.iterations})")

        # 3. Replays are bit-identical: run TransM again.
        again = transm(instance.record_ids, instance.candidates,
                       CrowdOracle(load_answers(path)))
        first = transm(instance.record_ids, instance.candidates,
                       CrowdOracle(recorded))
        assert again.as_sets() == first.as_sets()
        print("replay check: identical clusterings across loads ✓")


if __name__ == "__main__":
    main()
