#!/usr/bin/env python3
"""The paper's opening example: Chevrolet vs Chevy vs Chevron.

Machine similarity finds all three brand records alike; only Chevrolet and
Chevy are the same brand.  This example shows (1) why the machine scores
alone mislead, (2) how ACD's correlation clustering resolves the records
with the crowd, and (3) how a TransM-style transitive closure collapses two
entities on a single crowd mistake (Figure 1 of the paper) while ACD
resists it.

Run:  python examples/brand_disambiguation.py
"""

from repro.baselines import transm
from repro.core import run_acd
from repro.crowd import CrowdOracle, ScriptedAnswers
from repro.datasets import Record
from repro.pruning import CandidateSet
from repro.similarity import qgram_jaccard


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def brand_example() -> None:
    banner("machine similarity confuses the three brands")
    records = [
        Record(0, "chevrolet"),
        Record(1, "chevy"),
        Record(2, "chevron"),
    ]
    for i, a in enumerate(records):
        for b in records[i + 1:]:
            score = qgram_jaccard(a.text, b.text, q=2)
            print(f"  f({a.text!r}, {b.text!r}) = {score:.2f}")

    # All pairs survive pruning; the crowd knows better than the machine.
    candidates = CandidateSet(
        pairs=((0, 1), (0, 2), (1, 2)),
        machine_scores={(0, 1): 0.45, (0, 2): 0.55, (1, 2): 0.4},
        threshold=0.3,
    )
    answers = ScriptedAnswers(
        {(0, 1): 1.0, (0, 2): 0.0, (1, 2): 0.0}, num_workers=3
    )
    result = run_acd([0, 1, 2], candidates, answers, seed=0)
    banner("ACD with the crowd")
    for cluster in result.clustering.as_sets():
        names = sorted(records[r].text for r in cluster)
        print(f"  cluster: {names}")


def figure1_example() -> None:
    banner("Figure 1: one crowd mistake under transitivity")
    # Two 3-record entities; every within-group pair answered correctly,
    # one cross pair (a2, b2) answered WRONG (marked duplicate).
    labels = ["a1", "a2", "a3", "b1", "b2", "b3"]
    scores = {}
    confidences = {}
    for group in ((0, 1, 2), (3, 4, 5)):
        for i, x in enumerate(group):
            for y in group[i + 1:]:
                scores[(x, y)] = 0.9
                confidences[(x, y)] = 1.0
    scores[(1, 4)] = 0.5        # the (a2, b2) cross pair
    confidences[(1, 4)] = 1.0   # crowd mistake: "duplicate"

    candidates = CandidateSet(
        pairs=tuple(sorted(scores)), machine_scores=scores, threshold=0.3
    )
    answers = ScriptedAnswers(confidences, num_workers=3)

    transm_clusters = transm(range(6), candidates,
                             CrowdOracle(answers))
    print("  TransM (transitive closure):")
    for cluster in transm_clusters.as_sets():
        print(f"    {sorted(labels[r] for r in cluster)}")

    acd_result = run_acd(range(6), candidates, answers, seed=0)
    print("  ACD (correlation clustering + refinement):")
    for cluster in acd_result.clustering.as_sets():
        print(f"    {sorted(labels[r] for r in cluster)}")


if __name__ == "__main__":
    brand_example()
    figure1_example()
