#!/usr/bin/env python3
"""Bring-your-own-records: run ACD on data you define yourself.

Shows the lower-level API surface: build ``Record`` objects, pick a machine
similarity, run the pruning phase, define the crowd (here: a simulated
worker pool over your own gold labels — swap in a real crowdsourcing client
by implementing the two-method AnswerFile interface), and run the pipeline.

Run:  python examples/custom_dataset.py
"""

from repro import (
    AnswerFile,
    DifficultyModel,
    GoldStandard,
    Record,
    WorkerPool,
    build_candidate_set,
    f1_score,
    run_acd,
)
from repro.similarity import SimilarityFunction, token_jaccard

# ---------------------------------------------------------------------------
# 1. Your records: music track listings from three "sources".
# ---------------------------------------------------------------------------
RAW = [
    # entity 0: the same live recording, three renderings
    (0, "miles davis so what live at newport 1958"),
    (0, "so what m davis newport live 58"),
    (0, "miles davis so what newport"),
    # entity 1: a different track that *looks* similar
    (1, "miles davis so near so far seven steps"),
    (1, "so near so far miles davis"),
    # entity 2: unrelated
    (2, "john coltrane giant steps studio 1959"),
    (2, "giant steps coltrane 59"),
    # entity 3: singleton
    (3, "bill evans waltz for debby village vanguard"),
]


def main() -> None:
    records = [Record(i, text) for i, (_, text) in enumerate(RAW)]
    gold = GoldStandard({i: entity for i, (entity, _) in enumerate(RAW)})

    # 2. Pruning phase: any SimilarityFunction works; token Jaccard here.
    similarity = SimilarityFunction("jaccard", token_jaccard)
    candidates = build_candidate_set(records, similarity, threshold=0.25)
    print(f"candidate pairs after pruning: {len(candidates)}")
    for a, b in candidates:
        print(f"  ({a}, {b}) f = {candidates.machine_scores[(a, b)]:.2f}")

    # 3. The crowd: simulated workers with a 5% per-worker error rate and
    #    a sprinkle of genuinely confusing pairs.  To plug in a real crowd,
    #    provide any object with .confidence(a, b) -> [0, 1] and
    #    .num_workers.
    workers = WorkerPool(
        DifficultyModel(easy_error=0.05, hard_fraction=0.1, seed=7),
        num_workers=3,
    )
    answers = AnswerFile(gold, workers)

    # 4. Run ACD.
    result = run_acd([r.record_id for r in records], candidates, answers,
                     seed=1)
    print(f"\ncrowdsourced {result.stats.pairs_issued} pairs in "
          f"{result.stats.iterations} iterations "
          f"({result.stats.monetary_cost_cents:.0f}¢ at AMT rates)")

    print(f"F1 against gold: {f1_score(result.clustering, gold):.3f}")
    print("\nrecovered clusters:")
    for cluster in result.clustering.as_sets():
        print("  ---")
        for record_id in sorted(cluster):
            print(f"  [{record_id}] {records[record_id].text}")


if __name__ == "__main__":
    main()
