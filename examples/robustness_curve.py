#!/usr/bin/env python3
"""The robustness curve: what happens as the crowd gets worse.

Sweeps the simulated per-worker error rate and charts each method's F1 —
making the paper's central claim (ACD degrades gracefully, transitivity
amplifies errors) visible as a curve rather than two data points.

Run:  python examples/robustness_curve.py
"""

from repro import prepare_instance
from repro.eval.ascii import sparkline
from repro.experiments.robustness import degradation, error_sweep

METHODS = ("ACD", "TransM", "CrowdER+")


def main() -> None:
    instance = prepare_instance("product", "3w", scale=0.3, seed=4)
    print(f"{len(instance.dataset)} records, "
          f"{len(instance.candidates)} candidate pairs")
    print("sweeping per-worker error rate 0% -> 40% ...\n")

    points = error_sweep(
        instance.dataset, instance.candidates,
        easy_errors=(0.0, 0.1, 0.2, 0.3, 0.4),
        methods=METHODS, repetitions=2,
    )

    header = "worker err  majority err  " + "  ".join(
        f"{m:>9s}" for m in METHODS
    )
    print(header)
    print("-" * len(header))
    for point in points:
        row = f"{point.easy_error:>9.0%}  {point.measured_error:>11.1%}  "
        row += "  ".join(f"{point.f1_by_method[m]:>9.3f}" for m in METHODS)
        print(row)

    print("\nF1 curves (left = clean crowd, right = noisy crowd):")
    for method in METHODS:
        series = [point.f1_by_method[method] for point in points]
        lost = degradation(points, method)
        print(f"  {method:9s} {sparkline(series)}   total F1 lost: {lost:+.3f}")

    print(
        "\nreading: TransM's transitive closure turns each wrong answer into"
        "\na cascades of wrong merges; ACD's correlation clustering weighs"
        "\ncontradicting evidence and tracks the much costlier CrowdER+."
    )


if __name__ == "__main__":
    main()
