#!/usr/bin/env python3
"""Quickstart: deduplicate a synthetic Restaurant dataset with ACD.

Walks the full three-phase pipeline of the paper on a small instance:
pruning (machine similarity), PC-Pivot cluster generation, and PC-Refine
cluster refinement — all against a simulated crowd — then reports accuracy
and crowdsourcing costs.

Run:  python examples/quickstart.py
"""

from repro import f1_score, pairwise_scores, prepare_instance, run_method


def main() -> None:
    # One call generates the dataset, runs the pruning phase (Jaccard,
    # τ = 0.3), and opens the simulated crowd answer file for the paper's
    # 3-worker AMT setting.
    instance = prepare_instance("restaurant", "3w", scale=0.25, seed=42)
    dataset = instance.dataset

    print(f"dataset:         {dataset.name}")
    print(f"records:         {len(dataset)}")
    print(f"true entities:   {dataset.num_entities}")
    print(f"candidate pairs: {len(instance.candidates)} "
          f"(machine similarity > {instance.candidates.threshold})")

    print("\nsample records:")
    for record in dataset.records[:5]:
        print(f"  [{record.record_id:3d}] {record.text}")

    # Run the full ACD pipeline (PC-Pivot + PC-Refine).
    result = run_method("ACD", instance, seed=7)

    print("\nACD results:")
    print(f"  F1:                  {result.f1:.3f}")
    print(f"  precision:           {result.precision:.3f}")
    print(f"  recall:              {result.recall:.3f}")
    print(f"  clusters found:      {result.num_clusters:.0f}")
    print(f"  pairs crowdsourced:  {result.pairs_issued:.0f} "
          f"of {len(instance.candidates)} candidates")
    print(f"  crowd iterations:    {result.iterations:.0f}")
    print(f"  HITs posted:         {result.hits:.0f}")

    # Show one recovered cluster next to its gold entity.
    clustering = result.clustering
    biggest = max(clustering.cluster_ids, key=clustering.size)
    print("\nlargest recovered cluster:")
    for record_id in sorted(clustering.members(biggest)):
        print(f"  [{record_id:3d}] {dataset.record(record_id).text}")


if __name__ == "__main__":
    main()
