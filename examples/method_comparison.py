#!/usr/bin/env python3
"""Reproduce the Section 6.3 method comparison on one dataset.

Runs ACD, PC-Pivot, CrowdER+, GCER, TransM, and TransNode on the same
instance — all replaying the same simulated crowd answers, exactly like the
paper's answer-file protocol — and prints the Figure 6/7/8 style rows.

Run:  python examples/method_comparison.py [dataset] [setting] [scale]
      e.g. python examples/method_comparison.py paper 3w 0.4
"""

import sys

from repro import prepare_instance, run_comparison
from repro.experiments.tables import format_comparison


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "paper"
    setting = sys.argv[2] if len(sys.argv) > 2 else "3w"
    scale = float(sys.argv[3]) if len(sys.argv) > 3 else 0.4

    print(f"preparing {dataset} ({setting}, scale {scale}) ...")
    instance = prepare_instance(dataset, setting, scale=scale, seed=1)
    print(f"  {len(instance.dataset)} records, "
          f"{instance.dataset.num_entities} entities, "
          f"{len(instance.candidates)} candidate pairs")

    print("running all methods (randomized ones averaged over 3 runs) ...")
    results = run_comparison(instance, repetitions=3)

    print()
    print(format_comparison(results))
    print()
    crowder = results["CrowdER+"]
    acd = results["ACD"]
    print(f"ACD reaches {acd.f1 / crowder.f1:.0%} of CrowdER+'s F1 while "
          f"crowdsourcing only {acd.pairs_issued / crowder.pairs_issued:.0%} "
          f"of its pairs.")


if __name__ == "__main__":
    main()
