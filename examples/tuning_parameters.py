#!/usr/bin/env python3
"""Tune ACD's two knobs: PC-Pivot's ε and PC-Refine's budget T.

Reproduces miniature versions of the paper's Figure 5 (ε controls the
parallelism/cost trade-off of cluster generation) and Figure 10 (the
per-round refinement budget T = N_m / x), explaining what to look for.

Run:  python examples/tuning_parameters.py
"""

from repro import epsilon_sweep, prepare_instance, threshold_sweep
from repro.experiments.tables import (
    format_epsilon_sweep,
    format_threshold_sweep,
)


def main() -> None:
    instance = prepare_instance("paper", "3w", scale=0.25, seed=3)
    print(f"instance: {len(instance.dataset)} records, "
          f"{len(instance.candidates)} candidate pairs\n")

    print("--- epsilon (PC-Pivot wasted-pair budget, Figure 5) ---")
    sweep = epsilon_sweep(instance, epsilons=(0.0, 0.1, 0.2, 0.4, 0.8),
                          repetitions=3)
    print(format_epsilon_sweep(sweep))
    print(
        "\nreading: iterations fall as ε grows (more pivots per round) while"
        "\npairs rise (wasted questions); the paper picks ε = 0.1 where the"
        "\niteration curve has already flattened but waste is still small.\n"
    )

    print("--- T = N_m / x (PC-Refine per-round budget, Figure 10) ---")
    points = threshold_sweep(instance, divisors=(2.0, 4.0, 8.0, 16.0),
                             repetitions=3)
    print(format_threshold_sweep(points))
    print(
        "\nreading: F1 is insensitive to T (the stopping rule decides"
        "\nquality); small T (large divisor) trims wasted refinement pairs"
        "\nbut too small a T doubles the crowd rounds — the paper lands on"
        "\nx = 8."
    )


if __name__ == "__main__":
    main()
