#!/usr/bin/env python3
"""Analyzing the crowd: confidence spread, calibration, difficult pairs.

Before trusting a crowd (real or simulated), look at its answers: how often
do workers disagree, how does the machine score map to crowd confidence
(the curve ACD's histogram estimator learns), and which pairs sit in the
contested middle?  This example runs that analysis on the Paper dataset —
the one whose 23 % error rate drives the whole refinement story.

Run:  python examples/crowd_calibration.py
"""

from repro import prepare_instance
from repro.crowd import CrowdOracle
from repro.eval import (
    bar_chart,
    calibration_curve,
    confidence_histogram,
    disagreement_pairs,
    sparkline,
    unanimity_rate,
)


def main() -> None:
    instance = prepare_instance("paper", "3w", scale=0.25, seed=2)
    oracle = CrowdOracle(instance.answers)
    answered = oracle.ask_batch(instance.candidates.pairs)
    print(f"{len(answered)} candidate pairs answered by a "
          f"{instance.setting.num_workers}-worker crowd\n")

    # 1. How unanimous is the crowd?
    histogram = confidence_histogram(answered.values(),
                                     num_workers=instance.setting.num_workers)
    print("vote distribution (fraction of workers saying 'duplicate'):")
    print(bar_chart(
        {f"{level:.2f}": float(count) for level, count in histogram.items()},
        width=34, value_format="{:.0f}",
    ))
    print(f"\nunanimous pairs: {unanimity_rate(answered.values()):.0%}")

    # 2. The machine-score -> crowd-confidence calibration curve.
    bands = calibration_curve(
        answered, instance.candidates.machine_scores,
        gold=instance.dataset.gold, num_bands=8,
    )
    print("\ncalibration: machine score band -> mean crowd confidence "
          "(and majority error):")
    for band in bands:
        print(f"  f ∈ [{band.lower:.2f}, {band.upper:.2f})  "
              f"mean f_c = {band.mean_confidence:.2f}  "
              f"error = {band.error_rate:.0%}  (n={band.count})")
    print("confidence curve:",
          sparkline([band.mean_confidence for band in bands]))

    # 3. The contested pairs — where the future-work escalation would go.
    contested = disagreement_pairs(answered)
    print(f"\ncontested pairs (confidence in [0.3, 0.7]): {len(contested)}")
    for a, b in contested[:3]:
        print(f"  f_c={answered[(a, b)]:.2f}  "
              f"{instance.dataset.record(a).text[:40]!r} vs "
              f"{instance.dataset.record(b).text[:40]!r}")


if __name__ == "__main__":
    main()
