"""Ablation: the equi-depth histogram's bucket count m.

The paper fixes m = 20 (following Whang et al. [48]) without sweeping it.
This ablation checks that choice: very coarse histograms (m = 1) blur the
f -> f_c mapping and change which operations PC-Refine tries, while m in
the 10-50 range is stable.  Reported: F1 and refinement pair cost on the
Paper dataset per m.
"""

import pytest

from repro.core.acd import run_acd
from repro.eval.metrics import f1_score
from repro.experiments.tables import format_table

from common import REPETITIONS, emit, instance

BUCKET_COUNTS = (1, 5, 20, 50)


def run_sweep():
    inst = instance("paper", "3w")
    rows = []
    for buckets in BUCKET_COUNTS:
        f1 = 0.0
        refine_pairs = 0.0
        for repetition in range(REPETITIONS):
            result = run_acd(
                inst.record_ids, inst.candidates, inst.answers,
                num_buckets=buckets, seed=100 + repetition,
                pairs_per_hit=inst.setting.pairs_per_hit,
            )
            f1 += f1_score(result.clustering, inst.dataset.gold)
            refine_pairs += result.refinement_stats["pairs_issued"]
        rows.append((buckets, f1 / REPETITIONS, refine_pairs / REPETITIONS))
    return rows


def test_ablation_histogram_buckets(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit("ablation_histogram_paper", format_table(
        ["buckets m", "F1", "refinement pairs"],
        [[str(m), f"{f1:.3f}", f"{pairs:.0f}"] for m, f1, pairs in rows],
    ))
    by_m = {m: f1 for m, f1, _ in rows}
    # The paper's m = 20 must be competitive with every other granularity.
    assert by_m[20] >= max(by_m.values()) - 0.05
