"""Ablation: PC-Refine's operation ranking — benefit-cost ratio vs raw
benefit.

Section 5.2 argues for ranking candidate operations by b*(o)/c(o) rather
than by b*(o) alone: an operation with a big estimated benefit may need
many unknown pairs crowdsourced just to *verify* it.  This ablation runs
full ACD both ways on the Paper dataset and reports F1 and total pair cost.
The expected shape: comparable F1, with the ratio ranking no more expensive
(typically cheaper) in crowdsourced pairs.
"""

import pytest

from repro.core.acd import run_acd
from repro.eval.metrics import f1_score
from repro.experiments.tables import format_table

from common import REPETITIONS, emit, instance


def run_both():
    inst = instance("paper", "3w")
    out = {}
    for ranking in ("ratio", "benefit"):
        f1 = 0.0
        pairs = 0.0
        for repetition in range(REPETITIONS):
            result = run_acd(
                inst.record_ids, inst.candidates, inst.answers,
                ranking=ranking, seed=100 + repetition,
                pairs_per_hit=inst.setting.pairs_per_hit,
            )
            f1 += f1_score(result.clustering, inst.dataset.gold)
            pairs += result.stats.pairs_issued
        out[ranking] = (f1 / REPETITIONS, pairs / REPETITIONS)
    return out


def test_ablation_selection_ranking(benchmark):
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit("ablation_selection_paper", format_table(
        ["ranking", "F1", "total pairs"],
        [[name, f"{f1:.3f}", f"{pairs:.0f}"]
         for name, (f1, pairs) in results.items()],
    ))
    ratio_f1, ratio_pairs = results["ratio"]
    benefit_f1, benefit_pairs = results["benefit"]
    # Equal-quality clustering either way...
    assert abs(ratio_f1 - benefit_f1) < 0.08
    # ...but the cost-aware ranking must not be meaningfully more expensive.
    assert ratio_pairs <= benefit_pairs * 1.1
