"""Pivot-phase benchmark: fast vs reference cluster-generation engine.

Runs the generation phase (PC-Pivot) on every dataset under both pivot
engines and compares the machine-side work: wall-clock seconds, rounds,
and issued pairs.  The crowd answers are pre-populated by an untimed
warm-up run, so the timings measure the per-round graph/permutation work
the fast engine eliminates, not worker-answer synthesis.  Asserts
byte-identical clusterings, issued-pair counts, and per-round diagnostics
across engines while it is at it, then writes ``BENCH_pivot.json`` at the
repo root in the shared BENCH schema.

Standalone (no pytest)::

    REPRO_BENCH_SCALE=1.0 python benchmarks/bench_pivot.py

Environment knobs:
    REPRO_BENCH_SCALE     dataset scale (default 1.0)
    REPRO_BENCH_SEED      dataset/pivot seed (default 1)
    REPRO_BENCH_REPS      timed repetitions per engine (default 3)
"""

from __future__ import annotations

import os
import statistics
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.pc_pivot import PCPivotDiagnostics, pc_pivot  # noqa: E402
from repro.core.pivot_engine import PIVOT_ENGINES  # noqa: E402
from repro.crowd.oracle import CrowdOracle  # noqa: E402
from repro.crowd.stats import CrowdStats  # noqa: E402
from repro.experiments.runner import prepare_instance  # noqa: E402
from repro.perf.timing import (  # noqa: E402
    StageTimings,
    bench_payload,
    run_entry,
    write_bench_json,
)

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))
REPS = int(os.environ.get("REPRO_BENCH_REPS", "3"))
SETTING = "3w"
DATASETS = ("paper", "restaurant", "product")
OUTPUT = REPO_ROOT / "BENCH_pivot.json"


def _run_engine(instance, engine: str, reps: int = 1):
    """``reps`` timed generation passes; returns (timings, diagnostics of
    the last pass, clustering, pairs_issued of one pass)."""
    timings = StageTimings()
    for _ in range(reps):
        stats = CrowdStats(
            pairs_per_hit=instance.setting.pairs_per_hit,
            reward_cents_per_hit=instance.setting.reward_cents_per_hit,
            num_workers=instance.setting.num_workers,
        )
        oracle = CrowdOracle(instance.answers, stats=stats)
        diagnostics = PCPivotDiagnostics()
        with timings.stage("pivot"):
            clustering = pc_pivot(
                instance.record_ids, instance.candidates, oracle,
                seed=SEED, diagnostics=diagnostics, engine=engine,
            )
    return timings, diagnostics, clustering, stats.pairs_issued


def main() -> int:
    runs = {}
    speedups = []
    ref_total = 0.0
    fast_total = 0.0
    for dataset_name in DATASETS:
        instance = prepare_instance(dataset_name, SETTING, scale=SCALE,
                                    seed=SEED)
        # Untimed warm-up: populate the lazy answer file so neither engine
        # is billed for first-ask worker-answer generation.
        _run_engine(instance, "reference")
        per_engine = {}
        for engine in PIVOT_ENGINES:
            timings, diagnostics, clustering, pairs = _run_engine(
                instance, engine, reps=REPS
            )
            per_engine[engine] = (timings, diagnostics, clustering, pairs)
            runs[f"{dataset_name}/{engine}"] = run_entry(
                timings,
                records=len(instance.record_ids),
                candidate_pairs=len(instance.candidates),
                reps=REPS,
                rounds=diagnostics.rounds,
                ks=diagnostics.ks,
                predicted_waste=diagnostics.total_predicted_waste,
                pairs_issued=pairs,
            )

        fast = per_engine["fast"]
        reference = per_engine["reference"]
        # The engines must be interchangeable, not just fast.
        assert fast[2].as_sets() == reference[2].as_sets(), dataset_name
        assert fast[3] == reference[3], dataset_name
        for attr in ("ks", "predicted_waste", "issued_per_round"):
            assert getattr(fast[1], attr) == getattr(reference[1], attr), \
                f"{dataset_name}: diagnostics.{attr} diverged"

        ref_seconds = reference[0].seconds("pivot")
        fast_seconds = max(1e-9, fast[0].seconds("pivot"))
        speedup = ref_seconds / fast_seconds
        ref_total += ref_seconds
        fast_total += fast_seconds
        speedups.append(speedup)
        print(
            f"{dataset_name}: pivot {ref_seconds:.3f}s -> "
            f"{fast_seconds:.3f}s ({speedup:.1f}x) over {REPS} reps, "
            f"{fast[1].rounds} rounds, {fast[3]} pairs issued"
        )

    payload = bench_payload(
        "pivot",
        config={"scale": SCALE, "seed": SEED, "reps": REPS,
                "setting": SETTING, "datasets": list(DATASETS),
                "engines": list(PIVOT_ENGINES)},
        runs=runs,
        derived={
            "pivot_speedup_overall": round(
                ref_total / max(1e-9, fast_total), 2
            ),
            "pivot_speedup_min": round(min(speedups), 2),
            "pivot_speedup_median": round(statistics.median(speedups), 2),
        },
    )
    write_bench_json(OUTPUT, payload)
    print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
