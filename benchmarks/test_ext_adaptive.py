"""Extension experiment: adaptive worker assignment (the paper's future work).

Section 8 proposes *"adaptively assigning more crowd workers to more
difficult record pairs"*.  This bench compares, per dataset:

  - the flat 3-worker setting (the paper's 3w),
  - a flat 9-worker setting (expensive upper bound),
  - the adaptive policy: 3 workers, escalating split votes to a 9 panel.

Expected shapes differ by dataset — and that difference is the finding:

  - **Product** (errors mostly worker-independent): adaptive matches the
    flat-9w error at a fraction of its votes — escalation pays.
  - **Paper** (difficulty pair-correlated; confusing pairs are near coin
    flips for *every* worker): even flat-9w barely improves on 3w
    (Table 3's 23% -> 21%), so escalation buys little accuracy at real
    cost.  Adaptive lands between the two flat policies on both axes.
"""

import pytest

from repro.crowd.adaptive import AdaptiveAnswerFile
from repro.crowd.cache import AnswerFile
from repro.crowd.worker import WorkerPool
from repro.experiments.configs import difficulty_model
from repro.experiments.tables import format_table

from common import emit, instance


def run_policies(dataset):
    inst = instance(dataset, "3w")
    gold = inst.dataset.gold
    difficulty = difficulty_model(dataset)
    pairs = list(inst.candidates.pairs)

    policies = {
        "flat-3w": AnswerFile(gold, WorkerPool(difficulty, num_workers=3)),
        "flat-9w": AnswerFile(gold, WorkerPool(difficulty, num_workers=9)),
        "adaptive-3to9": AdaptiveAnswerFile(
            gold, WorkerPool(difficulty, num_workers=3),
            escalated_workers=9,
        ),
    }

    rows = {}
    for name, answers in policies.items():
        answers.prefetch(pairs)
        error = answers.majority_error_rate(pairs)
        if hasattr(answers, "total_votes_spent"):
            votes = answers.total_votes_spent()
        else:
            votes = len(pairs) * answers.num_workers
        rows[name] = (error, votes)
    return rows


@pytest.mark.parametrize("dataset", ("product", "paper"))
def test_ext_adaptive_assignment(benchmark, dataset):
    rows = benchmark.pedantic(lambda: run_policies(dataset),
                              rounds=1, iterations=1)
    emit(f"ext_adaptive_{dataset}", format_table(
        ["policy", "majority error", "worker votes"],
        [[name, f"{error:.2%}", f"{votes}"]
         for name, (error, votes) in rows.items()],
    ))
    flat3_error, flat3_votes = rows["flat-3w"]
    flat9_error, flat9_votes = rows["flat-9w"]
    adaptive_error, adaptive_votes = rows["adaptive-3to9"]

    # Always: adaptive improves on flat-3w accuracy at a cost between the
    # two flat policies.
    assert adaptive_error < flat3_error
    assert flat3_votes < adaptive_votes < flat9_votes

    if dataset == "product":
        # Worker-independent errors: escalation reaches flat-9w accuracy
        # while spending well under its vote budget.
        assert adaptive_error <= flat9_error + 0.005
        assert adaptive_votes < 0.75 * flat9_votes
    else:
        # Pair-correlated difficulty: not even flat-9w helps much; this is
        # the regime where the future-work idea hits a wall.
        assert flat9_error > flat3_error - 0.03
