"""Refine-phase benchmark: incremental engine vs reference engine.

Runs the generation phase once per dataset/engine (identical by
construction — the engines only diverge inside PC-Refine), then times the
refinement phase under both engines and compares the work they performed:
wall-clock seconds, benefit/cost derivations (`operation_evaluations`), and
the fast engine's cache hit rate.  Asserts byte-identical outcomes while
it is at it, then writes ``BENCH_refine.json`` at the repo root in the
shared BENCH schema.

Standalone (no pytest)::

    REPRO_BENCH_SCALE=0.5 python benchmarks/bench_refine.py

Environment knobs:
    REPRO_BENCH_SCALE     dataset scale (default 0.5)
    REPRO_BENCH_SEED      dataset/pivot seed (default 1)
"""

from __future__ import annotations

import os
import statistics
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.pc_pivot import pc_pivot  # noqa: E402
from repro.core.pc_refine import PCRefineDiagnostics, pc_refine  # noqa: E402
from repro.core.refine import REFINE_ENGINES  # noqa: E402
from repro.crowd.oracle import CrowdOracle  # noqa: E402
from repro.crowd.stats import CrowdStats  # noqa: E402
from repro.experiments.runner import prepare_instance  # noqa: E402
from repro.perf.timing import (  # noqa: E402
    StageTimings,
    bench_payload,
    run_entry,
    write_bench_json,
)

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))
SETTING = "3w"
DATASETS = ("paper", "restaurant", "product")
OUTPUT = REPO_ROOT / "BENCH_refine.json"


def _run_engine(instance, engine: str):
    """One generation + refinement pass; returns (timings, diagnostics,
    clustering, pairs_issued)."""
    stats = CrowdStats(
        pairs_per_hit=instance.setting.pairs_per_hit,
        reward_cents_per_hit=instance.setting.reward_cents_per_hit,
        num_workers=instance.setting.num_workers,
    )
    oracle = CrowdOracle(instance.answers, stats=stats)
    timings = StageTimings()
    with timings.stage("generation"):
        clustering = pc_pivot(instance.record_ids, instance.candidates,
                              oracle, seed=SEED)
    diagnostics = PCRefineDiagnostics()
    with timings.stage("refine"):
        pc_refine(clustering, instance.candidates, oracle,
                  num_records=len(instance.record_ids),
                  diagnostics=diagnostics, engine=engine)
    return timings, diagnostics, clustering, stats.pairs_issued


def main() -> int:
    runs = {}
    reductions = []
    speedups = []
    hit_rates = []
    total_ref_evals = 0
    total_fast_evals = 0
    for dataset_name in DATASETS:
        instance = prepare_instance(dataset_name, SETTING, scale=SCALE,
                                    seed=SEED)
        # Untimed warm-up: populate the lazy answer file so neither engine
        # is billed for first-ask worker-answer generation.
        _run_engine(instance, "reference")
        per_engine = {}
        for engine in REFINE_ENGINES:
            timings, diagnostics, clustering, pairs = _run_engine(
                instance, engine
            )
            per_engine[engine] = (timings, diagnostics, clustering, pairs)
            meta = {
                "records": len(instance.record_ids),
                "candidate_pairs": len(instance.candidates),
                "rounds": diagnostics.rounds,
                "operations_evaluated": diagnostics.operation_evaluations,
                "free_operations": diagnostics.free_operations_applied,
                "pairs_issued": pairs,
            }
            if diagnostics.evaluation_cache is not None:
                meta["cache"] = diagnostics.evaluation_cache
            runs[f"{dataset_name}/{engine}"] = run_entry(timings, **meta)

        fast = per_engine["fast"]
        reference = per_engine["reference"]
        # The engines must be interchangeable, not just fast.
        assert fast[2].as_sets() == reference[2].as_sets(), dataset_name
        assert fast[3] == reference[3], dataset_name

        ref_evals = reference[1].operation_evaluations
        fast_evals = max(1, fast[1].operation_evaluations)
        reduction = ref_evals / fast_evals
        ref_seconds = reference[0].seconds("refine")
        fast_seconds = max(1e-9, fast[0].seconds("refine"))
        speedup = ref_seconds / fast_seconds
        hit_rate = fast[1].evaluation_cache["hit_rate"]
        total_ref_evals += ref_evals
        total_fast_evals += fast_evals
        reductions.append(reduction)
        speedups.append(speedup)
        hit_rates.append(hit_rate)
        print(
            f"{dataset_name}: refine {ref_seconds:.3f}s -> "
            f"{fast_seconds:.3f}s ({speedup:.1f}x), evaluations "
            f"{ref_evals} -> {fast[1].operation_evaluations} "
            f"({reduction:.1f}x), hit rate {hit_rate:.2%}"
        )

    payload = bench_payload(
        "refine",
        config={"scale": SCALE, "seed": SEED, "setting": SETTING,
                "datasets": list(DATASETS), "engines": list(REFINE_ENGINES)},
        runs=runs,
        derived={
            "evaluation_reduction_overall": round(
                total_ref_evals / max(1, total_fast_evals), 2
            ),
            "evaluation_reduction_min": round(min(reductions), 2),
            "evaluation_reduction_median": round(
                statistics.median(reductions), 2
            ),
            "refine_speedup_median": round(statistics.median(speedups), 2),
            "cache_hit_rate_mean": round(
                sum(hit_rates) / len(hit_rates), 4
            ),
        },
    )
    write_bench_json(OUTPUT, payload)
    print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
