"""Refine-phase benchmark: incremental engine vs reference engine.

Runs the generation phase once per dataset/engine (identical by
construction — the engines only diverge inside PC-Refine), then times the
refinement phase under both engines and compares the work they performed:
wall-clock seconds, benefit/cost derivations (`operation_evaluations`), and
the fast engine's cache hit rate.  Asserts byte-identical outcomes while
it is at it, then writes ``BENCH_refine.json`` at the repo root in the
shared BENCH schema.

Each run also records the engine's *internal* stage split
(``refine.free`` / ``refine.evaluate`` / ``refine.pack`` /
``refine.crowd`` / ``refine.apply``) and the derived block aggregates it
into per-engine ``stage_share_*`` fractions.  That breakdown is how to
read a near-1x (or sub-1x, e.g. restaurant) wall-clock speedup next to a
large evaluation reduction: the fast engine's time is dominated by the
free-operation pass (``refine.free`` — where its incremental caches are
*maintained* via the apply hooks), while the reference engine's is
dominated by ``refine.evaluate`` (where benefits are recomputed from
scratch).  The 2-4x evaluation reduction only attacks the evaluate
share, so on a dataset where the free pass is most of the work the
wall-clock ratio can dip below 1 even though far less evaluation work
was done.  Evaluation reduction and cache hit rate, not wall clock, are
the signal at paper scale; the wall-clock win appears once the
candidate graph is large enough for evaluation to dominate
(``benchmarks/bench_scale.py``).

Standalone (no pytest)::

    REPRO_BENCH_SCALE=0.5 python benchmarks/bench_refine.py

Environment knobs:
    REPRO_BENCH_SCALE     dataset scale (default 0.5)
    REPRO_BENCH_SEED      dataset/pivot seed (default 1)
"""

from __future__ import annotations

import os
import statistics
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.pc_pivot import pc_pivot  # noqa: E402
from repro.core.pc_refine import PCRefineDiagnostics, pc_refine  # noqa: E402
from repro.core.refine import REFINE_ENGINES  # noqa: E402
from repro.crowd.oracle import CrowdOracle  # noqa: E402
from repro.crowd.stats import CrowdStats  # noqa: E402
from repro.experiments.runner import prepare_instance  # noqa: E402
from repro.perf.timing import (  # noqa: E402
    StageTimings,
    bench_payload,
    run_entry,
    write_bench_json,
)

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))
SETTING = "3w"
DATASETS = ("paper", "restaurant", "product")
OUTPUT = REPO_ROOT / "BENCH_refine.json"

#: The engines' internal phases, in execution order (see
#: ``repro.core.pc_refine``).  ``refine.free`` / ``refine.apply`` are
#: bookkeeping, ``refine.evaluate`` / ``refine.pack`` are the benefit
#: derivations the fast engine attacks, ``refine.crowd`` is simulated
#: worker latency — identical for both engines by construction.
REFINE_STAGES = ("refine.free", "refine.evaluate", "refine.pack",
                 "refine.crowd", "refine.apply")


def _run_engine(instance, engine: str):
    """One generation + refinement pass; returns (timings, diagnostics,
    clustering, pairs_issued)."""
    stats = CrowdStats(
        pairs_per_hit=instance.setting.pairs_per_hit,
        reward_cents_per_hit=instance.setting.reward_cents_per_hit,
        num_workers=instance.setting.num_workers,
    )
    oracle = CrowdOracle(instance.answers, stats=stats)
    timings = StageTimings()
    with timings.stage("generation"):
        clustering = pc_pivot(instance.record_ids, instance.candidates,
                              oracle, seed=SEED)
    diagnostics = PCRefineDiagnostics()
    with timings.stage("refine"):
        pc_refine(clustering, instance.candidates, oracle,
                  num_records=len(instance.record_ids),
                  diagnostics=diagnostics, engine=engine,
                  timings=timings)
    # The refine.* sub-stages above accumulate inside the "refine" stage,
    # so the implicit sum-of-stages total would double-count them — pin
    # the total to the two top-level phases explicitly.
    timings.add("total",
                timings.seconds("generation") + timings.seconds("refine"))
    return timings, diagnostics, clustering, stats.pairs_issued


def main() -> int:
    runs = {}
    reductions = []
    speedups = []
    hit_rates = []
    total_ref_evals = 0
    total_fast_evals = 0
    stage_seconds = {engine: {stage: 0.0 for stage in REFINE_STAGES}
                     for engine in REFINE_ENGINES}
    refine_seconds = {engine: 0.0 for engine in REFINE_ENGINES}
    for dataset_name in DATASETS:
        instance = prepare_instance(dataset_name, SETTING, scale=SCALE,
                                    seed=SEED)
        # Untimed warm-up: populate the lazy answer file so neither engine
        # is billed for first-ask worker-answer generation.
        _run_engine(instance, "reference")
        per_engine = {}
        for engine in REFINE_ENGINES:
            timings, diagnostics, clustering, pairs = _run_engine(
                instance, engine
            )
            per_engine[engine] = (timings, diagnostics, clustering, pairs)
            meta = {
                "records": len(instance.record_ids),
                "candidate_pairs": len(instance.candidates),
                "rounds": diagnostics.rounds,
                "operations_evaluated": diagnostics.operation_evaluations,
                "free_operations": diagnostics.free_operations_applied,
                "pairs_issued": pairs,
            }
            if diagnostics.evaluation_cache is not None:
                meta["cache"] = diagnostics.evaluation_cache
            runs[f"{dataset_name}/{engine}"] = run_entry(timings, **meta)
            for stage in REFINE_STAGES:
                stage_seconds[engine][stage] += timings.seconds(stage)
            refine_seconds[engine] += timings.seconds("refine")

        fast = per_engine["fast"]
        reference = per_engine["reference"]
        # The engines must be interchangeable, not just fast.
        assert fast[2].as_sets() == reference[2].as_sets(), dataset_name
        assert fast[3] == reference[3], dataset_name

        ref_evals = reference[1].operation_evaluations
        fast_evals = max(1, fast[1].operation_evaluations)
        reduction = ref_evals / fast_evals
        ref_seconds = reference[0].seconds("refine")
        fast_seconds = max(1e-9, fast[0].seconds("refine"))
        speedup = ref_seconds / fast_seconds
        hit_rate = fast[1].evaluation_cache["hit_rate"]
        total_ref_evals += ref_evals
        total_fast_evals += fast_evals
        reductions.append(reduction)
        speedups.append(speedup)
        hit_rates.append(hit_rate)
        print(
            f"{dataset_name}: refine {ref_seconds:.3f}s -> "
            f"{fast_seconds:.3f}s ({speedup:.1f}x), evaluations "
            f"{ref_evals} -> {fast[1].operation_evaluations} "
            f"({reduction:.1f}x), hit rate {hit_rate:.2%}"
        )

    derived = {
        "evaluation_reduction_overall": round(
            total_ref_evals / max(1, total_fast_evals), 2
        ),
        "evaluation_reduction_min": round(min(reductions), 2),
        "evaluation_reduction_median": round(
            statistics.median(reductions), 2
        ),
        "refine_speedup_median": round(statistics.median(speedups), 2),
        "cache_hit_rate_mean": round(
            sum(hit_rates) / len(hit_rates), 4
        ),
    }
    # Per-engine stage shares of total refine wall time, summed across
    # datasets.  These explain a near-1x refine_speedup_median: the
    # evaluation reduction only shrinks stage_share_evaluate +
    # stage_share_pack, so when another stage (typically refine.free,
    # which also carries the fast engine's cache maintenance) dominates,
    # wall clock barely moves no matter how many evaluations were saved.
    for engine in REFINE_ENGINES:
        total = max(1e-9, refine_seconds[engine])
        for stage in REFINE_STAGES:
            short = stage.split(".", 1)[1]
            derived[f"stage_share_{short}_{engine}"] = round(
                stage_seconds[engine][stage] / total, 4
            )
        print(
            f"{engine} refine stage shares: " + ", ".join(
                f"{stage.split('.', 1)[1]} "
                f"{stage_seconds[engine][stage] / total:.0%}"
                for stage in REFINE_STAGES
            )
        )

    payload = bench_payload(
        "refine",
        config={"scale": SCALE, "seed": SEED, "setting": SETTING,
                "datasets": list(DATASETS), "engines": list(REFINE_ENGINES)},
        runs=runs,
        derived=derived,
    )
    write_bench_json(OUTPUT, payload)
    print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
