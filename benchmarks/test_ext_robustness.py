"""Extension experiment: the robustness curve.

The paper argues (Figure 1, Sections 1 and 6.3) that ACD is robust to
crowd errors while transitivity-based methods amplify them — but shows only
two error levels (the 3w and 5w settings).  This bench sweeps the
per-worker error rate from 0 to 40% on the Product dataset and charts every
method's F1, making the robustness claim a curve.

Expected shape: all methods near-tie at zero error; as errors grow, TransM
falls off fastest (transitive amplification), while ACD and CrowdER+
(correlation-clustering evidence weighing) degrade gently, with ACD
tracking CrowdER+ at a fraction of the pairs.
"""

import pytest

from repro.experiments.robustness import degradation, error_sweep
from repro.experiments.tables import format_table

from common import REPETITIONS, emit, instance

ERROR_LEVELS = (0.0, 0.1, 0.2, 0.3, 0.4)
METHODS = ("ACD", "TransM", "CrowdER+")


def run_sweep():
    inst = instance("product", "3w")
    return error_sweep(
        inst.dataset, inst.candidates,
        easy_errors=ERROR_LEVELS, methods=METHODS,
        repetitions=REPETITIONS,
    )


def test_ext_robustness(benchmark):
    points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit("ext_robustness_product", format_table(
        ["worker error", "measured majority error"] + list(METHODS),
        [
            [f"{p.easy_error:.0%}", f"{p.measured_error:.1%}"]
            + [f"{p.f1_by_method[m]:.3f}" for m in METHODS]
            for p in points
        ],
    ))
    # At zero error every method is strong.
    for method in METHODS:
        assert points[0].f1_by_method[method] > 0.8
    # TransM degrades the most; ACD degrades no faster than TransM.
    assert degradation(points, "TransM") > degradation(points, "ACD")
    # ACD stays in CrowdER+'s band across the whole sweep.
    for point in points:
        assert point.f1_by_method["ACD"] >= point.f1_by_method["CrowdER+"] - 0.15
    # The sweep's realized error really does grow.
    measured = [p.measured_error for p in points]
    assert measured == sorted(measured)
