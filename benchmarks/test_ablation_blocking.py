"""Ablation: blocking strategy for the pruning phase.

The paper treats the pruning phase as a given; this ablation compares the
candidate sets produced by the library's three blocking strategies on the
Restaurant dataset — exhaustive scoring, token blocking (exact for Jaccard),
and MinHash LSH (approximate, sub-quadratic) — reporting candidate counts,
duplicate recall, and build time.

Expected shape: token blocking matches exhaustive scoring exactly; MinHash
trades a few points of recall for a smaller scored-pair workload.
"""

import time

import pytest

from repro.pruning.analysis import evaluate_candidates
from repro.pruning.candidate import build_candidate_set
from repro.pruning.minhash import minhash_blocking_pairs
from repro.similarity.composite import jaccard_similarity_function
from repro.experiments.tables import format_table

from common import emit, instance


def run_strategies():
    inst = instance("restaurant", "3w")
    dataset = inst.dataset
    rows = {}

    def measure(name, **kwargs):
        similarity = jaccard_similarity_function()
        start = time.perf_counter()
        candidates = build_candidate_set(
            dataset.records, similarity, threshold=0.3, **kwargs
        )
        elapsed = time.perf_counter() - start
        quality = evaluate_candidates(candidates, dataset)
        rows[name] = (len(candidates), quality.recall, elapsed,
                      similarity.cache_size())
        return candidates

    exact = measure("exhaustive", use_token_blocking=False)
    token = measure("token-blocking")
    measure("minhash-lsh", candidate_pairs=minhash_blocking_pairs(
        dataset.records, bands=16, rows=4, seed=7
    ))
    rows["_same"] = token.pairs == exact.pairs
    return rows


def test_ablation_blocking(benchmark):
    rows = benchmark.pedantic(run_strategies, rounds=1, iterations=1)
    token_equals_exact = rows.pop("_same")
    emit("ablation_blocking_restaurant", format_table(
        ["strategy", "candidate pairs", "dup recall", "seconds",
         "pairs scored"],
        [[name, f"{pairs}", f"{recall:.3f}", f"{seconds:.2f}", f"{scored}"]
         for name, (pairs, recall, seconds, scored) in rows.items()],
    ))
    # Token blocking is exact for Jaccard.
    assert token_equals_exact
    # MinHash recovers nearly all duplicates while scoring fewer pairs.
    assert rows["minhash-lsh"][1] > rows["exhaustive"][1] - 0.1
    assert rows["minhash-lsh"][3] < rows["exhaustive"][3]
