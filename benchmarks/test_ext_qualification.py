"""Extension experiment: worker qualification (the mechanism behind Table 3's
two settings).

Section 6.1 obtains its 5-worker answers under a "more stringent setting":
a qualification test, >= 100 approved HITs, and a >= 95% approval rate.
The worker-level model (`repro.crowd.workforce`) lets us regenerate that
mechanism instead of just its aggregate effect: the same worker population
is filtered by AMT track record, and the same candidate pairs are answered
by panels drawn from the unfiltered vs the qualified population.

Expected shape: qualification lowers the majority error rate at equal panel
size, and qualification + a larger panel (the paper's 5w setting) lowers it
further — except that pair-correlated difficulty (the Paper dataset's hard
pairs) caps how much any workforce policy can recover.
"""

import pytest

from repro.crowd.worker import DifficultyModel
from repro.crowd.workforce import Workforce, WorkforceAnswerFile
from repro.experiments.configs import difficulty_model
from repro.experiments.tables import format_table

from common import emit, instance

# A workforce with a visible unreliable tail, shared by all policies.
POPULATION = dict(size=400, reliability_alpha=6.0, reliability_beta=1.5,
                  seed=42)


def run_policies(dataset):
    inst = instance(dataset, "3w")
    pairs = list(inst.candidates.pairs)
    gold = inst.dataset.gold
    difficulty = difficulty_model(dataset)

    workforce = Workforce(**POPULATION)
    qualified = workforce.qualified(min_approved_hits=100,
                                    min_approval_rate=0.95)

    policies = {
        "anyone-3": WorkforceAnswerFile(gold, workforce, difficulty,
                                        panel_size=3),
        "qualified-3": WorkforceAnswerFile(gold, qualified, difficulty,
                                           panel_size=3),
        "qualified-5": WorkforceAnswerFile(gold, qualified, difficulty,
                                           panel_size=5),
    }
    rows = {}
    for name, answers in policies.items():
        rows[name] = answers.majority_error_rate(pairs)
    rows["_meta"] = (len(workforce), len(qualified),
                     workforce.mean_reliability(),
                     qualified.mean_reliability())
    return rows


@pytest.mark.parametrize("dataset", ("restaurant", "paper"))
def test_ext_qualification(benchmark, dataset):
    rows = benchmark.pedantic(lambda: run_policies(dataset),
                              rounds=1, iterations=1)
    total, kept, mean_all, mean_kept = rows.pop("_meta")
    body = format_table(
        ["policy", "majority error"],
        [[name, f"{error:.2%}"] for name, error in rows.items()],
    )
    emit(f"ext_qualification_{dataset}", body + (
        f"\nworkforce: {kept}/{total} qualify; mean reliability "
        f"{mean_all:.3f} -> {mean_kept:.3f}"
    ))

    # Filtering helps at equal panel size; panel growth helps further.
    assert rows["qualified-3"] <= rows["anyone-3"]
    assert rows["qualified-5"] <= rows["qualified-3"] + 0.01
    if dataset == "paper":
        # Pair-correlated difficulty keeps a hard floor under every policy.
        assert rows["qualified-5"] > 0.10
