"""Extension experiment: pair-based vs cluster-based HIT generation.

CrowdER's original contribution [46] was packing *records* (not pairs) into
HITs: a group of k records settles all its in-group candidate pairs while a
worker reads only k records.  This bench runs the greedy group packer over
each dataset's full candidate set and compares both cost views against
pair-based packing (20 pairs per HIT, the ACD paper's setting).

Measured shape: grouping always cuts the records a worker must read (the
dominant time cost).  On the moderately dense Restaurant/Product graphs a
small per-record budget already covers ~90-100% of pairs at >50% reading
savings.  The hub-heavy Paper graph is the interesting case: covering its
high-degree records requires letting each record appear in many groups, so
coverage and savings climb with the per-record budget while the *HIT count*
climbs past pair-based packing — the cluster-HIT trick trades HIT count for
reading effort, and the budget is the dial.
"""

import pytest

from repro.crowd.cluster_hits import hit_cost_comparison
from repro.experiments.tables import format_table

from common import DATASETS, emit, instance

PAPER_BUDGETS = (6, 12, 25, 60)


def run_all():
    fixed = {}
    for dataset in DATASETS:
        inst = instance(dataset, "3w")
        fixed[dataset] = hit_cost_comparison(
            inst.candidates, records_per_hit=10, pairs_per_hit=20,
            max_hits_per_record=6,
        )
    paper_sweep = {
        budget: hit_cost_comparison(
            instance("paper", "3w").candidates, records_per_hit=10,
            pairs_per_hit=20, max_hits_per_record=budget,
        )
        for budget in PAPER_BUDGETS
    }
    return fixed, paper_sweep


def saving(row):
    return 1 - row["cluster_based_records_shown"] / row["pair_based_records_shown"]


def test_ext_cluster_hits(benchmark):
    fixed, paper_sweep = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        ["dataset", "pair HITs", "cluster HITs", "coverage",
         "reading saved"],
        [
            [dataset, f"{row['pair_based_hits']:.0f}",
             f"{row['cluster_based_hits']:.0f}", f"{row['coverage']:.0%}",
             f"{saving(row):.0%}"]
            for dataset, row in fixed.items()
        ],
    )
    sweep_table = format_table(
        ["paper: per-record budget", "cluster HITs", "coverage",
         "reading saved"],
        [
            [str(budget), f"{row['cluster_based_hits']:.0f}",
             f"{row['coverage']:.0%}", f"{saving(row):.0%}"]
            for budget, row in paper_sweep.items()
        ],
    )
    emit("ext_cluster_hits", table + "\n\n" + sweep_table)

    # Reading effort always improves.
    for dataset, row in fixed.items():
        assert saving(row) > 0.0, dataset
    # Moderately dense graphs: high coverage at a small per-record budget.
    assert fixed["restaurant"]["coverage"] > 0.8
    assert fixed["product"]["coverage"] > 0.9
    # Hub-heavy Paper: coverage and savings grow with the per-record budget.
    coverages = [paper_sweep[b]["coverage"] for b in PAPER_BUDGETS]
    savings = [saving(paper_sweep[b]) for b in PAPER_BUDGETS]
    assert coverages == sorted(coverages)
    assert savings == sorted(savings)
    assert coverages[-1] > 0.9
