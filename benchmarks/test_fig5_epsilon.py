"""Figure 5: the effect of ε on PC-Pivot (cluster generation phase only).

Paper reference (3-worker setting):
  5(a-c) crowd iterations vs ε per dataset — PC-Pivot needs far fewer
         iterations than Crowd-Pivot (20x fewer on Restaurant already at
         ε = 0.1); iterations keep falling as ε grows, steepest from
         0 -> 0.1.
  5(d)   crowdsourced pairs vs ε — a larger waste budget costs more pairs.

Shapes that must hold: every ε point beats Crowd-Pivot on iterations;
iterations are non-increasing in ε; pairs are non-decreasing in ε (up to
randomization noise); Crowd-Pivot's pair count lower-bounds all ε points.
"""

import pytest

from repro.experiments.tables import format_epsilon_sweep

from common import DATASETS, emit, eps_sweep


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig5(benchmark, dataset):
    sweep = benchmark.pedantic(lambda: eps_sweep(dataset),
                               rounds=1, iterations=1)
    emit(f"fig5_epsilon_{dataset}", format_epsilon_sweep(sweep))

    iterations = [point.iterations for point in sweep.points]
    pairs = [point.pairs_issued for point in sweep.points]

    # PC-Pivot always beats sequential Crowd-Pivot on crowd iterations.
    for value in iterations:
        assert value < sweep.crowd_pivot_iterations
    # Iterations fall (weakly) as epsilon grows.
    for left, right in zip(iterations, iterations[1:]):
        assert right <= left * 1.05 + 1.0  # allow small randomization noise
    # The 0 -> 0.1 drop is the steepest part of the curve.
    assert iterations[0] - iterations[1] >= (iterations[1] - iterations[-1]) / 4
    # Pair cost grows with epsilon, and is never below the waste-free
    # sequential cost.
    assert pairs[-1] >= pairs[0] - 1e-9
    for value in pairs:
        assert value >= sweep.crowd_pivot_pairs - 1e-9
