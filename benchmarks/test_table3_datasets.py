"""Table 3: dataset characteristics and crowd error rates.

Paper reference (AMT, real datasets):

    dataset     records  entities  candidate pairs  error 3w  error 5w
    Paper       997      191       29,581           23%       21%
    Restaurant  858      752       4,788            0.8%      0.2%
    Product     3,073    1,076     3,154            9%        5%

The reproduction regenerates the same row structure from the synthetic
datasets and the simulated crowd; the *shape* that must hold is the error
ordering (Paper >> Product >> Restaurant), the 3w->5w improvement pattern
(marginal on Paper, large relative on Restaurant), and the candidate-graph
density regime (dense/medium/sparse per record).
"""

from repro.experiments.tables import format_table, table3_row

from common import DATASETS, SCALE, SEED, emit


def test_table3(benchmark):
    rows = benchmark.pedantic(
        lambda: {name: table3_row(name, scale=SCALE, seed=SEED)
                 for name in DATASETS},
        rounds=1, iterations=1,
    )
    text = format_table(
        ["dataset", "records", "entities", "candidate pairs",
         "error 3w", "error 5w"],
        [
            [
                name,
                f"{row['records']:.0f}",
                f"{row['entities']:.0f}",
                f"{row['candidate_pairs']:.0f}",
                f"{row['error_3w']:.1%}",
                f"{row['error_5w']:.1%}",
            ]
            for name, row in rows.items()
        ],
    )
    emit("table3_datasets", text)

    paper, restaurant, product = (rows[n] for n in DATASETS)
    # Error ordering and the worker-setting effect.
    assert paper["error_3w"] > product["error_3w"] > restaurant["error_3w"]
    assert paper["error_5w"] >= paper["error_3w"] - 0.05  # near-flat on Paper
    for row in rows.values():
        assert row["error_5w"] <= row["error_3w"] + 1e-9
    # Density regime: Paper dense, Product sparse (per record).
    paper_density = paper["candidate_pairs"] / paper["records"]
    product_density = product["candidate_pairs"] / product["records"]
    restaurant_density = restaurant["candidate_pairs"] / restaurant["records"]
    assert paper_density > restaurant_density > product_density
