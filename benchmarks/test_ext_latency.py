"""Extension experiment: crowd iterations translated into wall-clock time.

The paper motivates PC-Pivot/PC-Refine by crowdsourcing *latency* — each
iteration posts HITs and waits — but reports only iteration counts.  This
bench runs sequential Crowd-Pivot and PC-Pivot (ε = 0.1) on the Restaurant
dataset, replays their per-iteration batch sizes through the
:class:`~repro.crowd.latency.LatencyModel` (AMT-like timing: 20-pair HITs,
3 assignments each, a pool of concurrent workers, ~90 s per HIT), and
reports simulated hours.

Expected shape: PC-Pivot's wall-clock advantage is of the same order as its
iteration advantage, because per-batch completion time is dominated by the
posting overhead and the last straggler, not by batch size.
"""

import pytest

from repro.core.pivot import crowd_pivot
from repro.core.pc_pivot import pc_pivot
from repro.crowd.latency import LatencyModel, format_duration
from repro.crowd.oracle import CrowdOracle
from repro.crowd.stats import CrowdStats
from repro.experiments.tables import format_table

from common import REPETITIONS, emit, instance


def run_both():
    inst = instance("restaurant", "3w")
    model = LatencyModel(pairs_per_hit=inst.setting.pairs_per_hit,
                         num_workers=inst.setting.num_workers,
                         concurrent_workers=10, seed=17)
    totals = {"Crowd-Pivot": [0.0, 0.0], "PC-Pivot (eps=0.1)": [0.0, 0.0]}
    for repetition in range(REPETITIONS):
        seed = 500 + repetition
        for name in totals:
            stats = CrowdStats(pairs_per_hit=inst.setting.pairs_per_hit,
                               num_workers=inst.setting.num_workers)
            oracle = CrowdOracle(inst.answers, stats=stats)
            if name.startswith("PC"):
                pc_pivot(inst.record_ids, inst.candidates, oracle,
                         epsilon=0.1, seed=seed)
            else:
                crowd_pivot(inst.record_ids, inst.candidates, oracle,
                            seed=seed)
            totals[name][0] += stats.iterations
            totals[name][1] += model.total_seconds(stats.batch_sizes)
    return {
        name: (iters / REPETITIONS, seconds / REPETITIONS)
        for name, (iters, seconds) in totals.items()
    }


def test_ext_latency(benchmark):
    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit("ext_latency_restaurant", format_table(
        ["algorithm", "crowd iterations", "simulated wall clock"],
        [[name, f"{iters:.1f}", format_duration(seconds)]
         for name, (iters, seconds) in rows.items()],
    ))
    sequential_iters, sequential_seconds = rows["Crowd-Pivot"]
    parallel_iters, parallel_seconds = rows["PC-Pivot (eps=0.1)"]
    # The latency advantage tracks the iteration advantage.
    assert parallel_seconds < sequential_seconds / 2
    iteration_speedup = sequential_iters / parallel_iters
    latency_speedup = sequential_seconds / parallel_seconds
    assert latency_speedup > iteration_speedup / 4
