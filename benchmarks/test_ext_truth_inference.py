"""Extension experiment: Dawid-Skene truth inference vs majority voting.

The paper's crowd answers are plain majority votes; the quality-management
literature it cites [29] estimates worker reliabilities jointly with the
labels.  This bench answers: with the *same* votes from a sloppy worker
population, how much does replacing majority fractions with Dawid-Skene
posteriors improve (a) raw answer accuracy and (b) end-to-end ACD F1?

Setup: Restaurant dataset, a 400-worker population with a heavy unreliable
tail, 5-worker panels over the whole candidate set.  Expected shape:
inference cuts a substantial share of majority-vote errors and lifts ACD's
F1, at zero extra crowdsourcing cost.
"""

import pytest

from repro.core.acd import run_acd
from repro.crowd.truth_inference import InferredAnswers, dawid_skene
from repro.crowd.worker import DifficultyModel
from repro.crowd.workforce import Workforce, WorkforceAnswerFile
from repro.eval.metrics import f1_score
from repro.experiments.configs import difficulty_model
from repro.experiments.tables import format_table

from common import REPETITIONS, emit, instance


def run_comparison_of_aggregators():
    inst = instance("restaurant", "3w")
    gold = inst.dataset.gold
    pairs = list(inst.candidates.pairs)
    workforce = Workforce(size=400, reliability_alpha=4.0,
                          reliability_beta=1.6, seed=31)
    votes_source = WorkforceAnswerFile(
        gold, workforce, difficulty_model("restaurant"), panel_size=5,
    )
    votes_source.prefetch(pairs)

    inferred = InferredAnswers(dawid_skene(votes_source.all_votes()),
                               num_workers=5)

    def error_rate(answers):
        return sum(
            1 for pair in pairs
            if answers.majority_duplicate(*pair) != gold.is_duplicate(*pair)
        ) / len(pairs)

    def mean_f1(answers):
        total = 0.0
        for repetition in range(REPETITIONS):
            result = run_acd(inst.record_ids, inst.candidates, answers,
                             seed=600 + repetition)
            total += f1_score(result.clustering, gold)
        return total / REPETITIONS

    return {
        "majority vote": (error_rate(votes_source), mean_f1(votes_source)),
        "dawid-skene": (error_rate(inferred), mean_f1(inferred)),
    }


def test_ext_truth_inference(benchmark):
    rows = benchmark.pedantic(run_comparison_of_aggregators,
                              rounds=1, iterations=1)
    emit("ext_truth_inference_restaurant", format_table(
        ["aggregator", "answer error", "ACD F1"],
        [[name, f"{error:.2%}", f"{f1:.3f}"]
         for name, (error, f1) in rows.items()],
    ))
    majority_error, majority_f1 = rows["majority vote"]
    inferred_error, inferred_f1 = rows["dawid-skene"]
    assert inferred_error < majority_error
    assert inferred_f1 >= majority_f1 - 0.01
