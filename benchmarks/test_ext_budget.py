"""Extension experiment: ACD's refinement under a hard pair budget.

The paper's refinement phase runs until no positive-benefit operation
remains; a practitioner usually has a *budget*.  This bench caps the
refinement phase's crowdsourced pairs at increasing levels on the Paper
dataset and charts F1.

The measured shape is a genuine finding: F1 grows monotonically with the
budget, but most of the refinement value arrives only near the *uncapped*
spend.  The reason is visible in the cost model: on Paper the decisive
refinement operations are mergers of medium-sized clusters whose exact
benefits need many cross pairs confirmed at once (Equation 8), so they are
expensive — and a hard budget that skips them in favor of cheap operations
buys little.  ACD's refinement is therefore *not* an anytime algorithm
under a pair cap; the budget knob is a safety rail, not a free lunch.
"""

import pytest

from repro.core.acd import run_acd
from repro.eval.metrics import f1_score
from repro.experiments.tables import format_table

from common import REPETITIONS, emit, instance

BUDGETS = (0, 500, 2000, 5000, None)  # None = uncapped (the paper's ACD)


def run_budgets():
    inst = instance("paper", "3w")
    rows = []
    for budget in BUDGETS:
        f1 = 0.0
        refine_pairs = 0.0
        for repetition in range(REPETITIONS):
            result = run_acd(
                inst.record_ids, inst.candidates, inst.answers,
                seed=800 + repetition, max_refinement_pairs=budget,
                pairs_per_hit=inst.setting.pairs_per_hit,
            )
            f1 += f1_score(result.clustering, inst.dataset.gold)
            refine_pairs += result.refinement_stats["pairs_issued"]
        rows.append((budget, refine_pairs / REPETITIONS, f1 / REPETITIONS))
    return rows


def test_ext_budgeted_refinement(benchmark):
    rows = benchmark.pedantic(run_budgets, rounds=1, iterations=1)
    emit("ext_budget_paper", format_table(
        ["refinement cap", "refine pairs spent", "F1"],
        [["uncapped" if cap is None else str(cap),
          f"{spent:.0f}", f"{f1:.3f}"] for cap, spent, f1 in rows],
    ))
    by_cap = {cap: f1 for cap, _, f1 in rows}
    # F1 is (weakly) increasing in budget; uncapped is the best.
    f1_series = [f1 for _, _, f1 in rows]
    for left, right in zip(f1_series, f1_series[1:]):
        assert right >= left - 0.02
    assert by_cap[None] >= max(f1 for cap, _, f1 in rows if cap is not None)
    # Caps are honored exactly.
    for cap, spent, _ in rows:
        if cap is not None:
            assert spent <= cap
    # The finding: a capped run cannot reach the uncapped quality — the
    # high-value operations are the expensive ones.
    assert by_cap[None] - by_cap[5000] > 0.05
