"""Extension experiment: what PC-Refine's batching buys over Crowd-Refine.

Section 5.4 motivates PC-Refine by the sequential Crowd-Refine's crowd
round count (one operation's pairs per round).  The paper never charts this
directly; this bench does: both refiners run from identical PC-Pivot
outputs on the Paper dataset, and we report refinement-phase crowd
iterations, refinement pairs, and final F1.  Expected shape: equal-quality
clusterings, with PC-Refine needing several times fewer crowd rounds.
"""

import pytest

from repro.core.pc_pivot import pc_pivot
from repro.core.pc_refine import pc_refine
from repro.core.refine import crowd_refine
from repro.crowd.oracle import CrowdOracle
from repro.eval.metrics import f1_score
from repro.experiments.tables import format_table

from common import REPETITIONS, emit, instance


def run_both():
    inst = instance("paper", "3w")
    totals = {
        "Crowd-Refine": [0.0, 0.0, 0.0],
        "PC-Refine": [0.0, 0.0, 0.0],
    }
    for repetition in range(REPETITIONS):
        seed = 300 + repetition
        for name in totals:
            oracle = CrowdOracle(inst.answers)
            clustering = pc_pivot(inst.record_ids, inst.candidates, oracle,
                                  epsilon=0.1, seed=seed)
            generation_iterations = oracle.stats.iterations
            generation_pairs = oracle.stats.pairs_issued
            if name == "PC-Refine":
                refined = pc_refine(clustering, inst.candidates, oracle,
                                    num_records=len(inst.dataset))
            else:
                refined = crowd_refine(clustering, inst.candidates, oracle)
            totals[name][0] += oracle.stats.iterations - generation_iterations
            totals[name][1] += oracle.stats.pairs_issued - generation_pairs
            totals[name][2] += f1_score(refined, inst.dataset.gold)
    return {
        name: tuple(value / REPETITIONS for value in values)
        for name, values in totals.items()
    }


def test_ext_parallel_refinement(benchmark):
    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit("ext_parallel_refine_paper", format_table(
        ["refiner", "refine iterations", "refine pairs", "final F1"],
        [[name, f"{iters:.1f}", f"{pairs:.0f}", f"{f1:.3f}"]
         for name, (iters, pairs, f1) in rows.items()],
    ))
    sequential = rows["Crowd-Refine"]
    parallel = rows["PC-Refine"]
    # Same quality regime...
    assert abs(sequential[2] - parallel[2]) < 0.05
    # ...with far fewer crowd rounds for the batched refiner.
    assert parallel[0] < sequential[0] / 2
