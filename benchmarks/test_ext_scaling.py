"""Extension experiment: how ACD's costs scale with dataset size.

Not a paper figure, but the natural systems question a reproduction should
answer: as the record count grows (0.25x, 0.5x, 1x of the Paper dataset),
how do ACD's crowdsourced pairs, crowd iterations, and accuracy move?

Expected shape: pairs grow roughly with the candidate-set size (which the
sqrt-scaled generators keep near-linear in records), crowd iterations grow
slowly (batching absorbs scale), and F1 stays in the same band.
"""

import pytest

from repro.experiments.runner import prepare_instance, run_method
from repro.experiments.tables import format_table

from common import REPETITIONS, SEED, emit

SCALES = (0.25, 0.5, 1.0)


def run_scaling():
    rows = []
    for scale in SCALES:
        inst = prepare_instance("paper", "3w", scale=scale, seed=SEED)
        f1 = 0.0
        pairs = 0.0
        iterations = 0.0
        for repetition in range(REPETITIONS):
            result = run_method("ACD", inst, seed=400 + repetition)
            f1 += result.f1
            pairs += result.pairs_issued
            iterations += result.iterations
        rows.append((
            scale, len(inst.dataset), len(inst.candidates),
            pairs / REPETITIONS, iterations / REPETITIONS, f1 / REPETITIONS,
        ))
    return rows


def test_ext_scaling(benchmark):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    emit("ext_scaling_paper", format_table(
        ["scale", "records", "|S|", "ACD pairs", "iterations", "F1"],
        [[f"{s:.2f}", f"{n}", f"{cand}", f"{p:.0f}", f"{i:.1f}", f"{f:.3f}"]
         for s, n, cand, p, i, f in rows],
    ))
    # Pairs grow with the candidate set...
    assert rows[-1][3] > rows[0][3]
    # ...but iterations grow sublinearly in records (batching absorbs scale).
    records_ratio = rows[-1][1] / rows[0][1]
    iterations_ratio = rows[-1][4] / max(1.0, rows[0][4])
    assert iterations_ratio < records_ratio
    # Accuracy stays in one band across scales.
    f1_values = [row[5] for row in rows]
    assert max(f1_values) - min(f1_values) < 0.12
