"""Shared harness for the benchmark suite.

Each benchmark file regenerates one of the paper's tables or figures (see
DESIGN.md's per-experiment index).  Heavy computations — the prepared
instances and the full method comparisons — are cached at module level so
that, e.g., Figures 6, 7 and 8 (three views of the same experiment) only
run the comparison once per dataset x setting.

Environment knobs:
    REPRO_BENCH_SCALE     dataset scale (default 1.0 = Table 3 sizes)
    REPRO_BENCH_REPS      repetitions for randomized methods (default 3;
                          the paper uses 5)
    REPRO_BENCH_ENGINE    pruning engine: auto | reference | prefix
                          (default auto)
    REPRO_BENCH_PARALLEL  worker processes for reference pruning
                          (default 0 = serial)

Every benchmark prints its rows (visible with ``pytest -s``) and also
writes them to ``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

import functools
import os
from pathlib import Path
from typing import Dict

from repro.experiments.runner import (
    Instance,
    MethodResult,
    prepare_instance,
    run_comparison,
)
from repro.experiments.sweeps import EpsilonSweep, epsilon_sweep, threshold_sweep

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
REPETITIONS = int(os.environ.get("REPRO_BENCH_REPS", "3"))
ENGINE = os.environ.get("REPRO_BENCH_ENGINE", "auto")
PARALLEL = int(os.environ.get("REPRO_BENCH_PARALLEL", "0"))
SEED = 1

RESULTS_DIR = Path(__file__).resolve().parent / "results"

DATASETS = ("paper", "restaurant", "product")
SETTINGS = ("3w", "5w")


@functools.lru_cache(maxsize=None)
def instance(dataset: str, setting: str) -> Instance:
    """One prepared (dataset, crowd setting) instance, cached per process."""
    return prepare_instance(dataset, setting, scale=SCALE, seed=SEED,
                            engine=ENGINE, parallel=PARALLEL)


@functools.lru_cache(maxsize=None)
def comparison(dataset: str, setting: str) -> Dict[str, MethodResult]:
    """The full Section 6.3 method comparison, cached per process."""
    return run_comparison(instance(dataset, setting),
                          repetitions=REPETITIONS)


@functools.lru_cache(maxsize=None)
def eps_sweep(dataset: str) -> EpsilonSweep:
    """The Figure 5 ε sweep (3-worker setting, as in the paper)."""
    return epsilon_sweep(instance(dataset, "3w"), repetitions=REPETITIONS)


@functools.lru_cache(maxsize=None)
def t_sweep(dataset: str):
    """The Figure 10 T sweep (3-worker setting)."""
    return threshold_sweep(instance(dataset, "3w"), repetitions=REPETITIONS)


def emit(name: str, text: str) -> None:
    """Print a figure's rows and persist them under benchmarks/results/."""
    banner = f"== {name} (scale={SCALE}, reps={REPETITIONS}) =="
    print(f"\n{banner}\n{text}")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(f"{banner}\n{text}\n")
