"""Scale benchmark: the pruning and generation phases at 10k-1M records.

Runs the pruning phase over the synthetic ``largescale`` population
(:mod:`repro.datasets.largescale`) at increasing record counts, comparing
the vectorized sharded join against the scalar paths, verifying byte-
identical candidate sets wherever more than one variant runs, and writing
``BENCH_scale.json`` at the repo root in the shared BENCH schema with
records/sec, pairs/sec, and peak-RSS meters per run.

Pruning variants per tier (each capped by its env knob):

* ``vectorized``  — prefix engine, vectorized kernel, sharded
  (:mod:`repro.pruning.shard`); runs at every tier.
* ``scalar-join`` — prefix engine, scalar kernel (the scalar reference of
  the kernel registry); capped at ``REPRO_BENCH_SCALAR_CAP``.
* ``reference``   — the seed engine (token blocking + per-pair scoring
  loop, the original scalar reference of the pruning phase); capped at
  ``REPRO_BENCH_REFERENCE_CAP``.

Generation variants per tier (capped at ``REPRO_BENCH_GENERATION_CAP``,
driven by the tier's vectorized candidate set):

* ``pivot-classic`` — the classic single-process fast PC-Pivot engine.
* ``pivot-sharded`` — per-component PC-Pivot over
  ``REPRO_BENCH_PIVOT_SHARDS`` shard tasks in
  ``REPRO_BENCH_PIVOT_PROCESSES`` supervised worker processes, plus the
  cross-shard merge (:mod:`repro.core.pivot_shard`).  The clustering
  (cluster IDs included) must match the classic run exactly; the
  crowdsourced pair count may differ (component-local Equation-4 rounds
  waste different — usually fewer — pairs than the globally-coupled
  classic rounds), and the crowd *iteration* count drops to the deepest
  component's round count because every component crowdsources its
  round-``r`` batch simultaneously.  ``generation_iteration_speedup``
  (classic iterations / sharded iterations) is the hardware-independent
  generation-phase win: in a deployed system the phase's latency is
  crowd iterations times the crowd round-trip, which dwarfs CPU.  The
  wall-clock ``generation_speedup`` additionally needs as many real
  cores as worker processes — on a single-core container the process
  fan-out is pure timesharing overhead.

Refinement variants per tier (capped at ``REPRO_BENCH_REFINE_CAP``, on a
*confused* regeneration of the tier — ``confusion=REPRO_BENCH_REFINE_CONFUSION``
gives the refine phase real over-/under-merge work; the clean default
generator produces clusterings the phase barely touches):

* ``refine-classic`` — the classic single-process fast PC-Refine engine.
* ``refine-sharded`` — per-component PC-Refine over
  ``REPRO_BENCH_REFINE_SHARDS`` shard tasks in
  ``REPRO_BENCH_REFINE_PROCESSES`` supervised worker processes, plus the
  cross-shard merged-round replay (:mod:`repro.core.refine_shard`).
  Both variants refine the same generation-phase clustering.
  ``refine_iteration_speedup`` is the crowd-latency win (sharded
  iterations = the deepest component's round count);
  ``refine_classic_identical`` records whether the sharded partition
  matched the classic engine's bit for bit (guaranteed across sharded
  configs, empirical vs classic — see ``repro/core/refine_shard.py``).

Standalone (no pytest)::

    python benchmarks/bench_scale.py                      # 10k + 100k + 1M
    REPRO_BENCH_SCALE_TIERS=10000 python benchmarks/bench_scale.py   # smoke

Environment knobs:
    REPRO_BENCH_SCALE_TIERS    comma-separated record counts
                               (default "10000,100000,1000000")
    REPRO_BENCH_SHARDS         shard count for the vectorized run (default 8)
    REPRO_BENCH_PARALLEL       worker processes for the sharded run
                               (default 0 = in-process shard loop)
    REPRO_BENCH_SCALAR_CAP     largest tier for scalar-join (default 100000)
    REPRO_BENCH_REFERENCE_CAP  largest tier for reference (default 10000)
    REPRO_BENCH_GENERATION_CAP     largest tier for the generation stage
                                   (default 100000)
    REPRO_BENCH_PIVOT_SHARDS       shard tasks for pivot-sharded (default 64)
    REPRO_BENCH_PIVOT_PROCESSES    worker processes for pivot-sharded
                                   (default min(4, CPU count); <= 1 =
                                   in-process — supervised workers only
                                   pay off with real cores, so a
                                   single-core host defaults to the
                                   in-process shard loop)
    REPRO_BENCH_REFINE_CAP         largest tier for the refinement stage
                                   (default 100000)
    REPRO_BENCH_REFINE_SHARDS      shard tasks for refine-sharded (default 64)
    REPRO_BENCH_REFINE_PROCESSES   worker processes for refine-sharded
                                   (default min(4, CPU count), as above)
    REPRO_BENCH_REFINE_CONFUSION   confusion knob for the refine-stage
                                   dataset (default 0.25)
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets.largescale import BASE_RECORDS, generate_largescale  # noqa: E402
from repro.experiments.configs import PRUNING_THRESHOLD  # noqa: E402
from repro.perf.timing import (  # noqa: E402
    StageTimings,
    bench_payload,
    run_entry,
    write_bench_json,
)
from repro.pruning.candidate import build_candidate_set  # noqa: E402
from repro.similarity.composite import jaccard_similarity_function  # noqa: E402

TIERS = tuple(
    int(tier)
    for tier in os.environ.get(
        "REPRO_BENCH_SCALE_TIERS", "10000,100000,1000000"
    ).split(",")
    if tier.strip()
)
SHARDS = int(os.environ.get("REPRO_BENCH_SHARDS", "8"))
PARALLEL = int(os.environ.get("REPRO_BENCH_PARALLEL", "0"))
SCALAR_CAP = int(os.environ.get("REPRO_BENCH_SCALAR_CAP", "100000"))
REFERENCE_CAP = int(os.environ.get("REPRO_BENCH_REFERENCE_CAP", "10000"))
GENERATION_CAP = int(os.environ.get("REPRO_BENCH_GENERATION_CAP", "100000"))
#: Worker processes only help with real cores to run them on; a
#: single-core host (common for CI containers) pays fork + IPC overhead
#: for zero parallelism, so the default degrades to the in-process loop.
_DEFAULT_PROCESSES = str(min(4, os.cpu_count() or 1))
PIVOT_SHARDS = int(os.environ.get("REPRO_BENCH_PIVOT_SHARDS", "64"))
PIVOT_PROCESSES = int(
    os.environ.get("REPRO_BENCH_PIVOT_PROCESSES", _DEFAULT_PROCESSES))
REFINE_CAP = int(os.environ.get("REPRO_BENCH_REFINE_CAP", "100000"))
REFINE_SHARDS = int(os.environ.get("REPRO_BENCH_REFINE_SHARDS", "64"))
REFINE_PROCESSES = int(
    os.environ.get("REPRO_BENCH_REFINE_PROCESSES", _DEFAULT_PROCESSES))
REFINE_CONFUSION = float(
    os.environ.get("REPRO_BENCH_REFINE_CONFUSION", "0.25"))
SEED = 1
OUTPUT = REPO_ROOT / "BENCH_scale.json"


def _measure(records, *, engine: str, kernel_backend: str, shards: int,
             parallel: int = 0):
    """One pruning run; returns (candidate_set, timings-with-meters)."""
    timings = StageTimings()
    candidates = build_candidate_set(
        records, jaccard_similarity_function(),
        threshold=PRUNING_THRESHOLD, engine=engine,
        kernel_backend=kernel_backend, shards=shards, parallel=parallel,
        timings=timings,
    )
    timings.record_throughput("records_per_second", len(records))
    timings.record_throughput("pairs_per_second", len(candidates))
    timings.record_peak_rss()
    return candidates, timings


def _measure_generation(dataset, candidates, *, shards: int = 0,
                        processes: int = 0):
    """One cluster-generation run; returns (clustering, stats, timings)."""
    from repro.core.pc_pivot import pc_pivot
    from repro.crowd.cache import AnswerFile
    from repro.crowd.oracle import CrowdOracle
    from repro.crowd.worker import WorkerPool
    from repro.experiments.configs import difficulty_model

    # A fresh pair-seeded answer file per variant: identical answers,
    # no cross-variant memo warming.
    answers = AnswerFile(
        dataset.gold,
        WorkerPool(difficulty=difficulty_model("largescale"), num_workers=3),
    )
    oracle = CrowdOracle(answers)
    timings = StageTimings()
    with timings.stage("generation"):
        clustering = pc_pivot(
            dataset.record_ids, candidates, oracle, seed=SEED,
            shards=shards, processes=processes,
        )
    timings.record_throughput("records_per_second", len(dataset.records))
    timings.record_throughput("pairs_per_second",
                              int(oracle.stats.pairs_issued))
    timings.record_peak_rss()
    return clustering, oracle.stats, timings


def _generation_stage(label, tier, dataset, candidates, runs, derived):
    """The generation tier: classic vs sharded-parallel PC-Pivot.

    Returns False when the sharded run diverges from the classic one
    (the caller fails the benchmark).
    """
    classic, classic_stats, classic_timings = _measure_generation(
        dataset, candidates)
    runs[f"{label}/pivot-classic"] = run_entry(
        classic_timings, records=tier,
        pairs_issued=int(classic_stats.pairs_issued),
        iterations=int(classic_stats.iterations),
        clusters=len(classic),
    )
    print(f"{label}/pivot-classic: {classic_timings.total:.2f}s, "
          f"{int(classic_stats.pairs_issued)} pairs, "
          f"{int(classic_stats.iterations)} crowd iterations, "
          f"peak RSS "
          f"{classic_timings.meters['peak_rss_bytes'] / 2**20:.0f} MiB")

    sharded, sharded_stats, sharded_timings = _measure_generation(
        dataset, candidates, shards=PIVOT_SHARDS, processes=PIVOT_PROCESSES)
    runs[f"{label}/pivot-sharded"] = run_entry(
        sharded_timings, records=tier,
        pairs_issued=int(sharded_stats.pairs_issued),
        iterations=int(sharded_stats.iterations),
        clusters=len(sharded),
        shards=PIVOT_SHARDS, processes=PIVOT_PROCESSES,
    )
    if sharded.to_state() != classic.to_state():
        print(f"FAIL: {label}: sharded generation clustering diverged",
              file=sys.stderr)
        return False
    speedup = classic_timings.total / max(sharded_timings.total, 1e-12)
    derived[f"{label}/generation_speedup"] = round(speedup, 2)
    # The generation phase's deployed cost is crowd latency: iterations
    # times the crowd round-trip.  Merged component rounds crowdsource
    # every component simultaneously, so the sharded iteration count is
    # the deepest component's round count — this ratio is the
    # hardware-independent phase speedup.
    iteration_speedup = classic_stats.iterations / max(
        sharded_stats.iterations, 1)
    derived[f"{label}/generation_iteration_speedup"] = round(
        iteration_speedup, 2)
    # The pair counts legitimately differ: component-local Equation-4
    # rounds waste differently than the globally-coupled classic rounds
    # (usually less).  Only the clustering is pinned across engines.
    derived[f"{label}/generation_pairs_saved"] = int(
        classic_stats.pairs_issued - sharded_stats.pairs_issued)
    print(f"{label}/pivot-sharded: {sharded_timings.total:.2f}s "
          f"({speedup:.1f}x wall, {iteration_speedup:.1f}x crowd "
          f"iterations [{int(sharded_stats.iterations)} vs "
          f"{int(classic_stats.iterations)}], identical clustering, "
          f"{int(sharded_stats.pairs_issued)} vs "
          f"{int(classic_stats.pairs_issued)} pairs)")
    return True


def _measure_refine(dataset, candidates, *, shards: int = 0,
                    processes: int = 0):
    """One refinement run from a freshly generated clustering.

    The generation phase (untimed, identical across variants: same seed,
    pair-deterministic answers) produces the starting clustering and the
    shared phase-2 answer set; only ``pc_refine`` is measured.  Returns
    (clustering, refine_iterations, refine_pairs, timings); the timings
    carry the engine's own per-stage breakdown plus an explicit
    ``total`` equal to the refine wall-clock.
    """
    from repro.core.pc_pivot import pc_pivot
    from repro.core.pc_refine import pc_refine
    from repro.crowd.cache import AnswerFile
    from repro.crowd.oracle import CrowdOracle
    from repro.crowd.worker import WorkerPool
    from repro.experiments.configs import difficulty_model

    answers = AnswerFile(
        dataset.gold,
        WorkerPool(difficulty=difficulty_model("largescale"), num_workers=3),
    )
    oracle = CrowdOracle(answers)
    clustering = pc_pivot(dataset.record_ids, candidates, oracle, seed=SEED,
                          shards=PIVOT_SHARDS)
    generation_iterations = oracle.stats.iterations
    generation_pairs = oracle.stats.pairs_issued

    timings = StageTimings()
    with timings.stage("refine"):
        clustering = pc_refine(
            clustering, candidates, oracle,
            num_records=len(dataset.records),
            shards=shards, processes=processes, timings=timings,
        )
    # The engine's sub-stages (refine.free, refine.evaluate, ... or
    # refine.partition, refine.workers, refine.replay) accumulated into
    # the same StageTimings; pin the explicit total to the refine
    # wall-clock so the breakdown does not double-count it.
    timings.add("total", timings.seconds("refine"))
    refine_pairs = int(oracle.stats.pairs_issued - generation_pairs)
    timings.record_throughput("pairs_per_second", refine_pairs,
                              stage="refine")
    timings.record_peak_rss()
    return (clustering, int(oracle.stats.iterations - generation_iterations),
            refine_pairs, timings)


def _refine_stage(label, tier, runs, derived):
    """The refinement tier: classic vs sharded-parallel PC-Refine.

    Regenerates the tier with the ``confusion`` knob (the clean dataset
    leaves the refine phase nothing to do) and prunes it, then refines
    the same generation clustering under both engines.  Returns False
    only on an internal benchmark failure; a sharded-vs-classic
    partition difference is recorded (``refine_classic_identical``),
    not failed — cross-*config* identity is the guaranteed contract and
    the test suites pin it, classic parity is empirical.
    """
    dataset = generate_largescale(scale=tier / BASE_RECORDS, seed=SEED,
                                  confusion=REFINE_CONFUSION)
    candidates, _ = _measure(
        dataset.records, engine="prefix", kernel_backend="vectorized",
        shards=SHARDS, parallel=PARALLEL,
    )

    classic, classic_iters, classic_pairs, classic_timings = _measure_refine(
        dataset, candidates)
    runs[f"{label}/refine-classic"] = run_entry(
        classic_timings, records=tier, candidate_pairs=len(candidates),
        pairs_issued=classic_pairs, iterations=classic_iters,
        clusters=len(classic),
    )
    print(f"{label}/refine-classic: "
          f"{classic_timings.seconds('refine'):.2f}s, "
          f"{classic_pairs} pairs, {classic_iters} crowd iterations, "
          f"{len(classic)} clusters")

    sharded, sharded_iters, sharded_pairs, sharded_timings = _measure_refine(
        dataset, candidates, shards=REFINE_SHARDS,
        processes=REFINE_PROCESSES)
    runs[f"{label}/refine-sharded"] = run_entry(
        sharded_timings, records=tier, candidate_pairs=len(candidates),
        pairs_issued=sharded_pairs, iterations=sharded_iters,
        clusters=len(sharded),
        shards=REFINE_SHARDS, processes=REFINE_PROCESSES,
    )
    identical = sharded.to_state() == classic.to_state()
    speedup = (classic_timings.seconds("refine")
               / max(sharded_timings.seconds("refine"), 1e-12))
    derived[f"{label}/refine_speedup"] = round(speedup, 2)
    # As with generation, the deployed cost of the phase is crowd
    # latency: merged component rounds crowdsource every component's
    # round-r batch simultaneously, so the sharded iteration count is
    # the deepest component's round count.
    iteration_speedup = classic_iters / max(sharded_iters, 1)
    derived[f"{label}/refine_iteration_speedup"] = round(
        iteration_speedup, 2)
    derived[f"{label}/refine_classic_identical"] = identical
    print(f"{label}/refine-sharded: "
          f"{sharded_timings.seconds('refine'):.2f}s "
          f"({speedup:.1f}x wall, {iteration_speedup:.1f}x crowd "
          f"iterations [{sharded_iters} vs {classic_iters}], "
          f"{'identical' if identical else 'DIVERGED'} clustering, "
          f"{sharded_pairs} vs {classic_pairs} pairs)")
    if not identical:
        print(f"note: {label}: sharded refine partition differs from "
              "classic (allowed — classic parity is empirical; "
              "cross-config identity is covered by the test suites)")
    return True


def main() -> int:
    runs = {}
    derived = {}
    for tier in TIERS:
        label = f"{tier // 1000}k" if tier < 1_000_000 else f"{tier // 1_000_000}M"
        dataset = generate_largescale(scale=tier / BASE_RECORDS, seed=SEED)
        assert len(dataset.records) == tier

        vec, vec_timings = _measure(
            dataset.records, engine="prefix", kernel_backend="vectorized",
            shards=SHARDS, parallel=PARALLEL,
        )
        runs[f"{label}/vectorized"] = run_entry(
            vec_timings, records=tier, pairs=len(vec),
            shards=SHARDS, parallel=PARALLEL,
        )
        print(f"{label}/vectorized: {vec_timings.total:.2f}s, "
              f"{len(vec)} pairs, "
              f"{vec_timings.meters['records_per_second']:.0f} rec/s, "
              f"peak RSS {vec_timings.meters['peak_rss_bytes'] / 2**20:.0f} MiB")

        if tier <= SCALAR_CAP:
            # Unsharded single-shard vectorized run: shard-count invariance
            # at real scale (cheap — same kernel, no partitioning).
            one, one_timings = _measure(
                dataset.records, engine="prefix",
                kernel_backend="vectorized", shards=1,
            )
            runs[f"{label}/vectorized-1shard"] = run_entry(
                one_timings, records=tier, pairs=len(one), shards=1,
            )
            if (one.pairs, one.machine_scores) != (vec.pairs, vec.machine_scores):
                print(f"FAIL: {label}: shard counts disagree", file=sys.stderr)
                return 1

            scalar, scalar_timings = _measure(
                dataset.records, engine="prefix", kernel_backend="scalar",
                shards=0,
            )
            runs[f"{label}/scalar-join"] = run_entry(
                scalar_timings, records=tier, pairs=len(scalar),
            )
            if (scalar.pairs, scalar.machine_scores) != (vec.pairs,
                                                         vec.machine_scores):
                print(f"FAIL: {label}: kernel backends disagree",
                      file=sys.stderr)
                return 1
            speedup = scalar_timings.total / max(vec_timings.total, 1e-12)
            derived[f"{label}/speedup_vs_scalar_join"] = round(speedup, 2)
            print(f"{label}/scalar-join: {scalar_timings.total:.2f}s "
                  f"({speedup:.1f}x, identical)")

        if tier <= REFERENCE_CAP:
            reference, ref_timings = _measure(
                dataset.records, engine="reference", kernel_backend="auto",
                shards=0,
            )
            runs[f"{label}/reference"] = run_entry(
                ref_timings, records=tier, pairs=len(reference),
            )
            if (reference.pairs, reference.machine_scores) != (
                    vec.pairs, vec.machine_scores):
                print(f"FAIL: {label}: reference engine disagrees",
                      file=sys.stderr)
                return 1
            speedup = ref_timings.total / max(vec_timings.total, 1e-12)
            derived[f"{label}/speedup_vs_reference"] = round(speedup, 2)
            print(f"{label}/reference: {ref_timings.total:.2f}s "
                  f"({speedup:.1f}x, identical)")

        if tier <= GENERATION_CAP:
            if not _generation_stage(label, tier, dataset, vec, runs,
                                     derived):
                return 1

        if tier <= REFINE_CAP:
            if not _refine_stage(label, tier, runs, derived):
                return 1

    payload = bench_payload(
        "scale",
        config={
            "tiers": list(TIERS), "seed": SEED, "shards": SHARDS,
            "parallel": PARALLEL, "threshold": PRUNING_THRESHOLD,
            "scalar_cap": SCALAR_CAP, "reference_cap": REFERENCE_CAP,
            "generation_cap": GENERATION_CAP,
            "pivot_shards": PIVOT_SHARDS,
            "pivot_processes": PIVOT_PROCESSES,
            "refine_cap": REFINE_CAP,
            "refine_shards": REFINE_SHARDS,
            "refine_processes": REFINE_PROCESSES,
            "refine_confusion": REFINE_CONFUSION,
            "dataset": "largescale", "metric": "jaccard",
        },
        runs=runs,
        derived=derived,
    )
    write_bench_json(OUTPUT, payload)
    print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
