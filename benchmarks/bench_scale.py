"""Scale benchmark: the pruning phase at 10k-1M records.

Runs the pruning phase over the synthetic ``largescale`` population
(:mod:`repro.datasets.largescale`) at increasing record counts, comparing
the vectorized sharded join against the scalar paths, verifying byte-
identical candidate sets wherever more than one variant runs, and writing
``BENCH_scale.json`` at the repo root in the shared BENCH schema with
records/sec, pairs/sec, and peak-RSS meters per run.

Variants per tier (each capped by its env knob):

* ``vectorized``  — prefix engine, vectorized kernel, sharded
  (:mod:`repro.pruning.shard`); runs at every tier.
* ``scalar-join`` — prefix engine, scalar kernel (the scalar reference of
  the kernel registry); capped at ``REPRO_BENCH_SCALAR_CAP``.
* ``reference``   — the seed engine (token blocking + per-pair scoring
  loop, the original scalar reference of the pruning phase); capped at
  ``REPRO_BENCH_REFERENCE_CAP``.

Standalone (no pytest)::

    python benchmarks/bench_scale.py                      # 10k + 100k + 1M
    REPRO_BENCH_SCALE_TIERS=10000 python benchmarks/bench_scale.py   # smoke

Environment knobs:
    REPRO_BENCH_SCALE_TIERS    comma-separated record counts
                               (default "10000,100000,1000000")
    REPRO_BENCH_SHARDS         shard count for the vectorized run (default 8)
    REPRO_BENCH_PARALLEL       worker processes for the sharded run
                               (default 0 = in-process shard loop)
    REPRO_BENCH_SCALAR_CAP     largest tier for scalar-join (default 100000)
    REPRO_BENCH_REFERENCE_CAP  largest tier for reference (default 10000)
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets.largescale import BASE_RECORDS, generate_largescale  # noqa: E402
from repro.experiments.configs import PRUNING_THRESHOLD  # noqa: E402
from repro.perf.timing import (  # noqa: E402
    StageTimings,
    bench_payload,
    run_entry,
    write_bench_json,
)
from repro.pruning.candidate import build_candidate_set  # noqa: E402
from repro.similarity.composite import jaccard_similarity_function  # noqa: E402

TIERS = tuple(
    int(tier)
    for tier in os.environ.get(
        "REPRO_BENCH_SCALE_TIERS", "10000,100000,1000000"
    ).split(",")
    if tier.strip()
)
SHARDS = int(os.environ.get("REPRO_BENCH_SHARDS", "8"))
PARALLEL = int(os.environ.get("REPRO_BENCH_PARALLEL", "0"))
SCALAR_CAP = int(os.environ.get("REPRO_BENCH_SCALAR_CAP", "100000"))
REFERENCE_CAP = int(os.environ.get("REPRO_BENCH_REFERENCE_CAP", "10000"))
SEED = 1
OUTPUT = REPO_ROOT / "BENCH_scale.json"


def _measure(records, *, engine: str, kernel_backend: str, shards: int,
             parallel: int = 0):
    """One pruning run; returns (candidate_set, timings-with-meters)."""
    timings = StageTimings()
    candidates = build_candidate_set(
        records, jaccard_similarity_function(),
        threshold=PRUNING_THRESHOLD, engine=engine,
        kernel_backend=kernel_backend, shards=shards, parallel=parallel,
        timings=timings,
    )
    timings.record_throughput("records_per_second", len(records))
    timings.record_throughput("pairs_per_second", len(candidates))
    timings.record_peak_rss()
    return candidates, timings


def main() -> int:
    runs = {}
    derived = {}
    for tier in TIERS:
        label = f"{tier // 1000}k" if tier < 1_000_000 else f"{tier // 1_000_000}M"
        dataset = generate_largescale(scale=tier / BASE_RECORDS, seed=SEED)
        assert len(dataset.records) == tier

        vec, vec_timings = _measure(
            dataset.records, engine="prefix", kernel_backend="vectorized",
            shards=SHARDS, parallel=PARALLEL,
        )
        runs[f"{label}/vectorized"] = run_entry(
            vec_timings, records=tier, pairs=len(vec),
            shards=SHARDS, parallel=PARALLEL,
        )
        print(f"{label}/vectorized: {vec_timings.total:.2f}s, "
              f"{len(vec)} pairs, "
              f"{vec_timings.meters['records_per_second']:.0f} rec/s, "
              f"peak RSS {vec_timings.meters['peak_rss_bytes'] / 2**20:.0f} MiB")

        if tier <= SCALAR_CAP:
            # Unsharded single-shard vectorized run: shard-count invariance
            # at real scale (cheap — same kernel, no partitioning).
            one, one_timings = _measure(
                dataset.records, engine="prefix",
                kernel_backend="vectorized", shards=1,
            )
            runs[f"{label}/vectorized-1shard"] = run_entry(
                one_timings, records=tier, pairs=len(one), shards=1,
            )
            if (one.pairs, one.machine_scores) != (vec.pairs, vec.machine_scores):
                print(f"FAIL: {label}: shard counts disagree", file=sys.stderr)
                return 1

            scalar, scalar_timings = _measure(
                dataset.records, engine="prefix", kernel_backend="scalar",
                shards=0,
            )
            runs[f"{label}/scalar-join"] = run_entry(
                scalar_timings, records=tier, pairs=len(scalar),
            )
            if (scalar.pairs, scalar.machine_scores) != (vec.pairs,
                                                         vec.machine_scores):
                print(f"FAIL: {label}: kernel backends disagree",
                      file=sys.stderr)
                return 1
            speedup = scalar_timings.total / max(vec_timings.total, 1e-12)
            derived[f"{label}/speedup_vs_scalar_join"] = round(speedup, 2)
            print(f"{label}/scalar-join: {scalar_timings.total:.2f}s "
                  f"({speedup:.1f}x, identical)")

        if tier <= REFERENCE_CAP:
            reference, ref_timings = _measure(
                dataset.records, engine="reference", kernel_backend="auto",
                shards=0,
            )
            runs[f"{label}/reference"] = run_entry(
                ref_timings, records=tier, pairs=len(reference),
            )
            if (reference.pairs, reference.machine_scores) != (
                    vec.pairs, vec.machine_scores):
                print(f"FAIL: {label}: reference engine disagrees",
                      file=sys.stderr)
                return 1
            speedup = ref_timings.total / max(vec_timings.total, 1e-12)
            derived[f"{label}/speedup_vs_reference"] = round(speedup, 2)
            print(f"{label}/reference: {ref_timings.total:.2f}s "
                  f"({speedup:.1f}x, identical)")

    payload = bench_payload(
        "scale",
        config={
            "tiers": list(TIERS), "seed": SEED, "shards": SHARDS,
            "parallel": PARALLEL, "threshold": PRUNING_THRESHOLD,
            "scalar_cap": SCALAR_CAP, "reference_cap": REFERENCE_CAP,
            "dataset": "largescale", "metric": "jaccard",
        },
        runs=runs,
        derived=derived,
    )
    write_bench_json(OUTPUT, payload)
    print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
