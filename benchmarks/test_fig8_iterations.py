"""Figure 8: crowdsourcing efficiency — number of crowd iterations.

Paper reference: CrowdER+ needs exactly one iteration (everything in one
batch); the remaining batched methods (ACD, PC-Pivot, GCER, TransM) are
roughly comparable to each other; TransNode has no batching at all and is
omitted from the paper's figure (every question is its own round).
"""

import pytest

from repro.experiments.tables import format_table

from common import DATASETS, SETTINGS, comparison, emit

BATCHED_METHODS = ("ACD", "PC-Pivot", "CrowdER+", "GCER", "TransM")


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("setting", SETTINGS)
def test_fig8(benchmark, dataset, setting):
    results = benchmark.pedantic(lambda: comparison(dataset, setting),
                                 rounds=1, iterations=1)
    text = format_table(
        ["method", "crowd iterations"],
        [
            [method, f"{results[method].iterations:.1f}"]
            for method in BATCHED_METHODS  # TransNode omitted, as in the paper
        ],
    )
    emit(f"fig8_iterations_{dataset}_{setting}", text)

    iterations = {method: results[method].iterations
                  for method in BATCHED_METHODS}
    assert iterations["CrowdER+"] == 1.0
    # The batched methods stay within the same regime: a few dozen rounds,
    # not one round per pair.
    pairs = {m: results[m].pairs_issued for m in BATCHED_METHODS}
    for method in ("ACD", "PC-Pivot", "GCER", "TransM"):
        assert iterations[method] < pairs[method] / 5
    # TransNode is sequential: iterations == pairs issued.
    assert results["TransNode"].iterations == results["TransNode"].pairs_issued
