"""Figure 7: crowdsourcing cost — number of record pairs crowdsourced.

Paper reference: CrowdER+ crowdsources the entire candidate set and tops
every chart (on Paper it needs >5-7x ACD's pairs); ACD is moderate; GCER is
budget-matched to ACD by construction; TransM/TransNode need about as many
pairs as ACD on Restaurant/Product (no advantage).
"""

import pytest

from repro.experiments.tables import format_table

from common import DATASETS, SETTINGS, comparison, emit, instance


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("setting", SETTINGS)
def test_fig7(benchmark, dataset, setting):
    results = benchmark.pedantic(lambda: comparison(dataset, setting),
                                 rounds=1, iterations=1)
    text = format_table(
        ["method", "pairs crowdsourced", "fraction of |S|"],
        [
            [method, f"{result.pairs_issued:.0f}",
             f"{result.pairs_issued / len(instance(dataset, setting).candidates):.2f}"]
            for method, result in results.items()
        ],
    )
    emit(f"fig7_pairs_{dataset}_{setting}", text)

    pairs = {method: result.pairs_issued for method, result in results.items()}
    # CrowdER+ asks for the whole candidate set — the most expensive method.
    assert pairs["CrowdER+"] == len(instance(dataset, setting).candidates)
    assert pairs["CrowdER+"] == max(pairs.values())
    # ACD stays well below CrowdER+ on the dense Paper dataset.
    if dataset == "paper":
        assert pairs["ACD"] < 0.6 * pairs["CrowdER+"]
    # GCER is budget-matched to ACD.
    assert pairs["GCER"] <= pairs["ACD"] + 1
