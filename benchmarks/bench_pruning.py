"""Pruning-phase benchmark: reference scoring loop vs the prefix join.

Runs the pruning phase on every dataset with both engines, checks the
outputs are byte-identical, and writes ``BENCH_pruning.json`` at the repo
root in the shared BENCH schema (see :mod:`repro.perf.timing`).

Standalone (no pytest)::

    REPRO_BENCH_SCALE=2 python benchmarks/bench_pruning.py

Environment knobs:
    REPRO_BENCH_SCALE     dataset scale (default 1.0)
    REPRO_BENCH_PARALLEL  also measure a parallel reference run with this
                          many workers (default 0 = skip)
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets.registry import generate  # noqa: E402
from repro.experiments.configs import PRUNING_THRESHOLD  # noqa: E402
from repro.perf.timing import (  # noqa: E402
    StageTimings,
    bench_payload,
    run_entry,
    write_bench_json,
)
from repro.pruning.candidate import build_candidate_set  # noqa: E402
from repro.similarity.composite import (  # noqa: E402
    SimilarityFunction,
    jaccard_similarity_function,
)
from repro.similarity.jaccard import token_jaccard  # noqa: E402

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
PARALLEL = int(os.environ.get("REPRO_BENCH_PARALLEL", "0"))
SEED = 1
DATASETS = ("paper", "restaurant", "product")
OUTPUT = REPO_ROOT / "BENCH_pruning.json"


def reference_similarity() -> SimilarityFunction:
    """The seed's metric: plain token Jaccard, no view cache, no set
    metadata — forces the reference engine's text-scoring loop."""
    return SimilarityFunction("jaccard", token_jaccard)


def main() -> int:
    runs = {}
    derived = {}
    for dataset_name in DATASETS:
        dataset = generate(dataset_name, scale=SCALE, seed=SEED)

        ref_timings = StageTimings()
        reference = build_candidate_set(
            dataset.records, reference_similarity(),
            threshold=PRUNING_THRESHOLD, engine="reference",
            timings=ref_timings,
        )
        ref_timings.record_throughput("records_per_second",
                                      len(dataset.records))
        ref_timings.record_peak_rss()
        runs[f"{dataset_name}/reference"] = run_entry(
            ref_timings, records=len(dataset.records), pairs=len(reference),
        )

        join_timings = StageTimings()
        joined = build_candidate_set(
            dataset.records, jaccard_similarity_function(),
            threshold=PRUNING_THRESHOLD, engine="prefix",
            timings=join_timings,
        )
        join_timings.record_throughput("records_per_second",
                                       len(dataset.records))
        join_timings.record_peak_rss()
        runs[f"{dataset_name}/prefix"] = run_entry(
            join_timings, records=len(dataset.records), pairs=len(joined),
        )

        identical = (
            reference.pairs == joined.pairs
            and reference.machine_scores == joined.machine_scores
        )
        if not identical:
            print(f"FAIL: {dataset_name}: engines disagree", file=sys.stderr)
            return 1
        speedup = ref_timings.total / max(join_timings.total, 1e-12)
        derived[f"{dataset_name}/speedup"] = round(speedup, 2)
        print(
            f"{dataset_name}: reference {ref_timings.total:.3f}s, "
            f"prefix {join_timings.total:.3f}s "
            f"({speedup:.1f}x, {len(joined)} pairs, identical)"
        )

        if PARALLEL > 1:
            par_timings = StageTimings()
            parallel = build_candidate_set(
                dataset.records, reference_similarity(),
                threshold=PRUNING_THRESHOLD, engine="reference",
                parallel=PARALLEL, timings=par_timings,
            )
            if parallel.pairs != reference.pairs:
                print(f"FAIL: {dataset_name}: parallel run disagrees",
                      file=sys.stderr)
                return 1
            runs[f"{dataset_name}/reference-parallel{PARALLEL}"] = run_entry(
                par_timings, records=len(dataset.records), pairs=len(parallel),
            )

    derived["min_speedup"] = min(
        value for key, value in derived.items() if key.endswith("/speedup")
    )
    payload = bench_payload(
        "pruning",
        config={"scale": SCALE, "seed": SEED, "parallel": PARALLEL,
                "threshold": PRUNING_THRESHOLD, "datasets": list(DATASETS)},
        runs=runs,
        derived=derived,
    )
    write_bench_json(OUTPUT, payload)
    print(f"wrote {OUTPUT} (min speedup {derived['min_speedup']}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
