"""End-to-end benchmark: pruning + full ACD run per dataset.

Times the two phases the fast-path work targets — candidate generation
(``pruning``) and the crowd pipeline that consumes it (``acd``) — and
writes ``BENCH_endtoend.json`` at the repo root in the shared BENCH schema.

Standalone (no pytest)::

    REPRO_BENCH_SCALE=0.3 python benchmarks/bench_endtoend.py

Environment knobs:
    REPRO_BENCH_SCALE          dataset scale (default 1.0)
    REPRO_BENCH_ENGINE         pruning engine (default auto)
    REPRO_BENCH_PARALLEL       reference-scoring worker processes (default 0)
    REPRO_BENCH_REFINE_ENGINE  refinement engine for the ``acd`` stage
                               (default fast; the ``acd_reference`` stage
                               always runs the reference engine for the
                               speedup comparison)
    REPRO_BENCH_PIVOT_ENGINE   cluster-generation engine for the ``acd``
                               stage (default fast; the
                               ``acd_pivot_reference`` stage always runs
                               the reference engine for the comparison)
"""

from __future__ import annotations

import os
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.runner import (  # noqa: E402
    ACD_METHOD,
    prepare_instance,
    run_method,
)
from repro.obs import ObsContext  # noqa: E402
from repro.perf.timing import (  # noqa: E402
    StageTimings,
    bench_payload,
    run_entry,
    write_bench_json,
)

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
ENGINE = os.environ.get("REPRO_BENCH_ENGINE", "auto")
PARALLEL = int(os.environ.get("REPRO_BENCH_PARALLEL", "0"))
REFINE_ENGINE = os.environ.get("REPRO_BENCH_REFINE_ENGINE", "fast")
PIVOT_ENGINE = os.environ.get("REPRO_BENCH_PIVOT_ENGINE", "fast")
SEED = 1
SETTING = "3w"
DATASETS = ("paper", "restaurant", "product")
OUTPUT = REPO_ROOT / "BENCH_endtoend.json"


def main() -> int:
    runs = {}
    plain_total = 0.0
    traced_total = 0.0
    reference_total = 0.0
    pivot_reference_total = 0.0
    for dataset_name in DATASETS:
        timings = StageTimings()
        with timings.stage("pruning"):
            instance = prepare_instance(
                dataset_name, SETTING, scale=SCALE, seed=SEED,
                engine=ENGINE, parallel=PARALLEL,
            )
        # Untimed warm-up: the first run populates the lazy answer file,
        # which would otherwise be billed to whichever stage runs first.
        run_method(ACD_METHOD, instance, seed=SEED,
                   refine_engine=REFINE_ENGINE, pivot_engine=PIVOT_ENGINE)
        with timings.stage("acd"):
            result = run_method(ACD_METHOD, instance, seed=SEED,
                                refine_engine=REFINE_ENGINE,
                                pivot_engine=PIVOT_ENGINE)
        # The same pipeline under the full-re-evaluation refinement engine:
        # the delta is the incremental engine's end-to-end win.
        with timings.stage("acd_reference"):
            reference = run_method(ACD_METHOD, instance, seed=SEED,
                                   refine_engine="reference",
                                   pivot_engine=PIVOT_ENGINE)
        assert reference.pairs_issued == result.pairs_issued, \
            "refinement engines must agree"
        # And under the per-round re-derivation pivot engine: the delta is
        # the incremental pivot order's end-to-end win.
        with timings.stage("acd_pivot_reference"):
            pivot_reference = run_method(ACD_METHOD, instance, seed=SEED,
                                         refine_engine=REFINE_ENGINE,
                                         pivot_engine="reference")
        assert pivot_reference.pairs_issued == result.pairs_issued, \
            "pivot engines must agree"
        # Same run again under full observability (spans + metrics + JSONL
        # stream to disk) — the delta is the tracing overhead.
        with tempfile.TemporaryDirectory() as tmpdir:
            with timings.stage("acd_traced"):
                with ObsContext.to_path(Path(tmpdir) / "bench.trace.jsonl") as obs:
                    traced = run_method(ACD_METHOD, instance, seed=SEED,
                                        obs=obs, refine_engine=REFINE_ENGINE)
        assert traced.pairs_issued == result.pairs_issued, \
            "tracing must not perturb the run"
        plain_total += timings.seconds("acd")
        traced_total += timings.seconds("acd_traced")
        reference_total += timings.seconds("acd_reference")
        pivot_reference_total += timings.seconds("acd_pivot_reference")
        timings.record_throughput("pruning_records_per_second",
                                  len(instance.record_ids), stage="pruning")
        timings.record_peak_rss()
        runs[dataset_name] = run_entry(
            timings,
            records=len(instance.record_ids),
            candidate_pairs=len(instance.candidates),
            f1=round(result.f1, 4),
            pairs_issued=result.pairs_issued,
        )
        print(
            f"{dataset_name}: pruning {timings.seconds('pruning'):.3f}s, "
            f"acd {timings.seconds('acd'):.3f}s, "
            f"reference {timings.seconds('acd_reference'):.3f}s, "
            f"pivot-reference {timings.seconds('acd_pivot_reference'):.3f}s, "
            f"traced {timings.seconds('acd_traced'):.3f}s, "
            f"F1 {result.f1:.3f}"
        )

    overhead_pct = ((traced_total - plain_total) / plain_total * 100.0
                    if plain_total > 0 else 0.0)
    acd_speedup = (reference_total / plain_total if plain_total > 0 else 1.0)
    pivot_speedup = (pivot_reference_total / plain_total
                     if plain_total > 0 else 1.0)
    payload = bench_payload(
        "endtoend",
        config={"scale": SCALE, "seed": SEED, "engine": ENGINE,
                "parallel": PARALLEL, "setting": SETTING,
                "refine_engine": REFINE_ENGINE,
                "pivot_engine": PIVOT_ENGINE,
                "datasets": list(DATASETS)},
        runs=runs,
        derived={"trace_overhead_pct": round(overhead_pct, 2),
                 "acd_speedup_vs_reference": round(acd_speedup, 2),
                 "acd_speedup_vs_pivot_reference": round(pivot_speedup, 2)},
    )
    write_bench_json(OUTPUT, payload)
    print(f"trace overhead: {overhead_pct:+.2f}% "
          f"(plain {plain_total:.3f}s, traced {traced_total:.3f}s)")
    print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
