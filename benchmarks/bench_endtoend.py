"""End-to-end benchmark: pruning + full ACD run per dataset.

Times the two phases the fast-path work targets — candidate generation
(``pruning``) and the crowd pipeline that consumes it (``acd``) — and
writes ``BENCH_endtoend.json`` at the repo root in the shared BENCH schema.

Standalone (no pytest)::

    REPRO_BENCH_SCALE=0.3 python benchmarks/bench_endtoend.py

Environment knobs:
    REPRO_BENCH_SCALE          dataset scale (default 1.0)
    REPRO_BENCH_ENGINE         pruning engine (default auto)
    REPRO_BENCH_PARALLEL       reference-scoring worker processes (default 0)
    REPRO_BENCH_REFINE_ENGINE  refinement engine for the ``acd`` stage
                               (default fast; the ``acd_reference`` stage
                               always runs the reference engine for the
                               speedup comparison)
    REPRO_BENCH_PIVOT_ENGINE   cluster-generation engine for the ``acd``
                               stage (default fast; the
                               ``acd_pivot_reference`` stage always runs
                               the reference engine for the comparison)
    REPRO_BENCH_STAGES         comma list of stage groups to run:
                               ``classic`` (the per-dataset stages above),
                               ``pipelined`` (the makespan comparison
                               below), or both (the default)
    REPRO_BENCH_PIPELINE_RECORDS    pipelined-stage record count
                                    (default 100000)
    REPRO_BENCH_PIPELINE_LATENCY    simulated crowd-round latency in
                                    seconds (default 0.002; must be > 0
                                    for an honest makespan)
    REPRO_BENCH_PIPELINE_WORKERS    shared-pool worker processes
                                    (default 8)
    REPRO_BENCH_PIPELINE_SHARDS     pruning shards (default 32)
    REPRO_BENCH_PIPELINE_CONFUSION  largescale confusion rate
                                    (default 0.25 — the heavier crowd
                                    workload widens the overlap window
                                    the pipeline exploits)

The ``pipelined`` stage times the same 100k-tier largescale workload
twice under an identical simulated crowd-latency model — barrier sharded
execution (pruning, then sharded pivot, then sharded refine) vs the
component-streaming pipeline — asserts the outputs byte-identical, and
emits ``pipeline_makespan_speedup`` (barrier / pipelined wall-clock) and
``pipeline_overlap_efficiency`` (the fraction of the shorter
overlappable phase the pipeline actually hid).
"""

from __future__ import annotations

import os
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.runner import (  # noqa: E402
    ACD_METHOD,
    prepare_instance,
    run_method,
)
from repro.obs import ObsContext  # noqa: E402
from repro.perf.timing import (  # noqa: E402
    StageTimings,
    bench_payload,
    run_entry,
    write_bench_json,
)

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
ENGINE = os.environ.get("REPRO_BENCH_ENGINE", "auto")
PARALLEL = int(os.environ.get("REPRO_BENCH_PARALLEL", "0"))
REFINE_ENGINE = os.environ.get("REPRO_BENCH_REFINE_ENGINE", "fast")
PIVOT_ENGINE = os.environ.get("REPRO_BENCH_PIVOT_ENGINE", "fast")
SEED = 1
SETTING = "3w"
DATASETS = ("paper", "restaurant", "product")
OUTPUT = REPO_ROOT / "BENCH_endtoend.json"
STAGES = tuple(
    part.strip()
    for part in os.environ.get("REPRO_BENCH_STAGES",
                               "classic,pipelined").split(",")
    if part.strip()
)
PIPELINE_RECORDS = int(os.environ.get("REPRO_BENCH_PIPELINE_RECORDS",
                                      "100000"))
PIPELINE_LATENCY = float(os.environ.get("REPRO_BENCH_PIPELINE_LATENCY",
                                        "0.002"))
PIPELINE_WORKERS = int(os.environ.get("REPRO_BENCH_PIPELINE_WORKERS", "8"))
PIPELINE_SHARDS = int(os.environ.get("REPRO_BENCH_PIPELINE_SHARDS", "32"))
PIPELINE_CONFUSION = float(os.environ.get("REPRO_BENCH_PIPELINE_CONFUSION",
                                          "0.25"))


def _in_fork(fn):
    """Run ``fn`` in a forked child process and return its result.

    Each timed side of the makespan comparison gets a pristine process:
    neither side's measurement is taxed by the other side's leftover
    heap (fork page-faults, GC pressure), and the order the two sides
    run in stops mattering.
    """
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    receiver, sender = ctx.Pipe(duplex=False)

    def _target() -> None:
        try:
            payload = ("ok", fn())
        except BaseException as exc:
            payload = ("err", f"{type(exc).__name__}: {exc}")
        sender.send(payload)
        sender.close()

    proc = ctx.Process(target=_target)
    proc.start()
    sender.close()
    status, payload = receiver.recv()
    proc.join()
    if status != "ok":
        raise RuntimeError(f"benchmark stage failed in fork: {payload}")
    return payload


def pipelined_stage(runs: dict) -> dict:
    """Barrier vs pipelined makespan under one crowd-latency model."""
    from repro.core.acd import run_acd
    from repro.crowd.cache import AnswerFile
    from repro.crowd.latency import SimulatedLatencyAnswers
    from repro.crowd.worker import WorkerPool
    from repro.datasets.registry import generate
    from repro.experiments.configs import PRUNING_THRESHOLD, difficulty_model
    from repro.pruning.candidate import build_candidate_set
    from repro.runtime.pipeline import run_pipeline
    from repro.similarity.composite import jaccard_similarity_function

    dataset = generate("largescale", scale=PIPELINE_RECORDS / 10_000,
                       seed=SEED, confusion=PIPELINE_CONFUSION)
    crowd = WorkerPool(difficulty=difficulty_model("largescale"),
                       num_workers=3)

    def latency_answers():
        # Fresh per run: AnswerFile resolves each pair from a pair-seeded
        # RNG, so both executions see byte-identical crowd answers; the
        # wrapper makes each worker-side crowd round cost real wall-clock.
        return SimulatedLatencyAnswers(AnswerFile(dataset.gold, crowd),
                                       PIPELINE_LATENCY)

    def barrier_side():
        side = StageTimings()
        with side.stage("barrier_pruning"):
            candidates = build_candidate_set(
                dataset.records, jaccard_similarity_function(),
                threshold=PRUNING_THRESHOLD, shards=PIPELINE_SHARDS,
                parallel=PIPELINE_WORKERS,
            )
        with side.stage("barrier_acd"):
            barrier = run_acd(
                dataset.record_ids, candidates, latency_answers(),
                seed=SEED, pivot_shards=64,
                pivot_processes=PIPELINE_WORKERS,
                refine_shards=64, refine_processes=PIPELINE_WORKERS,
            )
        side.record_peak_rss("barrier_peak_rss_bytes")
        return side, (candidates.pairs, barrier.clustering.to_state(),
                      barrier.stats.snapshot(),
                      list(barrier.stats.batch_sizes))

    def pipelined_side():
        side = StageTimings()
        with side.stage("pipelined"):
            piped = run_pipeline(
                latency_answers(), records=dataset.records,
                similarity=jaccard_similarity_function(),
                threshold=PRUNING_THRESHOLD,
                pruning_shards=PIPELINE_SHARDS,
                workers=PIPELINE_WORKERS, seed=SEED, timings=side,
            )
        side.record_peak_rss()
        meta = dict(candidate_pairs=len(piped.candidates),
                    clusters=len(piped.result.clustering),
                    pool=piped.report.as_dict())
        return side, (piped.candidates.pairs,
                      piped.result.clustering.to_state(),
                      piped.result.stats.snapshot(),
                      list(piped.result.stats.batch_sizes)), meta

    barrier_timings, barrier_fp = _in_fork(barrier_side)
    pipelined_timings, piped_fp, piped_meta = _in_fork(pipelined_side)

    assert piped_fp[0] == barrier_fp[0], \
        "pipelined pruning must match the barrier candidate set"
    assert piped_fp[1] == barrier_fp[1], \
        "pipelined clustering must be byte-identical to barrier"
    assert piped_fp[2] == barrier_fp[2], \
        "pipelined crowd stats must be byte-identical to barrier"
    assert piped_fp[3] == barrier_fp[3], \
        "pipelined crowd rounds must be byte-identical to barrier"

    timings = StageTimings()
    for name, seconds in {**barrier_timings.as_dict(),
                          **pipelined_timings.as_dict()}.items():
        timings.add(name, seconds)
    for name, value in {**barrier_timings.meters,
                        **pipelined_timings.meters}.items():
        timings.set_meter(name, value)

    prune_s = timings.seconds("barrier_pruning")
    acd_s = timings.seconds("barrier_acd")
    barrier_s = prune_s + acd_s
    pipelined_s = timings.seconds("pipelined")
    speedup = barrier_s / pipelined_s if pipelined_s > 0 else 1.0
    # The pipeline can hide at most the shorter of the two phases it
    # overlaps (pruning compute vs the crowd phases); efficiency is the
    # fraction of that bound it actually hid.
    hidable = min(prune_s, acd_s)
    efficiency = ((barrier_s - pipelined_s) / hidable
                  if hidable > 0 else 0.0)
    runs["pipelined"] = run_entry(
        timings,
        records=len(dataset.record_ids),
        workers=PIPELINE_WORKERS,
        pruning_shards=PIPELINE_SHARDS,
        round_latency_s=PIPELINE_LATENCY,
        confusion=PIPELINE_CONFUSION,
        **piped_meta,
    )
    print(f"pipelined: barrier {barrier_s:.3f}s "
          f"(pruning {prune_s:.3f}s + acd {acd_s:.3f}s), "
          f"pipelined {pipelined_s:.3f}s, speedup {speedup:.2f}x, "
          f"overlap efficiency {efficiency:.2f}")
    return {
        "pipeline_makespan_speedup": round(speedup, 2),
        "pipeline_overlap_efficiency": round(efficiency, 2),
    }


def main() -> int:
    runs = {}
    plain_total = 0.0
    traced_total = 0.0
    reference_total = 0.0
    pivot_reference_total = 0.0
    for dataset_name in (DATASETS if "classic" in STAGES else ()):
        timings = StageTimings()
        with timings.stage("pruning"):
            instance = prepare_instance(
                dataset_name, SETTING, scale=SCALE, seed=SEED,
                engine=ENGINE, parallel=PARALLEL,
            )
        # Untimed warm-up: the first run populates the lazy answer file,
        # which would otherwise be billed to whichever stage runs first.
        run_method(ACD_METHOD, instance, seed=SEED,
                   refine_engine=REFINE_ENGINE, pivot_engine=PIVOT_ENGINE)
        with timings.stage("acd"):
            result = run_method(ACD_METHOD, instance, seed=SEED,
                                refine_engine=REFINE_ENGINE,
                                pivot_engine=PIVOT_ENGINE)
        # The same pipeline under the full-re-evaluation refinement engine:
        # the delta is the incremental engine's end-to-end win.
        with timings.stage("acd_reference"):
            reference = run_method(ACD_METHOD, instance, seed=SEED,
                                   refine_engine="reference",
                                   pivot_engine=PIVOT_ENGINE)
        assert reference.pairs_issued == result.pairs_issued, \
            "refinement engines must agree"
        # And under the per-round re-derivation pivot engine: the delta is
        # the incremental pivot order's end-to-end win.
        with timings.stage("acd_pivot_reference"):
            pivot_reference = run_method(ACD_METHOD, instance, seed=SEED,
                                         refine_engine=REFINE_ENGINE,
                                         pivot_engine="reference")
        assert pivot_reference.pairs_issued == result.pairs_issued, \
            "pivot engines must agree"
        # Same run again under full observability (spans + metrics + JSONL
        # stream to disk) — the delta is the tracing overhead.
        with tempfile.TemporaryDirectory() as tmpdir:
            with timings.stage("acd_traced"):
                with ObsContext.to_path(Path(tmpdir) / "bench.trace.jsonl") as obs:
                    traced = run_method(ACD_METHOD, instance, seed=SEED,
                                        obs=obs, refine_engine=REFINE_ENGINE)
        assert traced.pairs_issued == result.pairs_issued, \
            "tracing must not perturb the run"
        plain_total += timings.seconds("acd")
        traced_total += timings.seconds("acd_traced")
        reference_total += timings.seconds("acd_reference")
        pivot_reference_total += timings.seconds("acd_pivot_reference")
        timings.record_throughput("pruning_records_per_second",
                                  len(instance.record_ids), stage="pruning")
        timings.record_peak_rss()
        runs[dataset_name] = run_entry(
            timings,
            records=len(instance.record_ids),
            candidate_pairs=len(instance.candidates),
            f1=round(result.f1, 4),
            pairs_issued=result.pairs_issued,
        )
        print(
            f"{dataset_name}: pruning {timings.seconds('pruning'):.3f}s, "
            f"acd {timings.seconds('acd'):.3f}s, "
            f"reference {timings.seconds('acd_reference'):.3f}s, "
            f"pivot-reference {timings.seconds('acd_pivot_reference'):.3f}s, "
            f"traced {timings.seconds('acd_traced'):.3f}s, "
            f"F1 {result.f1:.3f}"
        )

    derived = {}
    if "classic" in STAGES:
        overhead_pct = ((traced_total - plain_total) / plain_total * 100.0
                        if plain_total > 0 else 0.0)
        acd_speedup = (reference_total / plain_total
                       if plain_total > 0 else 1.0)
        pivot_speedup = (pivot_reference_total / plain_total
                         if plain_total > 0 else 1.0)
        derived.update(
            trace_overhead_pct=round(overhead_pct, 2),
            acd_speedup_vs_reference=round(acd_speedup, 2),
            acd_speedup_vs_pivot_reference=round(pivot_speedup, 2),
        )
        print(f"trace overhead: {overhead_pct:+.2f}% "
              f"(plain {plain_total:.3f}s, traced {traced_total:.3f}s)")
    if "pipelined" in STAGES:
        derived.update(pipelined_stage(runs))

    payload = bench_payload(
        "endtoend",
        config={"scale": SCALE, "seed": SEED, "engine": ENGINE,
                "parallel": PARALLEL, "setting": SETTING,
                "refine_engine": REFINE_ENGINE,
                "pivot_engine": PIVOT_ENGINE,
                "datasets": list(DATASETS),
                "stages": list(STAGES),
                "pipeline_records": PIPELINE_RECORDS,
                "pipeline_latency_s": PIPELINE_LATENCY,
                "pipeline_workers": PIPELINE_WORKERS,
                "pipeline_shards": PIPELINE_SHARDS,
                "pipeline_confusion": PIPELINE_CONFUSION},
        runs=runs,
        derived=derived,
    )
    write_bench_json(OUTPUT, payload)
    print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
