"""Figure 10 (Appendix C): the effect of PC-Refine's budget T = N_m / x.

Paper reference (3-worker setting, x swept over {2, 4, 8, 16}):
  10(a) crowdsourced pairs fall as T shrinks, then flatten around N_m/8
        (on Paper; Restaurant/Product barely move — their generation-phase
        output is already good, so refinement does little regardless of T).
  10(b) F1 is insensitive to T (the stopping condition, not the batch
        budget, decides the final quality).
  10(c) crowd iterations grow slowly until N_m/8, then roughly double at
        N_m/16 (on Paper).
"""

import pytest

from repro.experiments.tables import format_threshold_sweep

from common import DATASETS, emit, t_sweep


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig10(benchmark, dataset):
    points = benchmark.pedantic(lambda: t_sweep(dataset),
                                rounds=1, iterations=1)
    emit(f"fig10_threshold_{dataset}", format_threshold_sweep(points))

    f1 = [point.f1 for point in points]
    iterations = [point.refinement_iterations for point in points]

    # 10(b): F1 insensitive to T.
    assert max(f1) - min(f1) < 0.08
    # 10(c): shrinking T (growing divisor) cannot reduce iteration count.
    for left, right in zip(iterations, iterations[1:]):
        assert right >= left - 1.0  # weakly increasing up to noise
    # Refinement activity concentrates on the hard dataset.
    if dataset == "paper":
        assert points[2].refinement_pairs > 0
