"""Figure 6: deduplication accuracy (F1) of all methods.

Paper reference: CrowdER+ consistently highest; ACD highly comparable to
CrowdER+ at a fraction of the cost; ACD clearly beats bare PC-Pivot on
Paper (large crowd error) but is close on Restaurant/Product; GCER below
ACD at the same budget (except Restaurant-5w where they are close);
TransM/TransNode collapse on Paper and degrade more than others when going
from 5 to 3 workers.
"""

import pytest

from repro.experiments.tables import format_comparison

from common import DATASETS, SETTINGS, comparison, emit


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("setting", SETTINGS)
def test_fig6(benchmark, dataset, setting):
    results = benchmark.pedantic(lambda: comparison(dataset, setting),
                                 rounds=1, iterations=1)
    emit(f"fig6_f1_{dataset}_{setting}", format_comparison(results))

    f1 = {method: result.f1 for method, result in results.items()}
    # ACD is comparable to CrowdER+ (within a few points of F1).
    assert f1["ACD"] >= f1["CrowdER+"] - 0.12
    # ACD dominates the trans-based methods and GCER everywhere but the
    # near-perfect-crowd Restaurant-5w corner.
    if not (dataset == "restaurant" and setting == "5w"):
        assert f1["ACD"] >= f1["GCER"] - 0.03
    assert f1["ACD"] >= f1["TransM"] - 0.03
    # Refinement matters most where the crowd errs most.
    if dataset == "paper":
        assert f1["ACD"] > f1["PC-Pivot"] + 0.05
        assert f1["ACD"] > f1["TransM"] + 0.2
        assert f1["ACD"] > f1["TransNode"] + 0.2


def test_fig6_worker_setting_effect(benchmark):
    """All methods gain accuracy from 3w -> 5w; the trans-based methods
    degrade *more* than ACD when workers are reduced (on the hard dataset)."""
    def deltas():
        three = comparison("paper", "3w")
        five = comparison("paper", "5w")
        return {
            method: five[method].f1 - three[method].f1
            for method in three
        }
    gains = benchmark.pedantic(deltas, rounds=1, iterations=1)
    emit("fig6_worker_effect_paper", "\n".join(
        f"{method:10s} 5w-3w F1 gain: {gain:+.3f}"
        for method, gain in gains.items()
    ))
    assert gains["TransM"] > gains["ACD"] - 0.02
