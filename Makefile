.PHONY: install test bench bench-quick bench-smoke bench-refine bench-pivot bench-scale bench-scale-smoke bench-pipeline chaos-smoke chaos-runtime trace-smoke examples lint clean

install:
	python setup.py develop

test:
	pytest tests/ -q

bench:
	pytest benchmarks/ --benchmark-only -q

bench-quick:
	REPRO_BENCH_SCALE=0.3 REPRO_BENCH_REPS=2 pytest benchmarks/ --benchmark-only -q

# Tiny-scale perf harness: regenerates BENCH_pruning.json and
# BENCH_endtoend.json at the repo root (machine-readable stage timings).
bench-smoke:
	REPRO_BENCH_SCALE=0.3 python benchmarks/bench_pruning.py
	REPRO_BENCH_SCALE=0.2 python benchmarks/bench_endtoend.py

# Refinement-engine benchmark: fast (incremental, cached) vs reference
# (full re-evaluation) PC-Refine on every dataset, asserting identical
# outputs.  Regenerates BENCH_refine.json at the repo root.
bench-refine:
	REPRO_BENCH_SCALE=0.5 python benchmarks/bench_refine.py

# Pivot-engine benchmark: fast (incremental live order, fused Equation-4
# scan) vs reference (per-round re-derivation) PC-Pivot on every dataset,
# asserting identical outputs.  Regenerates BENCH_pivot.json at the repo
# root.
bench-pivot:
	REPRO_BENCH_SCALE=1.0 python benchmarks/bench_pivot.py

# Scale benchmark: vectorized sharded pruning vs the scalar paths on the
# synthetic largescale population (10k / 100k / 1M records), asserting
# byte-identical candidate sets, plus the cluster-generation stage
# (classic vs sharded-parallel PC-Pivot, identical clusterings, crowd-
# iteration and wall-clock speedups) on tiers up to
# REPRO_BENCH_GENERATION_CAP and the refinement stage (classic vs
# sharded-parallel PC-Refine on a confused regeneration of the tier,
# refine_speedup / refine_iteration_speedup, advisory classic-parity
# flag) on tiers up to REPRO_BENCH_REFINE_CAP.  Regenerates
# BENCH_scale.json at the repo root with records/sec, pairs/sec, and
# peak-RSS meters.
bench-scale:
	python benchmarks/bench_scale.py

# 10k-only tier for CI runners (minutes, not tens of minutes).
bench-scale-smoke:
	REPRO_BENCH_SCALE_TIERS=10000 python benchmarks/bench_scale.py

# Pipelined-executor smoke: barrier vs component-streaming pipelined
# execution of the same sharded configuration under a simulated crowd
# latency model, asserting byte-identical candidate sets and final
# clusterings and reporting pipeline_makespan_speedup /
# pipeline_overlap_efficiency.  Runs a reduced 20k tier for CI runners
# (the committed BENCH_endtoend.json carries the full 100k tier);
# regenerates BENCH_endtoend.json at the repo root.
bench-pipeline:
	REPRO_BENCH_STAGES=pipelined REPRO_BENCH_PIPELINE_RECORDS=20000 \
		REPRO_BENCH_PIPELINE_WORKERS=4 \
		python benchmarks/bench_endtoend.py

# Fault-injection smoke: every pipeline family must terminate under the
# default hostile crowd (abandonment, timeouts, spammers, early quorum),
# the supervised worker pools must stay byte-identical under process
# faults (kills, delays, poison chunks) for the sharded pruning join,
# the sharded cluster-generation engine, the sharded refinement engine,
# and the component-streaming pipelined executor (also checked against
# barrier execution), and all three phase checkpoints (pruning /
# generation / refinement) must kill-resume byte-identically.
# Regenerates CHAOS_smoke.json at the repo root.
chaos-smoke:
	python -m repro chaos --dataset restaurant --scale 0.1 --seeds 5 \
		--output CHAOS_smoke.json

# Runtime-focused chaos: the process-fault matrix (worker kills / task
# delays / poison chunks on sharded 10k pruning, sharded cluster
# generation, sharded refinement, and the pipelined executor) and the
# checkpoint kill-resume
# checks for all three phases, with the crowd-side sweep cut to a
# single seed.  Writes CHAOS_runtime.json (not tracked).
chaos-runtime:
	python -m repro chaos --dataset restaurant --scale 0.1 --seeds 1 \
		--runtime-records 10000 --output CHAOS_runtime.json

# Observability smoke: one traced run end to end, then the manifest must
# validate and the trace must summarize.  Regenerates TRACE_smoke.jsonl
# and TRACE_smoke.manifest.json at the repo root.
trace-smoke:
	python -m repro run restaurant --scale 0.1 --trace TRACE_smoke.jsonl
	python -m repro trace validate TRACE_smoke.manifest.json
	python -m repro trace summarize TRACE_smoke.jsonl

examples:
	for script in examples/*.py; do \
		echo "=== $$script ==="; \
		python $$script || exit 1; \
	done

lint:
	python -m py_compile $$(find src -name '*.py')

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
