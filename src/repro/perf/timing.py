"""Scoped wall-clock timers and the ``BENCH_*.json`` schema.

The pruning engine and the benchmark harness share one instrumentation
vocabulary: a :class:`StageTimings` accumulates named stage durations
(``blocking``, ``scoring``, ``total``, ...) via the :meth:`StageTimings.stage`
context manager, and :func:`write_bench_json` persists a benchmark run as a
machine-readable JSON document that future PRs regress against.

BENCH JSON schema (one document per benchmark)::

    {
      "benchmark": "pruning",              # harness name
      "schema_version": 1,
      "created_unix": 1754000000.0,        # time.time() at write
      "config": {"scale": 2.0, ...},       # harness knobs (env-driven)
      "runs": {                            # one entry per measured variant
        "paper/reference": {
          "stages": {"blocking": 0.41, "scoring": 3.2, "total": 3.61},
          "meters": {"peak_rss_bytes": 73400320,      # optional gauges
                     "records_per_second": 14200.0},
          "meta":   {"records": 600, "pairs": 1234}
        },
        ...
      },
      "derived": {"speedup": 4.2, ...}     # harness-computed summaries
    }

Timings are wall-clock seconds from :func:`time.perf_counter`.  Repeated
entries to the same stage accumulate, so a stage may wrap a loop body.

Besides durations, a :class:`StageTimings` carries *meters* — point-in-time
gauges such as peak RSS (:func:`peak_rss_bytes`) and derived throughputs
(records/sec, pairs/sec via :meth:`StageTimings.record_throughput`).  Meters
ride along in the same run entry under a ``meters`` key, so every benchmark
that reports timings can report memory and throughput for free.
"""

from __future__ import annotations

import json
import resource
import sys
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Union

SCHEMA_VERSION = 1


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes.

    Uses ``resource.getrusage`` (always available on POSIX; no psutil
    dependency).  ``ru_maxrss`` is kibibytes on Linux but bytes on macOS —
    normalized here.  Note this is a high-water mark since process start,
    not the current footprint: record it right after the stage of interest
    and interpret deltas accordingly.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return int(peak)
    return int(peak) * 1024


class StageTimings:
    """Accumulates named wall-clock stage durations.

    >>> timings = StageTimings()
    >>> with timings.stage("blocking"):
    ...     pass
    >>> sorted(timings.as_dict()) == ["blocking"]
    True
    """

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}
        self._meters: Dict[str, float] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under ``name`` (accumulating on re-entry)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to stage ``name``."""
        if seconds < 0:
            raise ValueError(f"negative duration for stage {name!r}: {seconds}")
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    def seconds(self, name: str) -> float:
        """Accumulated seconds of one stage (0.0 if never entered)."""
        return self._seconds.get(name, 0.0)

    @property
    def total(self) -> float:
        """Sum of all recorded stages (excluding an explicit 'total' stage)."""
        return sum(
            seconds for name, seconds in self._seconds.items() if name != "total"
        )

    def set_meter(self, name: str, value: float) -> None:
        """Set a gauge meter (overwrites; meters are point measurements)."""
        self._meters[name] = value

    def record_peak_rss(self, name: str = "peak_rss_bytes") -> int:
        """Capture the process peak RSS into meter ``name``; returns it."""
        peak = peak_rss_bytes()
        self.set_meter(name, float(peak))
        return peak

    def record_throughput(self, name: str, count: int,
                          stage: Optional[str] = None) -> float:
        """Derive an items-per-second meter from a recorded stage.

        Args:
            name: Meter name (e.g. ``records_per_second``).
            count: Items processed (records, pairs, ...).
            stage: Stage whose duration divides ``count``; defaults to the
                cross-stage total.

        Returns:
            The computed rate (0.0 when the duration is not measurable).
        """
        seconds = self.seconds(stage) if stage is not None else self.total
        rate = count / seconds if seconds > 0 else 0.0
        self.set_meter(name, rate)
        return rate

    @property
    def meters(self) -> Dict[str, float]:
        """Meter -> value mapping, insertion-ordered."""
        return dict(self._meters)

    def as_dict(self) -> Dict[str, float]:
        """Stage -> seconds mapping, insertion-ordered."""
        return dict(self._seconds)

    def with_total(self) -> Dict[str, float]:
        """Stage mapping plus a ``total`` key (explicit total wins if set)."""
        out = self.as_dict()
        out.setdefault("total", self.total)
        return out

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={seconds:.4f}s" for name, seconds in self._seconds.items()
        )
        return f"StageTimings({inner})"


def bench_payload(
    benchmark: str,
    config: Optional[Mapping[str, Any]] = None,
    runs: Optional[Mapping[str, Mapping[str, Any]]] = None,
    derived: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a BENCH document in the shared schema (see module docstring)."""
    return {
        "benchmark": benchmark,
        "schema_version": SCHEMA_VERSION,
        "created_unix": time.time(),
        "config": dict(config or {}),
        "runs": {name: dict(run) for name, run in (runs or {}).items()},
        "derived": dict(derived or {}),
    }


def run_entry(
    timings: StageTimings, **meta: Any
) -> Dict[str, Any]:
    """One ``runs`` entry: stage timings (with total), any recorded meters
    (peak RSS, throughputs), plus free-form meta."""
    entry: Dict[str, Any] = {"stages": timings.with_total()}
    if timings.meters:
        entry["meters"] = timings.meters
    entry["meta"] = dict(meta)
    return entry


def write_bench_json(path: Union[str, Path], payload: Mapping[str, Any]) -> Path:
    """Write a BENCH document; returns the resolved path."""
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return target


def read_bench_json(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a BENCH document back (inverse of :func:`write_bench_json`)."""
    return json.loads(Path(path).read_text())
