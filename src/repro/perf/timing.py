"""Scoped wall-clock timers and the ``BENCH_*.json`` schema.

The pruning engine and the benchmark harness share one instrumentation
vocabulary: a :class:`StageTimings` accumulates named stage durations
(``blocking``, ``scoring``, ``total``, ...) via the :meth:`StageTimings.stage`
context manager, and :func:`write_bench_json` persists a benchmark run as a
machine-readable JSON document that future PRs regress against.

BENCH JSON schema (one document per benchmark)::

    {
      "benchmark": "pruning",              # harness name
      "schema_version": 1,
      "created_unix": 1754000000.0,        # time.time() at write
      "config": {"scale": 2.0, ...},       # harness knobs (env-driven)
      "runs": {                            # one entry per measured variant
        "paper/reference": {
          "stages": {"blocking": 0.41, "scoring": 3.2, "total": 3.61},
          "meta":   {"records": 600, "pairs": 1234}
        },
        ...
      },
      "derived": {"speedup": 4.2, ...}     # harness-computed summaries
    }

Timings are wall-clock seconds from :func:`time.perf_counter`.  Repeated
entries to the same stage accumulate, so a stage may wrap a loop body.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Union

SCHEMA_VERSION = 1


class StageTimings:
    """Accumulates named wall-clock stage durations.

    >>> timings = StageTimings()
    >>> with timings.stage("blocking"):
    ...     pass
    >>> sorted(timings.as_dict()) == ["blocking"]
    True
    """

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under ``name`` (accumulating on re-entry)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to stage ``name``."""
        if seconds < 0:
            raise ValueError(f"negative duration for stage {name!r}: {seconds}")
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    def seconds(self, name: str) -> float:
        """Accumulated seconds of one stage (0.0 if never entered)."""
        return self._seconds.get(name, 0.0)

    @property
    def total(self) -> float:
        """Sum of all recorded stages (excluding an explicit 'total' stage)."""
        return sum(
            seconds for name, seconds in self._seconds.items() if name != "total"
        )

    def as_dict(self) -> Dict[str, float]:
        """Stage -> seconds mapping, insertion-ordered."""
        return dict(self._seconds)

    def with_total(self) -> Dict[str, float]:
        """Stage mapping plus a ``total`` key (explicit total wins if set)."""
        out = self.as_dict()
        out.setdefault("total", self.total)
        return out

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={seconds:.4f}s" for name, seconds in self._seconds.items()
        )
        return f"StageTimings({inner})"


def bench_payload(
    benchmark: str,
    config: Optional[Mapping[str, Any]] = None,
    runs: Optional[Mapping[str, Mapping[str, Any]]] = None,
    derived: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a BENCH document in the shared schema (see module docstring)."""
    return {
        "benchmark": benchmark,
        "schema_version": SCHEMA_VERSION,
        "created_unix": time.time(),
        "config": dict(config or {}),
        "runs": {name: dict(run) for name, run in (runs or {}).items()},
        "derived": dict(derived or {}),
    }


def run_entry(
    timings: StageTimings, **meta: Any
) -> Dict[str, Any]:
    """One ``runs`` entry: stage timings (with total) plus free-form meta."""
    return {"stages": timings.with_total(), "meta": dict(meta)}


def write_bench_json(path: Union[str, Path], payload: Mapping[str, Any]) -> Path:
    """Write a BENCH document; returns the resolved path."""
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return target


def read_bench_json(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a BENCH document back (inverse of :func:`write_bench_json`)."""
    return json.loads(Path(path).read_text())
