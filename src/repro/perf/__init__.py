"""Performance instrumentation: scoped stage timers and the machine-readable
``BENCH_*.json`` emitters the benchmark harness regresses against.
"""

from repro.perf.timing import (
    StageTimings,
    bench_payload,
    read_bench_json,
    run_entry,
    write_bench_json,
)

__all__ = [
    "StageTimings",
    "bench_payload",
    "read_bench_json",
    "run_entry",
    "write_bench_json",
]
