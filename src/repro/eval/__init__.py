"""Evaluation metrics: pairwise precision/recall/F1 (the paper's measure)
plus the cluster-level battery of the dedup-evaluation literature (B-cubed,
ARI, NMI, variation of information)."""

from repro.eval.crowd_analysis import (
    CalibrationBand,
    calibration_curve,
    confidence_histogram,
    disagreement_pairs,
    unanimity_rate,
)
from repro.eval.ascii import bar_chart, series_chart, sparkline
from repro.eval.cluster_metrics import (
    adjusted_rand_index,
    bcubed_scores,
    full_report,
    normalized_mutual_information,
    variation_of_information,
)
from repro.eval.metrics import (
    PairwiseScores,
    cluster_exact_match_rate,
    cluster_size_histogram,
    clustering_from_sets,
    f1_score,
    pairwise_scores,
)

__all__ = [
    "CalibrationBand",
    "PairwiseScores",
    "adjusted_rand_index",
    "bar_chart",
    "calibration_curve",
    "bcubed_scores",
    "cluster_exact_match_rate",
    "confidence_histogram",
    "cluster_size_histogram",
    "clustering_from_sets",
    "disagreement_pairs",
    "f1_score",
    "full_report",
    "normalized_mutual_information",
    "pairwise_scores",
    "series_chart",
    "sparkline",
    "unanimity_rate",
    "variation_of_information",
]
