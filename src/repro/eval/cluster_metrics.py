"""Cluster-level evaluation metrics from the dedup-clustering literature.

The paper evaluates with pairwise F1 only, but its reference [27]
(Hassanzadeh et al., "Framework for evaluating clustering algorithms in
duplicate detection") establishes a richer battery that downstream users
expect: B-cubed precision/recall/F1, the Adjusted Rand Index, Normalized
Mutual Information, and variation of information.  All operate on a
:class:`~repro.core.clustering.Clustering` against a
:class:`~repro.datasets.schema.GoldStandard`.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Tuple

from repro.core.clustering import Clustering
from repro.datasets.schema import GoldStandard


def _contingency(clustering: Clustering,
                 gold: GoldStandard) -> Tuple[Dict[Tuple[int, int], int],
                                              Dict[int, int], Dict[int, int]]:
    """Joint counts n_{ij} plus predicted and gold marginals."""
    joint: Counter = Counter()
    predicted: Counter = Counter()
    actual: Counter = Counter()
    for record_id in clustering.record_ids():
        cluster = clustering.cluster_of(record_id)
        entity = gold.entity(record_id)
        joint[(cluster, entity)] += 1
        predicted[cluster] += 1
        actual[entity] += 1
    return dict(joint), dict(predicted), dict(actual)


def bcubed_scores(clustering: Clustering,
                  gold: GoldStandard) -> Tuple[float, float, float]:
    """B-cubed precision, recall, and F1.

    Per record: precision is the fraction of its predicted cluster that
    shares its entity; recall is the fraction of its entity found in its
    cluster.  Scores are averaged over records.
    """
    joint, predicted, actual = _contingency(clustering, gold)
    total = clustering.num_records
    if total == 0:
        return 1.0, 1.0, 1.0
    precision = 0.0
    recall = 0.0
    for (cluster, entity), count in joint.items():
        precision += count * (count / predicted[cluster])
        recall += count * (count / actual[entity])
    precision /= total
    recall /= total
    if precision + recall == 0.0:
        return precision, recall, 0.0
    f1 = 2.0 * precision * recall / (precision + recall)
    return precision, recall, f1


def adjusted_rand_index(clustering: Clustering, gold: GoldStandard) -> float:
    """The Adjusted Rand Index: chance-corrected pair agreement in [-1, 1]."""
    joint, predicted, actual = _contingency(clustering, gold)
    total = clustering.num_records

    def choose2(value: int) -> float:
        return value * (value - 1) / 2.0

    sum_joint = sum(choose2(count) for count in joint.values())
    sum_predicted = sum(choose2(count) for count in predicted.values())
    sum_actual = sum(choose2(count) for count in actual.values())
    total_pairs = choose2(total)
    if total_pairs == 0:
        return 1.0
    expected = sum_predicted * sum_actual / total_pairs
    maximum = (sum_predicted + sum_actual) / 2.0
    if maximum == expected:
        return 1.0
    return (sum_joint - expected) / (maximum - expected)


def normalized_mutual_information(clustering: Clustering,
                                  gold: GoldStandard) -> float:
    """NMI with arithmetic-mean normalization, in [0, 1]."""
    joint, predicted, actual = _contingency(clustering, gold)
    total = clustering.num_records
    if total == 0:
        return 1.0

    def entropy(marginal: Dict[int, int]) -> float:
        value = 0.0
        for count in marginal.values():
            p = count / total
            value -= p * math.log(p)
        return value

    h_predicted = entropy(predicted)
    h_actual = entropy(actual)
    mutual = 0.0
    for (cluster, entity), count in joint.items():
        p_joint = count / total
        p_pred = predicted[cluster] / total
        p_act = actual[entity] / total
        mutual += p_joint * math.log(p_joint / (p_pred * p_act))
    if h_predicted == 0.0 and h_actual == 0.0:
        return 1.0
    denominator = (h_predicted + h_actual) / 2.0
    if denominator == 0.0:
        return 1.0
    return max(0.0, min(1.0, mutual / denominator))


def variation_of_information(clustering: Clustering,
                             gold: GoldStandard) -> float:
    """Meila's variation of information (lower is better; 0 = identical)."""
    joint, predicted, actual = _contingency(clustering, gold)
    total = clustering.num_records
    if total == 0:
        return 0.0
    value = 0.0
    for (cluster, entity), count in joint.items():
        p_joint = count / total
        p_pred = predicted[cluster] / total
        p_act = actual[entity] / total
        value -= p_joint * (
            math.log(p_joint / p_pred) + math.log(p_joint / p_act)
        )
    return max(0.0, value)


def full_report(clustering: Clustering, gold: GoldStandard) -> Dict[str, float]:
    """All cluster metrics plus pairwise F1 in one dictionary."""
    from repro.eval.metrics import pairwise_scores

    pairwise = pairwise_scores(clustering, gold)
    b3_precision, b3_recall, b3_f1 = bcubed_scores(clustering, gold)
    return {
        "pairwise_precision": pairwise.precision,
        "pairwise_recall": pairwise.recall,
        "pairwise_f1": pairwise.f1,
        "bcubed_precision": b3_precision,
        "bcubed_recall": b3_recall,
        "bcubed_f1": b3_f1,
        "adjusted_rand_index": adjusted_rand_index(clustering, gold),
        "nmi": normalized_mutual_information(clustering, gold),
        "variation_of_information": variation_of_information(clustering, gold),
        "num_clusters": float(len(clustering)),
    }
