"""Tiny ASCII charts for terminal-friendly experiment output.

The CLI and examples use these to sketch the paper's figures without any
plotting dependency: horizontal bar charts for method comparisons and
sparkline-style series for parameter sweeps.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def bar_chart(values: Mapping[str, float], width: int = 40,
              value_format: str = "{:.3f}") -> str:
    """Horizontal bar chart, one labelled row per entry.

    >>> print(bar_chart({"a": 1.0, "b": 0.5}, width=4))
    a  ████  1.000
    b  ██    0.500
    """
    if not values:
        return ""
    label_width = max(len(label) for label in values)
    maximum = max(values.values())
    scale = (width / maximum) if maximum > 0 else 0.0
    rows: List[str] = []
    for label, value in values.items():
        filled = int(round(value * scale))
        bar = "█" * filled
        rows.append(
            f"{label.ljust(label_width)}  {bar.ljust(width)}  "
            + value_format.format(value)
        )
    return "\n".join(rows)


def sparkline(series: Sequence[float]) -> str:
    """A one-line sparkline of a numeric series.

    >>> sparkline([1, 2, 3])
    '▁▄█'
    """
    if not series:
        return ""
    lo = min(series)
    hi = max(series)
    if hi == lo:
        return _SPARK_LEVELS[0] * len(series)
    span = hi - lo
    out = []
    for value in series:
        index = int((value - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[index])
    return "".join(out)


def series_chart(points: Sequence[Tuple[str, float]], width: int = 40) -> str:
    """Labelled series as bars — for sweeps where x is categorical
    (ε values, T divisors)."""
    return bar_chart({label: value for label, value in points}, width=width)
