"""Analysis tooling for crowd answer sets.

Given an answered candidate set, these utilities characterize the crowd:
the distribution of confidences (how often did workers disagree?), the
error rate broken down by machine-score band (the empirical ``f -> f_c``
calibration curve — exactly what the refinement phase's histogram
estimates), and vote-agreement statistics.  Used by examples and by anyone
calibrating a :class:`~repro.crowd.worker.DifficultyModel` against a real
crowd.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.datasets.schema import GoldStandard, canonical_pair

Pair = Tuple[int, int]


@dataclass(frozen=True)
class CalibrationBand:
    """One machine-score band of the calibration curve.

    Attributes:
        lower: Inclusive machine-score lower bound.
        upper: Exclusive upper bound (inclusive for the last band).
        count: Pairs falling in the band.
        mean_confidence: Mean crowd confidence within the band.
        error_rate: Majority-vote error rate within the band (``None`` when
            no gold standard was supplied).
    """

    lower: float
    upper: float
    count: int
    mean_confidence: float
    error_rate: Optional[float]


def confidence_histogram(confidences: Iterable[float],
                         num_workers: int = 3) -> Dict[float, int]:
    """Counts per distinct confidence level.

    With ``w`` workers the possible values are ``k / w``; returned keys are
    rounded to those levels so replays bucket cleanly.
    """
    histogram: Dict[float, int] = {}
    for confidence in confidences:
        level = round(confidence * num_workers) / num_workers
        histogram[level] = histogram.get(level, 0) + 1
    return dict(sorted(histogram.items()))


def unanimity_rate(confidences: Iterable[float]) -> float:
    """Fraction of pairs with a unanimous vote (confidence 0.0 or 1.0)."""
    total = 0
    unanimous = 0
    for confidence in confidences:
        total += 1
        if confidence in (0.0, 1.0):
            unanimous += 1
    return unanimous / total if total else 1.0


def calibration_curve(
    answered: Mapping[Pair, float],
    machine_scores: Mapping[Pair, float],
    gold: Optional[GoldStandard] = None,
    num_bands: int = 10,
) -> List[CalibrationBand]:
    """The empirical machine-score -> crowd-confidence curve.

    Args:
        answered: Pair -> crowd confidence (e.g. ``oracle.known_pairs()``).
        machine_scores: Pair -> machine score ``f``.
        gold: Optional ground truth; adds per-band error rates.
        num_bands: Equal-width machine-score bands over [0, 1].

    Returns:
        Non-empty bands in ascending score order.
    """
    if num_bands < 1:
        raise ValueError(f"num_bands must be >= 1, got {num_bands}")
    sums = [0.0] * num_bands
    counts = [0] * num_bands
    errors = [0] * num_bands
    for raw_pair, confidence in answered.items():
        pair = canonical_pair(*raw_pair)
        if pair not in machine_scores:
            continue
        score = machine_scores[pair]
        band = min(num_bands - 1, int(score * num_bands))
        sums[band] += confidence
        counts[band] += 1
        if gold is not None:
            verdict = confidence > 0.5
            if verdict != gold.is_duplicate(*pair):
                errors[band] += 1
    bands: List[CalibrationBand] = []
    for index in range(num_bands):
        if counts[index] == 0:
            continue
        bands.append(CalibrationBand(
            lower=index / num_bands,
            upper=(index + 1) / num_bands,
            count=counts[index],
            mean_confidence=sums[index] / counts[index],
            error_rate=(errors[index] / counts[index]) if gold is not None
            else None,
        ))
    return bands


def disagreement_pairs(answered: Mapping[Pair, float],
                       low: float = 0.3, high: float = 0.7) -> List[Pair]:
    """Pairs whose confidence sits in the contested middle band — the
    'difficult pairs' the paper's future work wants to spend more workers
    on, sorted by distance from 0.5 then canonically."""
    contested = [
        (abs(confidence - 0.5), canonical_pair(*pair))
        for pair, confidence in answered.items()
        if low <= confidence <= high
    ]
    contested.sort()
    return [pair for _, pair in contested]
