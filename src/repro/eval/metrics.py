"""Deduplication accuracy metrics.

The paper evaluates with the pairwise F1-measure (Section 6.1, following
TransM): precision and recall over the set of record pairs predicted to be
duplicates versus the gold duplicate pairs.  Cluster-level diagnostics are
provided as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Set, Tuple

from repro.core.clustering import Clustering
from repro.datasets.schema import GoldStandard


@dataclass(frozen=True)
class PairwiseScores:
    """Pairwise precision / recall / F1 with the underlying counts."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        predicted = self.true_positives + self.false_positives
        if predicted == 0:
            return 1.0 if self.false_negatives == 0 else 0.0
        return self.true_positives / predicted

    @property
    def recall(self) -> float:
        actual = self.true_positives + self.false_negatives
        if actual == 0:
            return 1.0
        return self.true_positives / actual

    @property
    def f1(self) -> float:
        precision, recall = self.precision, self.recall
        if precision + recall == 0.0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)


def pairwise_scores(clustering: Clustering, gold: GoldStandard) -> PairwiseScores:
    """Pairwise counts of a clustering against the gold standard.

    True positives are same-cluster pairs that are genuine duplicates;
    false positives are same-cluster non-duplicates; false negatives are
    duplicate pairs that the clustering separated.
    """
    true_positives = 0
    false_positives = 0
    predicted_duplicates: Set[Tuple[int, int]] = set()
    for a, b in clustering.intra_cluster_pairs():
        pair = (a, b) if a < b else (b, a)
        predicted_duplicates.add(pair)
        if gold.is_duplicate(a, b):
            true_positives += 1
        else:
            false_positives += 1
    false_negatives = sum(
        1 for pair in gold.duplicate_pairs() if pair not in predicted_duplicates
    )
    return PairwiseScores(
        true_positives=true_positives,
        false_positives=false_positives,
        false_negatives=false_negatives,
    )


def f1_score(clustering: Clustering, gold: GoldStandard) -> float:
    """The paper's headline metric."""
    return pairwise_scores(clustering, gold).f1


def cluster_exact_match_rate(clustering: Clustering, gold: GoldStandard) -> float:
    """Fraction of gold entities recovered *exactly* as one cluster."""
    predicted: Set[FrozenSet[int]] = set(clustering.as_sets())
    gold_clusters = gold.clusters()
    if not gold_clusters:
        return 1.0
    matched = sum(1 for members in gold_clusters if frozenset(members) in predicted)
    return matched / len(gold_clusters)


def cluster_size_histogram(clustering: Clustering) -> Dict[int, int]:
    """Number of clusters per size — a quick structural diagnostic."""
    histogram: Dict[int, int] = {}
    for cluster_id in clustering.cluster_ids:
        size = clustering.size(cluster_id)
        histogram[size] = histogram.get(size, 0) + 1
    return histogram


def clustering_from_sets(clusters: Iterable[Iterable[int]]) -> Clustering:
    """Build a :class:`Clustering` from raw sets (baseline adapters use it)."""
    return Clustering(clusters)
