"""repro — a full reproduction of "Crowd-Based Deduplication: An Adaptive
Approach" (Wang, Xiao, Lee; SIGMOD 2015).

The package implements the ACD algorithm (pruning, PC-Pivot cluster
generation, PC-Refine cluster refinement), the simulated crowdsourcing
substrate it runs on, the baselines it is compared against (TransM,
TransNode, CrowdER+, GCER), synthetic versions of the paper's three
datasets, and the complete evaluation harness for every table and figure.

Quickstart::

    from repro import prepare_instance, run_method

    instance = prepare_instance("restaurant", "3w", scale=0.2)
    result = run_method("ACD", instance, seed=7)
    print(result.f1, result.pairs_issued, result.iterations)
"""

from repro.core import (
    ACDResult,
    Clustering,
    HistogramEstimator,
    Permutation,
    crowd_pivot,
    crowd_refine,
    lambda_objective,
    pc_pivot,
    pc_refine,
    run_acd,
)
from repro.crowd import (
    AnswerFile,
    CrowdOracle,
    CrowdStats,
    DifficultyModel,
    WorkerPool,
)
from repro.datasets import Dataset, GoldStandard, Record, generate
from repro.eval import f1_score, pairwise_scores
from repro.experiments import (
    Instance,
    MethodResult,
    epsilon_sweep,
    prepare_instance,
    run_comparison,
    run_method,
    table3_row,
    threshold_sweep,
)
from repro.pruning import CandidateSet, build_candidate_set
from repro.similarity import SimilarityFunction, jaccard_similarity_function

__version__ = "1.0.0"

__all__ = [
    "ACDResult",
    "AnswerFile",
    "CandidateSet",
    "Clustering",
    "CrowdOracle",
    "CrowdStats",
    "Dataset",
    "DifficultyModel",
    "GoldStandard",
    "HistogramEstimator",
    "Instance",
    "MethodResult",
    "Permutation",
    "Record",
    "SimilarityFunction",
    "WorkerPool",
    "__version__",
    "build_candidate_set",
    "crowd_pivot",
    "crowd_refine",
    "epsilon_sweep",
    "f1_score",
    "generate",
    "jaccard_similarity_function",
    "lambda_objective",
    "pairwise_scores",
    "pc_pivot",
    "pc_refine",
    "prepare_instance",
    "run_acd",
    "run_comparison",
    "run_method",
    "table3_row",
    "threshold_sweep",
]
