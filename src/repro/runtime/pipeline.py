"""Component-streaming pipelined executor: overlap the phase barriers.

The barrier engines run ACD as three strict phases — every pruning shard
finishes before the first pivot component starts, and every pivot
component finishes before refinement begins.  At scale that serializes
crowd latency behind machine compute: the fast components sit idle while
the deepest pruning shard or component finishes.  This module runs
pruning, PC-Pivot, and PC-Refine as a DAG of ``(phase, component)``
tasks over **one shared worker pool**, streaming work downstream as its
inputs seal:

- **Streamed pruning → pivot.**  Pruning shards are submitted first;
  each finished shard's surviving edges feed an incremental union-find
  (:class:`~repro.pruning.components.IncrementalComponents`).  A pair is
  generated only from a prefix token present in *both* records'
  prefixes, so the shards that can still touch a record are exactly the
  shards of its prefix tokens
  (:func:`~repro.pruning.shard.record_shard_touch_masks`); once every
  shard in a component's combined mask is done, the component is
  *sealed* — no future edge can reach it or merge it — and its
  per-component fast PC-Pivot task (reusing
  :func:`repro.core.pivot_shard._run_component`) dispatches immediately
  while the remaining pruning shards still run.
- **Pivot → refine is a true barrier — by data dependency, not by
  implementation.**  Refine workers need the *global* frozen histogram
  (built from all candidate pairs plus the complete phase-2 answer
  set), the single budget ``T`` (global cluster and unknown-pair
  counts), and the merged clustering's cluster ids (packing tie-breaks
  depend on them) — all functions of every pivot component.  Starting
  any refine component earlier would change its packing inputs and
  break byte-identity with the barrier engines.  What the pipeline
  *does* overlap is inside the phase: all refine components run
  concurrently on the already-forked pool (no re-fork, no re-publish),
  with the late coordination state shipped to live workers via
  ``state`` messages.
- **One oracle multiplexer.**  Workers resolve pairs against forked
  copies of the caller's pair-deterministic answer source and return
  plain round logs; the parent replays *merged rounds* through the
  caller's oracle with the exact engines of the barrier path
  (:func:`repro.core.pivot_shard._merge_component_runs`,
  :func:`repro.core.refine_shard._replay_component_runs`).  The replay
  is the authoritative accounting — journal-compatible, stats-exact,
  event-exact — so every crowd batch, checkpoint payload, and
  diagnostics entry is byte-identical to barrier execution.

Determinism contract: the final clustering (cluster ids included),
stats, diagnostics, and non-runtime event stream are byte-identical to
the barrier sharded engines for every ``{shards, workers, fault plan,
pipeline on/off}`` configuration.  Per-component round logs are pure
functions of ``(component, permutation, epsilon | frozen budget +
estimator, answer source)`` — scheduling, sealing order, and faults
cannot perturb them — and both merges consume the logs in canonical
component order.

The pool is a sibling of :func:`repro.runtime.supervisor.supervised_map`
with the same crash/retry/degrade ladder and ``runtime.*`` telemetry,
plus a third ``("state", key, value)`` worker message for late-bound
coordination state.  Straggler re-dispatch is deliberately absent: pivot
and refine tasks sleep on simulated crowd latency by design, so a
deadline would duplicate honest work (``task_deadline_s`` is ignored).
The three phase checkpoints of :mod:`repro.runtime.checkpoint` are
written at the same boundaries with the same payloads as barrier runs.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import pickle
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core import pivot_shard, refine_shard
from repro.core.acd import (
    ACDResult,
    _finalize_obs,
    _generation_state,
    _refinement_state,
    _restore_generation,
    _restore_refinement,
)
from repro.core.clustering import Clustering
from repro.core.estimator import DEFAULT_NUM_BUCKETS
from repro.core.pc_pivot import DEFAULT_EPSILON, PCPivotDiagnostics
from repro.core.pc_refine import DEFAULT_THRESHOLD_DIVISOR, PCRefineDiagnostics
from repro.core.permutation import Permutation
from repro.crowd.oracle import CrowdOracle
from repro.crowd.stats import CrowdStats
from repro.obs import ObsContext, maybe_span
from repro.perf.timing import StageTimings
from repro.pruning.candidate import (
    DEFAULT_THRESHOLD,
    CandidateSet,
    _prefix_join_eligible,
    build_candidate_set,
)
from repro.pruning.components import IncrementalComponents, connected_components
from repro.pruning.parallel import fork_available, notify_parallel_fallback
from repro.pruning.shard import (
    DEFAULT_PAIR_BLOCK_SIZE,
    _build_plan,
    _join_shard,
    record_shard_touch_masks,
)
from repro.runtime.autoshard import resolve_auto_shards
from repro.runtime.checkpoint import (
    CheckpointStore,
    candidate_state,
    restore_candidates,
)
from repro.runtime.faults import ProcessFaultPlan
from repro.runtime.supervisor import (
    CHAOS_KILL_EXIT,
    RuntimeReport,
    SupervisorPolicy,
    _Observer,
    _shutdown,
    _Worker,
)
from repro.similarity.composite import SET_METRIC_FUNCTIONS
from repro.similarity.kernels import numpy_available, resolve_kernel_backend

Pair = Tuple[int, int]

#: Worker state captured at fork time, extended at runtime by ``state``
#: messages — the pipelined superset of ``_SHARD_STATE`` / ``_PIVOT_STATE``
#: / ``_REFINE_STATE``.  Shared structures (join plan, permutation, forked
#: answer source, frozen estimator) ship once; per-task payloads carry only
#: the component-local slice.
_PIPELINE_STATE: Dict[str, object] = {}


@dataclass
class PipelineResult:
    """Everything a pipelined run produces.

    Attributes:
        candidates: The pruning phase's candidate set (computed by the
            streamed join, restored from a checkpoint, or passed in).
        result: The :class:`~repro.core.acd.ACDResult`, byte-identical
            to barrier execution.
        report: Aggregated fault-handling telemetry of the shared pool.
    """

    candidates: CandidateSet
    result: ACDResult
    report: RuntimeReport


def _execute_task(payload: Tuple) -> Any:
    """Dispatch one ``(phase, ...)`` task against the published state.

    Pure: reads :data:`_PIPELINE_STATE` (fork snapshot plus any
    broadcasts) and the payload only, so the parent's inline/degraded
    paths compute byte-identical results.
    """
    state = _PIPELINE_STATE
    kind = payload[0]
    if kind == "prune":
        return _join_shard(
            state["plan"], payload[1], state["num_shards"],
            state["metric"], state["threshold"], state["kernel"],
            state["set_function"], state["pair_block_size"],
        )
    if kind == "pivot":
        # One task = one *group* of sealed components, run back-to-back
        # to amortize dispatch (a lone small component costs more in
        # pickling and pipe traffic than in pivot rounds).
        return [
            pivot_shard._run_component(
                members, edges, state["permutation"],
                state["epsilon"], state["answers"],
            )
            for members, edges in payload[1]
        ]
    if kind == "refine":
        return [
            refine_shard._run_component(
                entries, pairs, scores, known,
                state["refine_next_id"], state["threshold"],
                state["refine_budget"], state["ranking"],
                state["refine_estimator"], state["answers"],
            )
            for entries, pairs, scores, known in payload[1]
        ]
    raise ValueError(f"unknown pipeline task kind {kind!r}")


def _pipeline_worker_main(conn, fault_plan: Optional[ProcessFaultPlan]) -> None:
    """Worker process body: tasks, state broadcasts, chaos directives.

    The ``("state", key, value)`` message extends the fork-time
    :data:`_PIPELINE_STATE` snapshot with coordination values that only
    exist after the worker forked (the refine phase's merged-clustering
    id counter, frozen budget, and histogram).  Pipe FIFO ordering
    guarantees a broadcast lands before any task submitted after it.
    Chaos faults are applied here, per ``(task, attempt)``, exactly as
    in :func:`repro.runtime.supervisor._worker_main` — the parent's
    degraded path never enters this function and always runs clean.
    """
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            if message[0] == "stop":
                return
            if message[0] == "state":
                _PIPELINE_STATE[message[1]] = message[2]
                continue
            _, index, attempt, payload = message
            payload = pickle.loads(payload)
            directive = (fault_plan.directive(index, attempt)
                         if fault_plan is not None else None)
            if directive is not None:
                if directive.kind == "kill":
                    os._exit(CHAOS_KILL_EXIT)
                elif directive.kind == "delay":
                    time.sleep(directive.delay_seconds)
                elif directive.kind == "poison":
                    conn.send((index, attempt, "error",
                               f"chaos poison (task {index}, "
                               f"attempt {attempt})"))
                    continue
            try:
                result = _execute_task(payload)
            except BaseException as error:  # noqa: BLE001 - forwarded
                outcome: Tuple = (index, attempt, "error", repr(error))
            else:
                outcome = (index, attempt, "ok", result)
            try:
                conn.send(outcome)
            except (BrokenPipeError, OSError):
                return
    finally:
        try:
            conn.close()
        except OSError:
            pass


class _PipelinePool:
    """A persistent supervised pool serving tasks from all three phases.

    Unlike :func:`~repro.runtime.supervisor.supervised_map` (one map,
    one barrier) the pipeline pool stays up across phases: tasks are
    submitted as their inputs seal and collected in completion order via
    :meth:`next_result`.  The fault ladder is the supervisor's — crash
    detection via process sentinels, bounded retries with backoff,
    capped respawns, in-parent degradation — reported through the same
    ``runtime_*_total`` counters and ``runtime.*`` events (pool label
    ``"pipeline"``).  With ``processes <= 1`` or no ``fork`` support the
    pool runs *inline*: tasks execute synchronously in submission order
    in the parent (fault plans do not apply, matching the barrier
    engines' serial paths).
    """

    def __init__(self, processes: int,
                 policy: Optional[SupervisorPolicy] = None,
                 obs: Optional[ObsContext] = None,
                 fault_plan: Optional[ProcessFaultPlan] = None,
                 timings: Optional[StageTimings] = None):
        if processes < 0:
            raise ValueError(f"processes must be >= 0, got {processes}")
        self._policy = policy if policy is not None else SupervisorPolicy()
        self._observer = _Observer(obs, "pipeline")
        self._fault_plan = fault_plan
        self._timings = timings
        self.report = RuntimeReport()
        self.bytes_shipped = 0
        self._processes = processes
        self._payloads: Dict[int, Tuple] = {}
        self._next_index = 0
        #: Min-heap of (ready_at_monotonic, sequence, task_index).
        self._pending: List[Tuple[float, int, int]] = []
        self._sequence = 0
        self._dispatches: Dict[int, int] = {}
        self._failures: Dict[int, int] = {}
        self._inflight: Dict[int, int] = {}
        #: Tasks whose result is decided (queued in _ready or delivered).
        self._resolved: Set[int] = set()
        self._ready: List[Tuple[int, Any]] = []
        self._outstanding = 0
        self._workers: List[_Worker] = []
        self._inline = (processes <= 1
                        or "fork" not in
                        multiprocessing.get_all_start_methods())
        if not self._inline:
            self._context = multiprocessing.get_context("fork")
            self._workers = [self._spawn() for _ in range(processes)]

    @property
    def inline(self) -> bool:
        return self._inline

    @property
    def outstanding(self) -> int:
        """Submitted tasks whose results have not been delivered yet."""
        return self._outstanding

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_pipeline_worker_main,
            args=(child_conn, self._fault_plan), daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(process=process, conn=parent_conn)

    def broadcast(self, key: str, value: Any) -> None:
        """Publish late-bound state to the parent and every live worker.

        The parent global is set *first*: respawned workers fork from
        parent memory after this point and inherit the value, and the
        degraded/inline paths read it directly.  Live workers receive a
        ``state`` message, which pipe FIFO ordering delivers before any
        task submitted afterwards.
        """
        _PIPELINE_STATE[key] = value
        for worker in self._workers:
            try:
                worker.conn.send(("state", key, value))
            except (BrokenPipeError, OSError):
                pass  # the crash handler reaps it on the next step

    def submit(self, payload: Tuple) -> int:
        """Queue a task; returns its index (also the fault-plan key)."""
        index = self._next_index
        self._next_index += 1
        if self._inline:
            self._payloads[index] = payload
        else:
            # Pickle once at submission: the blob is what every dispatch
            # (including retries) ships, so the meter is exact and the
            # parent never re-serializes a payload.
            blob = pickle.dumps(payload)
            self._payloads[index] = blob
            self.bytes_shipped += len(blob)
        self._dispatches[index] = 0
        self._failures[index] = 0
        self._inflight[index] = 0
        self._outstanding += 1
        self.report.tasks += 1
        heapq.heappush(self._pending, (0.0, self._sequence, index))
        self._sequence += 1
        return index

    def next_result(self) -> Tuple[int, Any]:
        """Block until some submitted task completes; return (index, value)."""
        if self._outstanding == 0:
            raise RuntimeError("no outstanding pipeline tasks")
        while True:
            if self._ready:
                index, value = self._ready.pop(0)
                self._outstanding -= 1
                return index, value
            if self._inline:
                _, _, index = heapq.heappop(self._pending)
                self._resolved.add(index)
                value = _execute_task(self._payloads[index])
                self._outstanding -= 1
                return index, value
            self._step()

    def _degrade(self, index: int) -> None:
        """Bottom rung: run a task in-parent, fault-free, byte-identical."""
        self._resolved.add(index)
        self.report.degraded_serial += 1
        self._observer.record(
            "runtime_degraded_serial_total", "runtime.degraded_serial",
            task=index, failures=self._failures[index],
        )
        payload = self._payloads[index]
        if not self._inline:
            payload = pickle.loads(payload)
        self._ready.append((index, _execute_task(payload)))

    def _handle_failure(self, worker: Optional[_Worker], index: int,
                        attempt: int, reason: str) -> None:
        if worker is not None:
            worker.task = None
        if index in self._resolved:
            return
        self._failures[index] += 1
        if self._dispatches[index] < 1 + self._policy.max_task_retries:
            delay = self._policy.backoff(self._failures[index])
            self.report.task_retries += 1
            self._observer.record(
                "runtime_task_retries_total", "runtime.task_retry",
                task=index, attempt=attempt, reason=reason,
                backoff_s=round(delay, 4),
            )
            heapq.heappush(self._pending,
                           (time.monotonic() + delay, self._sequence, index))
            self._sequence += 1
        elif self._inflight[index] == 0:
            self._degrade(index)

    def _respawn_if_short(self) -> None:
        if len(self._workers) >= self._processes:
            return
        if self.report.worker_respawns >= self._policy.max_worker_respawns:
            return
        self.report.worker_respawns += 1
        replacement = self._spawn()
        self._workers.append(replacement)
        self._observer.record(
            "runtime_worker_respawns_total", "runtime.worker_respawn",
            pid=replacement.process.pid,
        )

    def _step(self) -> None:
        """One event-loop iteration: dispatch, wait, reap, recover."""
        now = time.monotonic()
        if not self._workers:
            # The whole pool is gone and cannot be rebuilt: degrade every
            # unresolved queued task (later submissions land here too).
            while self._pending:
                _, _, index = heapq.heappop(self._pending)
                if index not in self._resolved:
                    self._degrade(index)
            return

        idle = [worker for worker in self._workers if worker.task is None]
        while idle and self._pending and self._pending[0][0] <= now:
            _, _, index = heapq.heappop(self._pending)
            if index in self._resolved:
                continue
            worker = idle.pop()
            attempt = self._dispatches[index]
            self._dispatches[index] += 1
            self._inflight[index] += 1
            worker.task = (index, attempt, None)
            try:
                worker.conn.send(("task", index, attempt,
                                  self._payloads[index]))
            except (BrokenPipeError, OSError):
                # Died between dispatches; the sentinel handler below
                # reaps the worker and recovers the task as a failure.
                pass

        busy = [worker for worker in self._workers
                if worker.task is not None]
        # Block until a result or crash wakes us.  A deadline applies
        # only when an idle worker is waiting out a retry backoff: the
        # dispatch loop above has already drained every ready task, so
        # a non-empty queue with all workers busy must NOT set a zero
        # timeout — that degenerates into a busy-spin that steals the
        # CPU from the workers it is waiting on.
        timeout = None
        if self._pending and len(busy) < len(self._workers):
            timeout = max(0.0, self._pending[0][0] - time.monotonic())
        waitable = ([worker.conn for worker in busy]
                    + [worker.process.sentinel for worker in self._workers])
        ready = connection.wait(waitable, timeout)

        conn_of = {worker.conn: worker for worker in busy}
        sentinel_of = {worker.process.sentinel: worker
                       for worker in self._workers}
        crashed: List[_Worker] = []
        for item in ready:
            if item in conn_of:
                worker = conn_of[item]
                try:
                    index, attempt, status, value = worker.conn.recv()
                except (EOFError, OSError):
                    crashed.append(worker)  # died mid-send
                    continue
                self._inflight[index] -= 1
                if status == "ok":
                    worker.task = None
                    if index not in self._resolved:
                        self._resolved.add(index)
                        self._ready.append((index, value))
                else:
                    self._handle_failure(worker, index, attempt, value)
            elif item in sentinel_of:
                crashed.append(sentinel_of[item])

        for worker in crashed:
            if worker not in self._workers:
                continue
            self._workers.remove(worker)
            self.report.worker_crashes += 1
            self._observer.record(
                "runtime_worker_crashes_total", "runtime.worker_crash",
                exitcode=worker.process.exitcode, pid=worker.process.pid,
            )
            task = worker.task
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.process.join()
            if task is not None:
                index, attempt, _ = task
                self._inflight[index] -= 1
                self._handle_failure(None, index, attempt, "worker-crash")
            self._respawn_if_short()

    def close(self) -> None:
        """Stop, terminate, and reap every worker (idempotent)."""
        _shutdown(self._workers)
        self._workers = []


def run_pipeline(
    answers,
    *,
    records: Optional[Sequence] = None,
    similarity=None,
    record_ids: Optional[Sequence[int]] = None,
    candidates: Optional[CandidateSet] = None,
    threshold: float = DEFAULT_THRESHOLD,
    pruning_shards: Union[int, str] = "auto",
    kernel_backend: str = "auto",
    workers: int = 0,
    epsilon: float = DEFAULT_EPSILON,
    threshold_divisor: float = DEFAULT_THRESHOLD_DIVISOR,
    num_buckets: int = DEFAULT_NUM_BUCKETS,
    seed: Optional[int] = None,
    permutation: Optional[Permutation] = None,
    refine: bool = True,
    pairs_per_hit: int = 20,
    ranking: str = "ratio",
    journal_path: Optional[Union[str, Path]] = None,
    obs: Optional[ObsContext] = None,
    checkpoints: Optional[CheckpointStore] = None,
    resume: bool = False,
    supervisor_policy: Optional[SupervisorPolicy] = None,
    fault_plan: Optional[ProcessFaultPlan] = None,
    timings: Optional[StageTimings] = None,
) -> PipelineResult:
    """Run ACD as a component-streaming pipeline over one worker pool.

    Two entry shapes:

    - ``records`` + ``similarity`` — the full pipeline: pruning shards
      stream candidate edges into the sealing accumulator and sealed
      components dispatch to pivot workers while pruning still runs.
      Requires a prefix-join-eligible similarity and numpy; otherwise
      pruning degrades to the (byte-identical) barrier
      :func:`~repro.pruning.candidate.build_candidate_set` and only the
      crowd phases pipeline.
    - ``record_ids`` + ``candidates`` — pruning already done (the
      :func:`~repro.core.acd.run_acd` ``pipeline=True`` path): every
      component dispatches immediately.

    Args largely mirror :func:`~repro.core.acd.run_acd`; the pipelined
    extras are ``pruning_shards`` (streamed join shard count, or
    ``"auto"`` for the heuristic of
    :mod:`repro.runtime.autoshard`), ``workers`` (shared pool processes;
    ``<= 1`` runs inline), and ``timings`` (records the
    ``pipeline_bytes_shipped_total`` / ``pipeline_bytes_per_task``
    dispatch-overhead meters).  ``journal_path``, ``checkpoints`` /
    ``resume`` (all three phases), ``obs``, and chaos ``fault_plan``
    compose exactly as in barrier mode.

    Returns:
        A :class:`PipelineResult`; its ``result`` is byte-identical to
        barrier sharded execution of the same configuration.
    """
    if journal_path is not None:
        from repro.crowd.persistence import JournalingAnswerFile

        journaled = JournalingAnswerFile(answers, journal_path)
        try:
            return run_pipeline(
                journaled, records=records, similarity=similarity,
                record_ids=record_ids, candidates=candidates,
                threshold=threshold, pruning_shards=pruning_shards,
                kernel_backend=kernel_backend, workers=workers,
                epsilon=epsilon, threshold_divisor=threshold_divisor,
                num_buckets=num_buckets, seed=seed, permutation=permutation,
                refine=refine, pairs_per_hit=pairs_per_hit, ranking=ranking,
                obs=obs, checkpoints=checkpoints, resume=resume,
                supervisor_policy=supervisor_policy, fault_plan=fault_plan,
                timings=timings,
            )
        finally:
            journaled.close()

    if (records is None) == (record_ids is None and candidates is None):
        raise ValueError(
            "pass either records+similarity (full pipeline) or "
            "record_ids+candidates (pre-pruned pipeline)"
        )
    if records is not None and similarity is None:
        raise ValueError("records requires a similarity function")
    if records is None and (record_ids is None or candidates is None):
        raise ValueError("pre-pruned mode needs both record_ids and candidates")
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    pivot_shard.require_pair_deterministic(answers)

    ids = ([record.record_id for record in records]
           if records is not None else list(record_ids))
    # Pre-pruned entry has no pruning phase to shard.
    num_shards = (resolve_auto_shards("pruning", records=len(ids),
                                      requested=pruning_shards, obs=obs)
                  if records is not None else 0)
    if permutation is None:
        permutation = Permutation.random(ids, seed=seed)

    restored_refinement = (checkpoints.load("refinement")
                           if checkpoints is not None and resume and refine
                           else None)
    restored = (checkpoints.load("generation")
                if (checkpoints is not None and resume
                    and restored_refinement is None) else None)
    restored_pruning = (checkpoints.load("pruning")
                        if checkpoints is not None and resume else None)
    if candidates is None and restored_pruning is not None:
        candidates = restore_candidates(restored_pruning)

    if restored_refinement is not None or restored is not None:
        # The crowd phases (or everything) restore from checkpoints:
        # there is nothing to overlap.  Compute candidates the barrier
        # way if the pruning phase was not checkpointed.
        if candidates is None:
            candidates = build_candidate_set(
                records, similarity, threshold=threshold,
                shards=num_shards, kernel_backend=kernel_backend,
                parallel=workers, timings=timings, obs=obs,
                supervisor_policy=supervisor_policy, fault_plan=fault_plan,
            )
            if checkpoints is not None:
                checkpoints.save("pruning", candidate_state(candidates))

    stream_pruning = (
        candidates is None
        and restored_refinement is None and restored is None
        and numpy_available()
        and _prefix_join_eligible(similarity, None, True)
    )
    if (candidates is None and not stream_pruning
            and restored_refinement is None and restored is None):
        # Streaming needs the vectorized token-blocked prefix join; for
        # other similarity/platform configurations only the crowd phases
        # pipeline (pruning runs the byte-identical barrier engine).
        if obs is not None:
            obs.event("pipeline.serial_pruning",
                      reason=("no-numpy" if not numpy_available()
                              else "not-prefix-eligible"))
        candidates = build_candidate_set(
            records, similarity, threshold=threshold,
            shards=num_shards if numpy_available() else 0,
            kernel_backend=kernel_backend, parallel=workers,
            timings=timings, obs=obs,
            supervisor_policy=supervisor_policy, fault_plan=fault_plan,
        )
        if checkpoints is not None:
            checkpoints.save("pruning", candidate_state(candidates))

    if workers > 1 and not fork_available():
        notify_parallel_fallback(obs, requested=workers,
                                 context="run_pipeline")

    if restored_refinement is not None:
        stats = CrowdStats.from_state(restored_refinement["stats"])
    elif restored is not None:
        stats = CrowdStats.from_state(restored["stats"])
    else:
        stats = CrowdStats(pairs_per_hit=pairs_per_hit,
                           num_workers=answers.num_workers)
    oracle = CrowdOracle(answers, stats=stats, obs=obs)
    source = oracle.source
    fork_source = getattr(source, "fork_source", source)

    pivot_diagnostics: Optional[PCPivotDiagnostics] = None
    refine_diagnostics: Optional[PCRefineDiagnostics] = None
    need_tasks = restored_refinement is None and (
        restored is None or refine)
    pool: Optional[_PipelinePool] = None
    component_logs: Dict[int, list] = {}

    with maybe_span(obs, "pipeline", workers=workers,
                    pruning_shards=num_shards, records=len(ids)):
        try:
            if need_tasks:
                # Publish the fork-time state *before* spawning workers:
                # everything here (and, in the streamed path, the join
                # plan published inside _streamed_pruning_phase before
                # the factory runs) is inherited by fork, never pickled.
                _PIPELINE_STATE.update(
                    permutation=permutation, epsilon=epsilon,
                    ranking=ranking, answers=fork_source,
                    threshold=(candidates.threshold
                               if candidates is not None else threshold),
                )

            def pool_factory() -> _PipelinePool:
                nonlocal pool
                pool = _PipelinePool(workers, policy=supervisor_policy,
                                     obs=obs, fault_plan=fault_plan,
                                     timings=timings)
                return pool

            components: Optional[List[Tuple[int, ...]]] = None
            if restored_refinement is None and restored is None:
                if candidates is None:
                    candidates, components = _streamed_pruning_phase(
                        pool_factory, records, similarity, threshold,
                        num_shards, kernel_backend, ids, component_logs,
                        obs, checkpoints,
                    )
                else:
                    components = _dispatch_all_components(
                        pool_factory(), ids, candidates, component_logs,
                        obs)
            elif need_tasks:
                pool_factory()

            result = _crowd_phases(
                pool, ids, candidates, oracle, answers, stats, permutation,
                epsilon, threshold_divisor, num_buckets, refine, ranking,
                obs, checkpoints, resume, restored, restored_refinement,
                component_logs, components,
            )
        finally:
            if pool is not None:
                pool.close()
            _PIPELINE_STATE.clear()

    if timings is not None and pool is not None:
        timings.set_meter("pipeline_bytes_shipped_total",
                          float(pool.bytes_shipped))
        timings.set_meter(
            "pipeline_bytes_per_task",
            round(pool.bytes_shipped / pool.report.tasks, 2)
            if pool.report.tasks else 0.0,
        )

    if obs is not None:
        _finalize_obs(
            obs, result,
            config={
                "epsilon": epsilon,
                "threshold_divisor": threshold_divisor,
                "num_buckets": num_buckets,
                "refine": refine,
                "parallel": True,
                "pairs_per_hit": pairs_per_hit,
                "ranking": ranking,
                "max_refinement_pairs": None,
                "refine_engine": "fast",
                "pivot_engine": "fast",
                "pipeline": True,
                "pipeline_workers": workers,
                "pruning_shards": num_shards,
            },
            seeds={"pivot_seed": seed},
        )
    report = pool.report if pool is not None else RuntimeReport()
    return PipelineResult(candidates=candidates, result=result,
                          report=report)


def _prune_wave_width() -> int:
    """In-flight prune-shard cap: one per CPU this process may use.

    Prune shards are pure compute; running more of them than there are
    CPUs just time-slices them to a synchronized finish, which starves
    the sealing rule of staggered completions.  Capping at the CPU
    count keeps the compute pipeline full while leaving the remaining
    workers free to wait out sealed components' crowd rounds.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


class _PivotBatcher:
    """Group sealed components into dispatch-sized pivot tasks.

    Streaming at component granularity is correct but wasteful: most
    components are two or three records, and the pickle + pipe round
    trip per task dwarfs their pivot work.  The batcher buffers sealed
    components and flushes a group task whenever the buffered vertex
    count reaches ``budget`` — roughly the per-task granularity of the
    barrier engines' 64-way shard packing — so early-sealed groups still
    dispatch while pruning runs, without drowning the pool in
    micro-tasks.
    """

    def __init__(self, pool: _PipelinePool, budget: int,
                 pivot_of: Dict[int, List[int]]):
        self._pool = pool
        self._budget = max(1, budget)
        self._pivot_of = pivot_of
        self._buffer: List[Tuple[Tuple[int, ...], Tuple[Pair, ...]]] = []
        self._vertices = 0
        self.dispatched = 0

    def add(self, members: Tuple[int, ...],
            edges: Tuple[Pair, ...]) -> None:
        self._buffer.append((members, edges))
        self._vertices += len(members)
        self.dispatched += 1
        if self._vertices >= self._budget:
            self.flush()

    def flush(self) -> None:
        if not self._buffer:
            return
        task = self._pool.submit(("pivot", self._buffer))
        self._pivot_of[task] = [members[0]
                                for members, _ in self._buffer]
        self._buffer = []
        self._vertices = 0


def _collect_one(pool: _PipelinePool, prune_of: Dict[int, int],
                 shard_queue: deque, batcher: _PivotBatcher,
                 pivot_of: Dict[int, List[int]],
                 merged: Dict[Pair, float],
                 tracker: IncrementalComponents,
                 sealed_components: List[Tuple[int, ...]],
                 component_logs: Dict[int, list], obs) -> None:
    """Handle one pool completion, refilling the prune wave first.

    On a pruning completion the *next* shard is submitted before any
    merge/seal bookkeeping runs: the parent's per-shard work (edge
    merge, union-find, component slicing, payload pickling) is a
    nontrivial serial chunk, and submitting first keeps a worker
    crunching the next shard underneath it instead of idling until the
    bookkeeping finishes.
    """
    index, value = pool.next_result()
    if index in prune_of:
        shard = prune_of.pop(index)
        if shard_queue:
            refill = shard_queue.popleft()
            prune_of[pool.submit(("prune", refill))] = refill
        # Shards re-emit pairs whose tokens hash to several shards; the
        # union-find only needs each edge once (the merge dict is the
        # dedup set — a pair seen before cannot change any component).
        for pair, score in value.items():
            if pair not in merged:
                merged[pair] = score
                tracker.add_edge(*pair)
        sealed = tracker.finish_shard(shard)
        before = batcher.dispatched
        for members, edges in sealed:
            sealed_components.append(members)
            if len(members) > 1:
                batcher.add(members, edges)
        if obs is not None:
            obs.event("pipeline.seal", shard=shard, sealed=len(sealed),
                      dispatched=batcher.dispatched - before,
                      queue_depth=pool.outstanding)
        return
    for key, logs in zip(pivot_of.pop(index), value):
        component_logs[key] = logs


def _streamed_pruning_phase(
    pool_factory, records, similarity, threshold: float,
    num_shards: int, kernel_backend: str, ids: Sequence[int],
    component_logs: Dict[int, list], obs, checkpoints,
) -> Tuple[CandidateSet, List[Tuple[int, ...]]]:
    """Phase A: run pruning shards, streaming sealed components to pivot.

    Byte-identical to the barrier
    :func:`~repro.pruning.candidate.build_candidate_set` prefix path:
    same join plan, same per-shard survivors, same sorted merge, same
    ``pruning`` span and gauges.  Pivot tasks dispatched here are
    collected later by :func:`_crowd_phases` — only the pruning tasks
    gate this phase's exit.
    """
    resolved_backend = resolve_kernel_backend(kernel_backend)
    metric = similarity.set_metric
    set_function = SET_METRIC_FUNCTIONS[metric]
    with maybe_span(obs, "pruning", engine="prefix", records=len(records),
                    threshold=threshold, kernel_backend=resolved_backend,
                    shards=num_shards) as span:
        sets = {record.record_id: similarity.set_of(record)
                for record in records}
        nonempty = [record_id for record_id, s in sets.items() if s]
        plan = _build_plan(sets, nonempty, metric, threshold)
        touch = record_shard_touch_masks(plan, metric, threshold, num_shards)
        tracker = IncrementalComponents(ids, touch, num_shards)
        _PIPELINE_STATE.update(
            plan=plan, num_shards=num_shards, metric=metric,
            kernel=resolved_backend, set_function=set_function,
            pair_block_size=DEFAULT_PAIR_BLOCK_SIZE,
        )
        # Fork *after* the join plan is published: workers inherit it
        # through copy-on-write memory instead of a per-worker pickle.
        pool = pool_factory()

        merged: Dict[Pair, float] = {}
        # Wave dispatch: keep at most one prune shard in flight per
        # actually-available CPU.  Flooding every worker with a prune
        # shard makes the OS time-slice them to a simultaneous finish —
        # no component seals until the very end and the overlap window
        # collapses.  Staggered completions seal components while later
        # shards still run, so their crowd rounds (the latency-bound
        # part of pivot) hide under the remaining pruning compute.
        wave = _prune_wave_width()
        shard_queue = deque(range(num_shards))
        prune_of: Dict[int, int] = {}
        for _ in range(min(wave, num_shards)):
            shard = shard_queue.popleft()
            prune_of[pool.submit(("prune", shard))] = shard
        pivot_of: Dict[int, List[int]] = {}
        batcher = _PivotBatcher(pool, len(ids) // 64, pivot_of)
        sealed_components: List[Tuple[int, ...]] = []
        while prune_of:
            _collect_one(pool, prune_of, shard_queue, batcher, pivot_of,
                         merged, tracker, sealed_components,
                         component_logs, obs)
        batcher.flush()
        assert tracker.all_sealed
        # Every edge-touched component sealed exactly once, members
        # ascending; untouched records are trivial singletons.  Sorting
        # by smallest member yields the same canonical list
        # connected_components would compute — without the extra label
        # pass over the full candidate graph.
        touched = tracker.touched
        sealed_components.extend(
            (record_id,) for record_id in ids if record_id not in touched)
        sealed_components.sort(key=lambda members: members[0])

        surviving = sorted(merged)
        scores = {pair: merged[pair] for pair in surviving}
        similarity.seed_cache(scores)
        candidates = CandidateSet(pairs=tuple(surviving),
                                  machine_scores=scores,
                                  threshold=threshold)
        if obs is not None:
            span.set_attr("candidate_pairs", len(surviving))
            obs.metrics.gauge(
                "pruning_records", help="Records entering the pruning phase"
            ).set(len(records))
            obs.metrics.gauge(
                "pruning_candidate_pairs",
                help="Pairs surviving the machine-similarity threshold",
            ).set(len(surviving))
    if checkpoints is not None:
        checkpoints.save("pruning", candidate_state(candidates))
    # Drain any pivot results that landed while pruning finished; the
    # rest are collected by the generation barrier.
    pool.pivot_of = pivot_of  # type: ignore[attr-defined]
    return candidates, sealed_components


def _dispatch_all_components(
    pool: _PipelinePool, ids: Sequence[int], candidates: CandidateSet,
    component_logs: Dict[int, list], obs,
) -> List[Tuple[int, ...]]:
    """Pre-pruned entry: every component is already sealed — dispatch all."""
    components = connected_components(ids, candidates.pairs)
    edges_of: Dict[int, List[Pair]] = {}
    comp_of: Dict[int, int] = {}
    for index, members in enumerate(components):
        if len(members) > 1:
            for vertex in members:
                comp_of[vertex] = index
            edges_of[index] = []
    for pair in candidates.pairs:
        edges_of[comp_of[pair[0]]].append(pair)
    pivot_of: Dict[int, List[int]] = {}
    batcher = _PivotBatcher(pool, len(ids) // 64, pivot_of)
    for index, members in enumerate(components):
        if len(members) > 1:
            batcher.add(members, tuple(edges_of.get(index, ())))
    batcher.flush()
    if obs is not None:
        obs.event("pipeline.seal", shard=None, sealed=len(components),
                  dispatched=batcher.dispatched,
                  queue_depth=pool.outstanding)
    pool.pivot_of = pivot_of  # type: ignore[attr-defined]
    return components


def _crowd_phases(
    pool: Optional[_PipelinePool], ids: Sequence[int],
    candidates: CandidateSet, oracle: CrowdOracle, answers,
    stats: CrowdStats, permutation: Permutation, epsilon: float,
    threshold_divisor: float, num_buckets: int, refine: bool, ranking: str,
    obs, checkpoints, resume: bool, restored, restored_refinement,
    component_logs: Dict[int, list],
    components: Optional[List[Tuple[int, ...]]] = None,
) -> ACDResult:
    """Phases B/C: generation merge barrier, refinement, result assembly.

    Mirrors :func:`~repro.core.acd.run_acd`'s structure — same spans,
    same checkpoint boundaries and payloads, same restore paths — with
    the sharded merges consuming the pipeline's per-component logs.
    """
    pivot_diagnostics: Optional[PCPivotDiagnostics] = None
    refine_diagnostics: Optional[PCRefineDiagnostics] = None
    source = oracle.source

    with maybe_span(obs, "acd", records=len(ids),
                    candidate_pairs=len(candidates), parallel=True):
        prepared = None
        if restored_refinement is not None:
            (clustering, generation_stats, pivot_diagnostics,
             refine_diagnostics) = _restore_refinement(
                restored_refinement, answers, oracle, obs)
        else:
            if restored is not None:
                clustering, pivot_diagnostics = _restore_generation(
                    restored, answers, oracle, obs)
            else:
                # Generation barrier: index the partition first — the
                # component list (streamed out of the sealing tracker,
                # so no second label pass over the candidate graph) and
                # the clustering-independent half of the refine
                # partition need only the candidate set, so this
                # parent-side compute runs while the tail pivot tasks
                # are still waiting out their crowd rounds — then drain
                # the pool and replay merged rounds through the
                # caller's oracle.
                if components is None:
                    components = connected_components(ids, candidates.pairs)
                if refine:
                    prepared = refine_shard.prepare_refine_partition(
                        components, candidates)
                pivot_of = getattr(pool, "pivot_of", {})
                while pivot_of:
                    index, value = pool.next_result()
                    for key, logs in zip(pivot_of.pop(index), value):
                        component_logs[key] = logs
                component_rounds = {
                    index: component_logs[members[0]]
                    for index, members in enumerate(components)
                    if len(members) > 1 and members[0] in component_logs
                }
                with maybe_span(obs, "generation"):
                    pivot_diagnostics = PCPivotDiagnostics()
                    clustering = pivot_shard._merge_component_runs(
                        ids, components, component_rounds, permutation,
                        oracle, epsilon, pivot_diagnostics, obs, source,
                    )
            generation_stats = stats.snapshot()
            if checkpoints is not None and restored is None:
                checkpoints.save(
                    "generation",
                    _generation_state(clustering, oracle, answers,
                                      pivot_diagnostics),
                )

            if refine:
                with maybe_span(obs, "refinement"):
                    refine_diagnostics = PCRefineDiagnostics()
                    clustering = _refine_phase(
                        pool, clustering, candidates, oracle, len(ids),
                        threshold_divisor, num_buckets, refine_diagnostics,
                        ranking, obs, source, prepared,
                    )
                if checkpoints is not None:
                    checkpoints.save(
                        "refinement",
                        _refinement_state(clustering, oracle, answers,
                                          generation_stats,
                                          pivot_diagnostics,
                                          refine_diagnostics),
                    )

    total = stats.snapshot()
    refinement_stats = {
        key: total[key] - generation_stats[key] for key in total
    }
    return ACDResult(
        clustering=clustering,
        stats=stats,
        generation_stats=generation_stats,
        refinement_stats=refinement_stats,
        pivot_diagnostics=pivot_diagnostics,
        refine_diagnostics=refine_diagnostics,
    )


def _refine_phase(
    pool: _PipelinePool, clustering: Clustering, candidates: CandidateSet,
    oracle: CrowdOracle, num_records: int, threshold_divisor: float,
    num_buckets: int, diagnostics: PCRefineDiagnostics, ranking: str,
    obs, source, prepared=None,
) -> Clustering:
    """Phase C: per-component refinement on the shared, already-forked pool.

    The coordination state that only exists now — the merged
    clustering's id counter, the frozen budget ``T``, and the global
    histogram — is broadcast to the live workers (fork carried
    everything else), then every multi-vertex component runs
    concurrently and the parent replays the merged rounds.  Semantics
    and output are exactly :func:`repro.core.refine_shard.pc_refine_sharded`'s.
    """
    refine_shard.require_pair_deterministic(source)
    if prepared is None:
        # Restore paths arrive here without the pre-drain index pass.
        components, multi, multi_components, estimator, budget = (
            refine_shard.build_refine_partition(
                clustering, candidates, oracle, num_records,
                threshold_divisor, num_buckets,
            ))
    else:
        components, multi, multi_components, estimator, budget = (
            refine_shard.finish_refine_partition(
                prepared, clustering, candidates, oracle, num_records,
                threshold_divisor, num_buckets,
            ))
    pool.broadcast("refine_next_id", clustering.next_id)
    pool.broadcast("refine_budget", budget)
    pool.broadcast("refine_estimator", estimator)
    # LPT-pack the components into dispatch-sized group tasks (the same
    # granularity reasoning as _PivotBatcher; refinement is a barrier,
    # so packing can balance globally instead of streaming).
    num_groups = min(len(multi_components), 64)
    sized = sorted(
        ((len(entries) + len(pairs), pos)
         for pos, (entries, pairs, _, _) in enumerate(multi_components)),
        key=lambda item: (-item[0], item[1]),
    )
    bins: List[List[int]] = [[] for _ in range(num_groups)]
    heap = [(0, group) for group in range(num_groups)]
    for size, pos in sized:
        load, group = heapq.heappop(heap)
        bins[group].append(pos)
        heapq.heappush(heap, (load + size, group))
    task_of: Dict[int, List[int]] = {}
    for positions in bins:
        if positions:
            task_of[pool.submit(
                ("refine", [multi_components[pos] for pos in positions])
            )] = positions
    if obs is not None:
        obs.event("pipeline.refine_dispatch",
                  components=len(multi_components), tasks=len(task_of),
                  queue_depth=pool.outstanding)
    component_runs: Dict[int, tuple] = {}
    while task_of:
        index, value = pool.next_result()
        for pos, run in zip(task_of.pop(index), value):
            component_runs[multi[pos]] = run
    refine_shard._replay_component_runs(
        clustering, components, component_runs, oracle, candidates,
        estimator, budget, diagnostics, obs, source,
    )
    refine_shard.aggregate_refine_diagnostics(diagnostics, component_runs)
    return clustering.canonicalize()
