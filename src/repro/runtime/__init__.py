"""The resilience runtime: durable writes, supervised pools, checkpoints.

Three layers, each usable on its own:

- :mod:`repro.runtime.atomic` — the one crash-durable file writer shared by
  the answer journal, the run manifest, and the phase checkpoints (temp
  file + fsync + ``os.replace`` + directory fsync).
- :mod:`repro.runtime.supervisor` — a supervised fork pool replacing the
  raw ``multiprocessing.Pool`` usage in the pruning layer: worker-death
  detection, per-task deadlines with straggler re-dispatch, bounded
  exponential-backoff retries, and a final degradation to in-process
  execution with byte-identical results.
- :mod:`repro.runtime.checkpoint` — atomic, config-fingerprinted
  phase-level snapshots (candidate set after pruning, cluster state after
  generation) so a killed run resumes from the last completed phase.

:mod:`repro.runtime.faults` injects deterministic process-level chaos
(worker kills, task delays, poison chunks) into the supervised pool; the
``repro chaos`` suite drives it.
"""

from repro.runtime.atomic import atomic_write_text, fsync_directory
from repro.runtime.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointMismatch,
    CheckpointStore,
    candidate_state,
    config_fingerprint,
    restore_candidates,
)
from repro.runtime.faults import FAULT_KINDS, FaultDirective, ProcessFaultPlan
from repro.runtime.supervisor import (
    RuntimeReport,
    SupervisorPolicy,
    supervised_map,
)

__all__ = [
    "atomic_write_text", "fsync_directory",
    "CHECKPOINT_VERSION", "CheckpointMismatch", "CheckpointStore",
    "candidate_state", "config_fingerprint", "restore_candidates",
    "FAULT_KINDS", "FaultDirective", "ProcessFaultPlan",
    "RuntimeReport", "SupervisorPolicy", "supervised_map",
]
