"""`shards="auto"`: pick sharding only where it pays for itself.

``BENCH_scale.json`` shows the crossover clearly: at the 10k tier the
8-shard pruning join and the 64-shard pivot engine are *slower* than the
serial/classic paths — per-task dispatch (fork, pickle, replay
bookkeeping) dominates the sliver of parallelizable work — while at 100k
and above the sharded engines win comfortably.  Rather than make every
caller re-derive that table, ``shards="auto"`` resolves to the bench-tier
defaults above a record-count threshold and degrades to the serial
(pruning) or classic (pivot/refine) path below it.

The decision is observable: each resolution emits a ``runtime.autoshard``
event and bumps ``runtime_autoshard_total``, so a trace shows which
engine actually ran and why.
"""

from __future__ import annotations

from typing import Optional, Union

#: Records below which sharding loses to dispatch overhead (BENCH_scale:
#: the 10k tier regresses, the 100k tier wins).
AUTO_MIN_RECORDS = 50_000

#: Bench-tier shard counts used above the threshold.
AUTO_PRUNING_SHARDS = 8
AUTO_PIVOT_SHARDS = 64
AUTO_REFINE_SHARDS = 64

_KINDS = {
    # kind: (shards above threshold, shards below: serial/classic)
    "pruning": (AUTO_PRUNING_SHARDS, 1),
    "pivot": (AUTO_PIVOT_SHARDS, 0),
    "refine": (AUTO_REFINE_SHARDS, 0),
}


def resolve_auto_shards(kind: str, *, records: int,
                        requested: Union[int, str],
                        obs=None) -> int:
    """Resolve a ``shards`` knob that may be the string ``"auto"``.

    Integers pass through untouched (explicit configuration always
    wins).  ``"auto"`` resolves by ``kind``: the bench-tier shard count
    when ``records >= AUTO_MIN_RECORDS``, else ``1`` for pruning (serial
    join) and ``0`` for pivot/refine (classic engines).  Callers must
    treat an auto-resolved ``0`` as "classic": it also implies zero
    worker processes.

    Args:
        kind: ``"pruning"``, ``"pivot"``, or ``"refine"``.
        records: Problem size the heuristic keys on.
        requested: The caller's knob — an int or ``"auto"``.
        obs: Optional :class:`~repro.obs.ObsContext`; auto resolutions
            emit a ``runtime.autoshard`` event recording the decision.
    """
    if kind not in _KINDS:
        raise ValueError(f"unknown autoshard kind {kind!r}")
    if not isinstance(requested, str):
        return requested
    if requested != "auto":
        raise ValueError(
            f"shards must be an int or 'auto', got {requested!r}")
    above, below = _KINDS[kind]
    resolved = above if records >= AUTO_MIN_RECORDS else below
    if obs is not None:
        obs.event("runtime.autoshard", kind=kind, records=records,
                  threshold=AUTO_MIN_RECORDS, resolved=resolved)
        obs.metrics.counter(
            "runtime_autoshard_total",
            help="shards='auto' heuristic resolutions",
        ).inc()
    return resolved
