"""Deterministic process-level fault injection for the supervised pool.

The crowd layer's :class:`~repro.crowd.faults.FaultModel` injects
*platform* faults (abandonment, timeouts, outages); this module injects
*process* faults into the supervised fork pool of
:mod:`repro.runtime.supervisor`:

- ``kill`` — the worker process exits abruptly mid-task (models the OOM
  killer / a segfault), exercising crash detection and chunk retry;
- ``delay`` — the task sleeps past the supervisor's deadline, exercising
  straggler re-dispatch;
- ``poison`` — the task raises, exercising the retry-then-degrade ladder.

A :class:`ProcessFaultPlan` is pure data, seeded and deterministic: the
directive for ``(task_index, attempt)`` is a function of the plan alone,
so a chaos run is exactly reproducible.  Faults fire only inside worker
processes — the parent's serial degradation path never consults the plan,
which is precisely the degradation contract: when every process-level
attempt is exhausted, in-process execution still produces the result.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import FrozenSet, Optional

#: The process-fault kinds the supervisor understands.
FAULT_KINDS = ("kill", "delay", "poison")


@dataclass(frozen=True)
class FaultDirective:
    """One injected fault: what to do to one (task, attempt) execution."""

    kind: str
    delay_seconds: float = 0.0


@dataclass(frozen=True)
class ProcessFaultPlan:
    """A seeded, deterministic schedule of process faults.

    Attributes:
        kill_tasks: Task indices whose worker dies mid-task.
        delay_tasks: Task indices delayed by ``delay_seconds``.
        poison_tasks: Task indices that raise inside the worker.
        delay_seconds: Sleep injected into delayed tasks (choose it above
            the supervisor's ``task_deadline_s`` to force re-dispatch).
        faulty_attempts: How many leading attempts of a scheduled task
            fault before it runs clean.  ``1`` models a transient fault
            (the retry succeeds); a value above the supervisor's retry
            budget models a persistent fault (the task must degrade to
            in-process execution).
    """

    kill_tasks: FrozenSet[int] = field(default_factory=frozenset)
    delay_tasks: FrozenSet[int] = field(default_factory=frozenset)
    poison_tasks: FrozenSet[int] = field(default_factory=frozenset)
    delay_seconds: float = 0.05
    faulty_attempts: int = 1

    def __post_init__(self) -> None:
        if self.faulty_attempts < 1:
            raise ValueError(
                f"faulty_attempts must be >= 1, got {self.faulty_attempts}"
            )
        if self.delay_seconds < 0:
            raise ValueError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}"
            )

    def directive(self, task_index: int,
                  attempt: int) -> Optional[FaultDirective]:
        """The fault to inject into execution ``attempt`` (0-based) of
        task ``task_index`` — or ``None`` to run clean.

        Kill wins over delay wins over poison when a task is scheduled
        for several kinds (keep the sets disjoint for clarity).
        """
        if attempt >= self.faulty_attempts:
            return None
        if task_index in self.kill_tasks:
            return FaultDirective("kill")
        if task_index in self.delay_tasks:
            return FaultDirective("delay", delay_seconds=self.delay_seconds)
        if task_index in self.poison_tasks:
            return FaultDirective("poison")
        return None

    @property
    def empty(self) -> bool:
        return not (self.kill_tasks or self.delay_tasks or self.poison_tasks)

    @staticmethod
    def sample(num_tasks: int, seed: int = 0, kills: int = 0,
               delays: int = 0, poisons: int = 0,
               delay_seconds: float = 0.05,
               faulty_attempts: int = 1) -> "ProcessFaultPlan":
        """Draw a deterministic plan over ``num_tasks`` task indices.

        The three fault populations are drawn disjointly (a task suffers
        at most one kind), seeded so the same arguments always produce
        the same plan.
        """
        total = kills + delays + poisons
        if total > num_tasks:
            raise ValueError(
                f"cannot schedule {total} faults over {num_tasks} tasks"
            )
        rng = random.Random(seed)
        chosen = rng.sample(range(num_tasks), total)
        return ProcessFaultPlan(
            kill_tasks=frozenset(chosen[:kills]),
            delay_tasks=frozenset(chosen[kills:kills + delays]),
            poison_tasks=frozenset(chosen[kills + delays:]),
            delay_seconds=delay_seconds,
            faulty_attempts=faulty_attempts,
        )
