"""Crash-durable file primitives — the one atomic writer for the repo.

The answer journal, the run manifest, and the phase checkpoints all need
the same guarantee: a reader sees either the old file or the complete new
one, never a torn write, *and* the rename itself survives power loss.
The second half is the part ad-hoc implementations forget: ``os.replace``
makes the swap atomic against crashes of the writing process, but the
rename lives in the directory, and an unsynced directory can lose it on
power failure.  :func:`atomic_write_text` does all four steps — temp file
in the destination directory, file fsync, ``os.replace``, directory fsync
— so every persistence layer gets the full guarantee from one place.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union


def fsync_directory(path: Union[str, Path]) -> None:
    """fsync a directory so renames inside it survive power loss.

    Platforms that cannot open directories (or filesystems that reject
    directory fsync) are skipped silently — the write is still atomic
    against process crashes, just not against power loss, which matches
    the strongest guarantee those platforms can give.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: Union[str, Path], text: str,
                      sync_directory: bool = True) -> None:
    """Write ``text`` to ``path`` atomically and durably.

    The content lands in a temp file in the destination directory (same
    filesystem, so the final ``os.replace`` is atomic) and is fsynced
    before the swap; the directory is fsynced after it so the rename
    itself is durable.

    Args:
        path: Destination file.
        text: Complete new content.
        sync_directory: fsync the containing directory after the rename
            (disable only in hot paths that batch their own directory
            syncs).
    """
    path = Path(path)
    handle = tempfile.NamedTemporaryFile(
        "w", dir=str(path.parent), prefix=path.name + ".",
        suffix=".tmp", delete=False, encoding="utf-8",
    )
    try:
        with handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    if sync_directory:
        fsync_directory(path.parent)
