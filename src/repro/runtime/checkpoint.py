"""Phase-level crash-safe checkpoints: resume from the last finished phase.

The answer journal (:mod:`repro.crowd.persistence`) makes the *crowd*
phases crash-safe — but everything before them (pruning at 1M records is
two minutes of CPU) was recomputed from scratch on ``--resume``.  A
:class:`CheckpointStore` closes that gap: after each expensive phase the
driver snapshots the phase's complete output atomically
(:func:`repro.runtime.atomic.atomic_write_text` — temp file + fsync +
``os.replace`` + directory fsync), stamped with a fingerprint of the run
configuration.  A resumed run loads the snapshot *iff* the configuration
matches (the same validation contract as the journal header: resuming
under different settings would silently splice phases from different
experiments) and skips straight past the completed phase.

Checkpointed phases:

- ``pruning`` — the full candidate set (pairs + machine scores +
  threshold), via :func:`candidate_state` / :func:`restore_candidates`.
- ``generation`` — the cluster state between the pivot and refine
  phases, assembled by :func:`repro.core.acd.run_acd` (clustering,
  generation-phase cost counters, the answer set ``A``).
- ``refinement`` — the finished pipeline state after phase 3, also
  assembled by :func:`repro.core.acd.run_acd` (final clustering, total
  cost counters, the full answer set, and both phases' diagnostics); a
  resume that finds it skips generation *and* refinement.

Floats survive the JSON round trip exactly (``json`` serializes with
``repr``, the shortest exact representation), so a restored phase is
byte-identical to the phase that was checkpointed.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.runtime.atomic import atomic_write_text

CHECKPOINT_VERSION = 1

#: The phases the pipeline checkpoints, in execution order.
CHECKPOINT_PHASES = ("pruning", "generation", "refinement")


class CheckpointMismatch(ValueError):
    """A checkpoint exists but was written under another configuration."""


def config_fingerprint(config: Optional[Mapping[str, Any]]) -> Optional[str]:
    """A short stable digest of a run configuration (``None`` passes
    through — an unfingerprinted store accepts any checkpoint)."""
    if config is None:
        return None
    canonical = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class CheckpointStore:
    """A directory of per-phase snapshots for one run configuration.

    Each phase is one JSON file, written atomically and durably; the
    store validates the recorded configuration on load exactly like the
    answer journal validates its header, naming the differing keys.
    """

    def __init__(self, directory: Union[str, Path],
                 config: Optional[Mapping[str, object]] = None):
        """Open (or create) the store at ``directory``.

        Args:
            directory: Checkpoint directory; created when absent.
            config: The run-configuration fingerprint recorded in every
                snapshot and validated on load.  ``None`` skips the
                validation (accepts any checkpoint) — prefer passing it.
        """
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.config: Optional[Dict[str, object]] = (
            dict(config) if config is not None else None
        )

    def path(self, phase: str) -> Path:
        return self.directory / f"{phase}.checkpoint.json"

    def save(self, phase: str, payload: Mapping[str, Any]) -> Path:
        """Atomically snapshot one completed phase; returns the file."""
        document = {
            "checkpoint": CHECKPOINT_VERSION,
            "phase": phase,
            "config": self.config,
            "payload": dict(payload),
        }
        path = self.path(phase)
        atomic_write_text(path, json.dumps(document, sort_keys=True,
                                           separators=(",", ":")))
        return path

    def load(self, phase: str) -> Optional[Dict[str, Any]]:
        """The payload checkpointed for ``phase`` — or ``None`` if absent.

        Raises:
            ValueError: On a corrupt or wrong-version checkpoint file.
            CheckpointMismatch: When the checkpoint was recorded under a
                different run configuration (differing keys are named).
        """
        path = self.path(phase)
        if not path.exists():
            return None
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except ValueError as error:
            raise ValueError(
                f"{path}: corrupt checkpoint ({error})"
            ) from None
        if (not isinstance(document, dict)
                or document.get("checkpoint") != CHECKPOINT_VERSION
                or document.get("phase") != phase
                or not isinstance(document.get("payload"), dict)):
            raise ValueError(
                f"{path}: not a version-{CHECKPOINT_VERSION} "
                f"{phase!r} checkpoint"
            )
        recorded = document.get("config")
        if self.config is not None and recorded is None:
            raise CheckpointMismatch(
                f"{path}: checkpoint records no run configuration but this "
                f"store is fingerprinted (expected keys: "
                f"{', '.join(sorted(self.config))}); resuming would splice "
                "phases from another experiment"
            )
        if (recorded is not None and self.config is not None
                and recorded != self.config):
            differing = sorted(
                key for key in set(self.config) | set(recorded)
                if self.config.get(key) != recorded.get(key)
            )
            raise CheckpointMismatch(
                f"{path}: checkpoint was recorded under a different run "
                f"configuration (differs on: {', '.join(differing)}); "
                "resuming would splice phases from another experiment"
            )
        return document["payload"]

    def clear(self, phase: Optional[str] = None) -> None:
        """Delete one phase's snapshot, or every phase's when ``None``."""
        phases = (phase,) if phase is not None else CHECKPOINT_PHASES
        for name in phases:
            try:
                self.path(name).unlink()
            except FileNotFoundError:
                pass


# ----------------------------------------------------------------------
# Phase payload codecs
# ----------------------------------------------------------------------

def candidate_state(candidates) -> Dict[str, Any]:
    """Serialize a :class:`~repro.pruning.candidate.CandidateSet`."""
    return {
        "threshold": candidates.threshold,
        "pairs": [[a, b, candidates.machine_scores[(a, b)]]
                  for a, b in candidates.pairs],
    }


def restore_candidates(payload: Mapping[str, Any]):
    """Rebuild the :class:`~repro.pruning.candidate.CandidateSet` a
    ``pruning`` checkpoint recorded, byte-identical to the original."""
    from repro.pruning.candidate import CandidateSet

    try:
        threshold = float(payload["threshold"])
        entries = [(int(a), int(b), float(score))
                   for a, b, score in payload["pairs"]]
    except (KeyError, TypeError, ValueError) as error:
        raise ValueError(
            f"malformed pruning checkpoint payload ({error})"
        ) from None
    pairs = tuple((a, b) for a, b, _ in entries)
    scores = {(a, b): score for a, b, score in entries}
    if len(scores) != len(pairs):
        raise ValueError("malformed pruning checkpoint payload "
                         "(duplicate pairs)")
    return CandidateSet(pairs=pairs, machine_scores=scores,
                        threshold=threshold)
