"""A supervised fork pool: worker death, stragglers, retries, degradation.

The raw ``multiprocessing.Pool`` the pruning layer used has a famous
failure mode: an OOM-killed or segfaulted worker leaves ``Pool.map``
hanging (or crashing) with no record of which chunk died.  This module is
the drop-in replacement.  It manages worker processes directly — one
duplex pipe each — and supervises every dispatched task:

- **Crash detection.**  Worker process sentinels are part of the event
  loop; a dead worker (non-zero exitcode, broken pipe) is detected
  immediately, its in-flight task is recovered, and a replacement worker
  is forked (bounded by ``max_worker_respawns``).
- **Deadlines / stragglers.**  With ``task_deadline_s`` set, a task that
  outlives its deadline is re-dispatched to another worker; the first
  result wins.  Workers are pure functions, so duplicate execution is
  harmless and results stay byte-identical.  A straggler that cannot be
  re-dispatched (its task already resolved, or its retry budget spent)
  is terminated so a hung worker can never block the event loop.
- **Bounded retries.**  A failed execution (crash or raise) is retried
  with exponential backoff, up to ``max_task_retries`` extra attempts —
  the process-level mirror of the crowd layer's HIT repost budget.
- **Serial degradation.**  When a task exhausts its process-level budget
  (or the whole pool dies), it runs in-process in the parent.  Tasks are
  pure and fork-state is still published in the parent, so the degraded
  result is byte-identical — the run completes, slower, never wrong.

Every decision is observable: ``runtime.worker_crash`` /
``runtime.task_retry`` / ``runtime.straggler_redispatch`` /
``runtime.straggler_termination`` /
``runtime.degraded_serial`` / ``runtime.worker_respawn`` events on the
attached :class:`~repro.obs.ObsContext`, matching ``runtime_*_total``
metrics counters, and a :class:`RuntimeReport` returned to the caller.

Determinism contract: results are assembled by task index, workers and
the degraded path compute the same pure function, so the output of
:func:`supervised_map` is byte-identical to a serial loop over the tasks
for every schedule of crashes, stragglers, and retries.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.runtime.faults import ProcessFaultPlan

#: Exit code of a chaos-killed worker (any abnormal exit is treated the
#: same; the constant only makes chaos kills recognizable in event logs).
CHAOS_KILL_EXIT = 87

#: How long a worker gets to honor a "stop" message before termination.
_SHUTDOWN_GRACE_S = 0.5


@dataclass(frozen=True)
class SupervisorPolicy:
    """Fault-handling knobs of the supervised pool.

    Attributes:
        max_task_retries: Extra executions granted to a task after its
            first failure before it degrades to in-process execution
            (straggler duplicates draw from the same budget).
        backoff_base_s: First retry delay; doubles per further attempt.
        backoff_cap_s: Upper bound on any single retry delay.
        task_deadline_s: Wall-clock budget per task execution before a
            duplicate is dispatched to another worker (``None`` disables
            straggler re-dispatch — the production default, since honest
            long tasks would otherwise double-execute).
        max_worker_respawns: Replacement workers forked over the pool's
            lifetime before crashes start shrinking the pool instead.
    """

    max_task_retries: int = 3
    backoff_base_s: float = 0.02
    backoff_cap_s: float = 0.5
    task_deadline_s: Optional[float] = None
    max_worker_respawns: int = 8

    def __post_init__(self) -> None:
        if self.max_task_retries < 0:
            raise ValueError(
                f"max_task_retries must be >= 0, got {self.max_task_retries}"
            )
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.task_deadline_s is not None and self.task_deadline_s <= 0:
            raise ValueError(
                f"task_deadline_s must be > 0, got {self.task_deadline_s}"
            )
        if self.max_worker_respawns < 0:
            raise ValueError(
                f"max_worker_respawns must be >= 0, "
                f"got {self.max_worker_respawns}"
            )

    def backoff(self, failures: int) -> float:
        """Delay before the retry following the ``failures``-th failure."""
        return min(self.backoff_cap_s,
                   self.backoff_base_s * (2 ** max(0, failures - 1)))


@dataclass
class RuntimeReport:
    """What the supervisor had to do to finish one map.

    All zeros on a fault-free run.  The chaos suite and the runtime tests
    read these; the same counts land in the obs metrics registry as
    ``runtime_*_total`` counters.
    """

    tasks: int = 0
    worker_crashes: int = 0
    task_retries: int = 0
    straggler_redispatches: int = 0
    straggler_terminations: int = 0
    worker_respawns: int = 0
    degraded_serial: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "tasks": self.tasks,
            "worker_crashes": self.worker_crashes,
            "task_retries": self.task_retries,
            "straggler_redispatches": self.straggler_redispatches,
            "straggler_terminations": self.straggler_terminations,
            "worker_respawns": self.worker_respawns,
            "degraded_serial": self.degraded_serial,
        }


def _worker_main(worker_fn: Callable[[Any], Any], conn,
                 fault_plan: Optional[ProcessFaultPlan]) -> None:
    """Worker process body: serve tasks off the pipe until told to stop.

    Chaos faults are applied *here*, per (task, attempt), so the parent's
    serial degradation path (which never enters this function) always
    runs clean — that is the bottom rung of the degradation ladder.
    """
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            if message[0] == "stop":
                return
            _, index, attempt, payload = message
            directive = (fault_plan.directive(index, attempt)
                         if fault_plan is not None else None)
            if directive is not None:
                if directive.kind == "kill":
                    os._exit(CHAOS_KILL_EXIT)
                elif directive.kind == "delay":
                    time.sleep(directive.delay_seconds)
                elif directive.kind == "poison":
                    conn.send((index, attempt, "error",
                               f"chaos poison (task {index}, "
                               f"attempt {attempt})"))
                    continue
            try:
                result = worker_fn(payload)
            except BaseException as error:  # noqa: BLE001 - forwarded
                outcome: Tuple = (index, attempt, "error", repr(error))
            else:
                outcome = (index, attempt, "ok", result)
            try:
                conn.send(outcome)
            except (BrokenPipeError, OSError):
                return
    finally:
        try:
            conn.close()
        except OSError:
            pass


@dataclass
class _Worker:
    process: Any
    conn: Any
    #: (task_index, attempt, deadline_monotonic | None) while busy.
    task: Optional[Tuple[int, int, Optional[float]]] = None
    #: Set when this worker's deadline already triggered a re-dispatch.
    deadline_fired: bool = False


class _Observer:
    """Fans supervisor decisions out to obs events + metrics counters."""

    def __init__(self, obs, label: str):
        self._obs = obs
        self._label = label

    def record(self, counter: str, event: str, **attrs: Any) -> None:
        if self._obs is None:
            return
        self._obs.metrics.counter(
            counter, help=f"Supervised-pool {event} occurrences",
        ).inc()
        self._obs.event(event, pool=self._label, **attrs)


def supervised_map(
    worker_fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    processes: int,
    policy: Optional[SupervisorPolicy] = None,
    obs=None,
    fault_plan: Optional[ProcessFaultPlan] = None,
    label: str = "runtime",
) -> Tuple[List[Any], RuntimeReport]:
    """Map ``worker_fn`` over ``payloads`` under supervision.

    A drop-in replacement for ``Pool.map`` over pure functions, with the
    fault handling described in the module docstring.  Requires the
    ``fork`` start method (the callers' existing platform contract —
    they fall back to their serial paths without it).

    Args:
        worker_fn: A *pure* picklable-result function of one payload.
            It is carried to workers by fork (closures are fine) and may
            read module globals published before the call.
        payloads: The task payloads, one result each, order preserved.
        processes: Worker process count (>= 1).
        policy: Fault-handling knobs (default :class:`SupervisorPolicy`).
        obs: Optional :class:`~repro.obs.ObsContext` receiving
            ``runtime.*`` events and ``runtime_*_total`` counters.
        fault_plan: Deterministic chaos injected inside workers.
        label: Pool name recorded on every event.

    Returns:
        ``(results, report)`` — results in payload order, byte-identical
        to ``[worker_fn(p) for p in payloads]``.
    """
    policy = policy if policy is not None else SupervisorPolicy()
    report = RuntimeReport(tasks=len(payloads))
    if not payloads:
        return [], report
    if processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    if "fork" not in multiprocessing.get_all_start_methods():
        raise RuntimeError(
            "supervised_map requires the 'fork' start method; callers "
            "must fall back to their serial path on this platform"
        )
    context = multiprocessing.get_context("fork")
    observer = _Observer(obs, label)

    total = len(payloads)
    results: Dict[int, Any] = {}
    #: Executions dispatched so far, per task (first run + retries + dups).
    dispatches = [0] * total
    #: Executions currently running in some worker, per task.
    inflight = [0] * total
    #: Executions that failed (crash or raise), per task.
    failures = [0] * total
    degraded: List[int] = []
    #: Min-heap of (ready_at_monotonic, sequence, task_index).
    pending: List[Tuple[float, int, int]] = [
        (0.0, index, index) for index in range(total)
    ]
    heapq.heapify(pending)
    sequence = total
    attempt_budget = 1 + policy.max_task_retries

    def spawn() -> _Worker:
        parent_conn, child_conn = context.Pipe()
        process = context.Process(
            target=_worker_main, args=(worker_fn, child_conn, fault_plan),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(process=process, conn=parent_conn)

    def mark_degraded(index: int) -> None:
        if index not in degraded and index not in results:
            degraded.append(index)

    def handle_failure(worker: Optional[_Worker], index: int,
                       attempt: int, reason: str) -> None:
        nonlocal sequence
        if worker is not None:
            worker.task = None
            worker.deadline_fired = False
        if index in results or index in degraded:
            return
        failures[index] += 1
        if dispatches[index] < attempt_budget:
            delay = policy.backoff(failures[index])
            report.task_retries += 1
            observer.record(
                "runtime_task_retries_total", "runtime.task_retry",
                task=index, attempt=attempt, reason=reason,
                backoff_s=round(delay, 4),
            )
            heapq.heappush(pending,
                           (time.monotonic() + delay, sequence, index))
            sequence += 1
        elif inflight[index] == 0:
            mark_degraded(index)

    workers: List[_Worker] = [spawn()
                              for _ in range(min(processes, total))]
    try:
        while len(results) + len(degraded) < total:
            now = time.monotonic()

            # Dispatch ready pending tasks onto idle workers.
            idle = [worker for worker in workers if worker.task is None]
            while idle and pending and pending[0][0] <= now:
                _, _, index = heapq.heappop(pending)
                if index in results or index in degraded:
                    continue
                worker = idle.pop()
                attempt = dispatches[index]
                dispatches[index] += 1
                inflight[index] += 1
                deadline = (now + policy.task_deadline_s
                            if policy.task_deadline_s is not None else None)
                worker.task = (index, attempt, deadline)
                worker.deadline_fired = False
                try:
                    worker.conn.send(("task", index, attempt,
                                      payloads[index]))
                except (BrokenPipeError, OSError):
                    # The worker died between dispatches; leave the task
                    # recorded on it — the sentinel handler below reaps
                    # the worker and recovers the task as a failure.
                    pass

            if not workers:
                # The whole pool is gone and cannot be rebuilt: degrade
                # everything still unresolved.
                for index in range(total):
                    if index not in results:
                        mark_degraded(index)
                break

            busy = [worker for worker in workers if worker.task is not None]
            if not busy and not pending:
                break  # everything resolved or queued for degradation

            # Sleep until the next result, crash, deadline, or backoff.
            wakeups = [worker.task[2] for worker in busy
                       if worker.task[2] is not None
                       and not worker.deadline_fired]
            if pending:
                wakeups.append(pending[0][0])
            timeout = (max(0.0, min(wakeups) - time.monotonic())
                       if wakeups else None)
            waitable = ([worker.conn for worker in busy]
                        + [worker.process.sentinel for worker in workers])
            ready = connection.wait(waitable, timeout)

            sentinel_of = {worker.process.sentinel: worker
                           for worker in workers}
            conn_of = {worker.conn: worker for worker in busy}
            crashed: List[_Worker] = []
            for item in ready:
                if item in conn_of:
                    worker = conn_of[item]
                    try:
                        index, attempt, status, value = worker.conn.recv()
                    except (EOFError, OSError):
                        crashed.append(worker)  # died mid-send
                        continue
                    inflight[index] -= 1
                    if status == "ok":
                        worker.task = None
                        worker.deadline_fired = False
                        if index not in results and index not in degraded:
                            results[index] = value
                    else:
                        handle_failure(worker, index, attempt, value)
                elif item in sentinel_of:
                    crashed.append(sentinel_of[item])

            for worker in crashed:
                if worker not in workers:
                    continue
                workers.remove(worker)
                report.worker_crashes += 1
                observer.record(
                    "runtime_worker_crashes_total", "runtime.worker_crash",
                    exitcode=worker.process.exitcode,
                    pid=worker.process.pid,
                )
                task = worker.task
                try:
                    worker.conn.close()
                except OSError:
                    pass
                worker.process.join()
                if task is not None:
                    index, attempt, _ = task
                    inflight[index] -= 1
                    handle_failure(None, index, attempt, "worker-crash")
                remaining = total - len(results) - len(degraded)
                if remaining > 0 and len(workers) < min(processes, remaining):
                    if report.worker_respawns < policy.max_worker_respawns:
                        report.worker_respawns += 1
                        replacement = spawn()
                        workers.append(replacement)
                        observer.record(
                            "runtime_worker_respawns_total",
                            "runtime.worker_respawn",
                            pid=replacement.process.pid,
                        )

            # Straggler re-dispatch: expired deadlines queue a duplicate.
            # A straggler that cannot be re-dispatched (task resolved by a
            # duplicate, or retry budget already spent) is terminated
            # outright — merely flagging it used to leave the loop blocked
            # in connection.wait with no timeout, waiting forever on a
            # hung worker that would never answer.
            now = time.monotonic()
            hung: List[_Worker] = []
            for worker in workers:
                if (worker.task is None or worker.deadline_fired
                        or worker.task[2] is None or worker.task[2] > now):
                    continue
                index, attempt, _ = worker.task
                worker.deadline_fired = True
                if (index in results or index in degraded
                        or dispatches[index] >= attempt_budget):
                    hung.append(worker)
                    continue
                report.straggler_redispatches += 1
                observer.record(
                    "runtime_straggler_redispatches_total",
                    "runtime.straggler_redispatch",
                    task=index, attempt=attempt,
                    deadline_s=policy.task_deadline_s,
                )
                heapq.heappush(pending, (now, sequence, index))
                sequence += 1
            for worker in hung:
                workers.remove(worker)
                index, attempt, _ = worker.task
                report.straggler_terminations += 1
                observer.record(
                    "runtime_straggler_terminations_total",
                    "runtime.straggler_termination",
                    task=index, attempt=attempt, pid=worker.process.pid,
                    deadline_s=policy.task_deadline_s,
                )
                worker.process.terminate()
                worker.process.join()
                try:
                    worker.conn.close()
                except OSError:
                    pass
                inflight[index] -= 1
                if inflight[index] == 0:
                    mark_degraded(index)
                remaining = total - len(results) - len(degraded)
                if remaining > 0 and len(workers) < min(processes, remaining):
                    if report.worker_respawns < policy.max_worker_respawns:
                        report.worker_respawns += 1
                        replacement = spawn()
                        workers.append(replacement)
                        observer.record(
                            "runtime_worker_respawns_total",
                            "runtime.worker_respawn",
                            pid=replacement.process.pid,
                        )
    finally:
        _shutdown(workers)

    # Bottom rung of the degradation ladder: run what the pool could not
    # finish in-process, in task order, fault-free and byte-identical.
    for index in sorted(degraded):
        if index in results:
            continue
        report.degraded_serial += 1
        observer.record(
            "runtime_degraded_serial_total", "runtime.degraded_serial",
            task=index, failures=failures[index],
        )
        results[index] = worker_fn(payloads[index])

    return [results[index] for index in range(total)], report


def _shutdown(workers: List[_Worker]) -> None:
    """Stop, terminate, and reap every worker — no child may survive.

    Runs on every exit path (success, exception, KeyboardInterrupt), so
    an aborted parallel run never leaves orphan processes behind.
    """
    for worker in workers:
        try:
            worker.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
    deadline = time.monotonic() + _SHUTDOWN_GRACE_S
    for worker in workers:
        worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
    for worker in workers:
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=_SHUTDOWN_GRACE_S)
        if worker.process.is_alive():  # pragma: no cover - last resort
            worker.process.kill()
            worker.process.join()
        try:
            worker.conn.close()
        except OSError:
            pass
