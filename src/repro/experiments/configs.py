"""Canonical experiment configurations.

Binds each dataset to the crowd settings of Section 6.1: the 3-worker
setting (20 pairs per HIT) and the stricter 5-worker setting (10 pairs per
HIT, qualified workers), with per-dataset worker difficulty calibrated so the
simulated majority-vote error rates land in the regime of Table 3:

=============  =========  =========
dataset        3w error   5w error
=============  =========  =========
Paper          ~23 %      ~21 %
Restaurant     ~0.8 %     ~0.2 %
Product        ~9 %       ~5 %
=============  =========  =========

The Paper dataset's near-flat 3w->5w curve comes from *pair-correlated*
difficulty (hard pairs are hard for every worker), which is what the
:class:`~repro.crowd.worker.DifficultyModel`'s hard-pair mixture encodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.crowd.worker import DifficultyModel

THREE_WORKERS = "3w"
FIVE_WORKERS = "5w"

WORKER_SETTINGS = (THREE_WORKERS, FIVE_WORKERS)


@dataclass(frozen=True)
class CrowdSetting:
    """One crowd deployment configuration (a column group of Table 3)."""

    name: str
    num_workers: int
    pairs_per_hit: int
    reward_cents_per_hit: float = 2.0


CROWD_SETTINGS: Dict[str, CrowdSetting] = {
    THREE_WORKERS: CrowdSetting(
        name=THREE_WORKERS, num_workers=3, pairs_per_hit=20
    ),
    FIVE_WORKERS: CrowdSetting(
        name=FIVE_WORKERS, num_workers=5, pairs_per_hit=10
    ),
}

# Per-dataset worker difficulty, calibrated against Table 3 (see module doc).
DIFFICULTY_MODELS: Dict[str, DifficultyModel] = {
    "paper": DifficultyModel(
        easy_error=0.10, hard_fraction=0.40,
        hard_error_low=0.42, hard_error_high=0.62, seed=11,
    ),
    "restaurant": DifficultyModel(
        easy_error=0.05, hard_fraction=0.0, seed=12,
    ),
    "product": DifficultyModel(
        easy_error=0.11, hard_fraction=0.11,
        hard_error_low=0.38, hard_error_high=0.52, seed=13,
    ),
    # Synthetic scale benchmark population (not a Table 3 dataset): noisy
    # variants of one entity stay token-heavy, so pairs are restaurant-easy.
    "largescale": DifficultyModel(
        easy_error=0.05, hard_fraction=0.0, seed=14,
    ),
}

# Pruning threshold of Section 6.1.
PRUNING_THRESHOLD = 0.3

# ACD defaults of Section 6.2 / Appendix C.
DEFAULT_EPSILON = 0.1
DEFAULT_THRESHOLD_DIVISOR = 8.0

# Randomized methods are repeated and averaged (Section 6.1: 5 repetitions).
DEFAULT_REPETITIONS = 5


def crowd_setting(name: str) -> CrowdSetting:
    """Look up a crowd setting by name ('3w' or '5w')."""
    try:
        return CROWD_SETTINGS[name]
    except KeyError:
        raise KeyError(
            f"unknown crowd setting {name!r}; available: {sorted(CROWD_SETTINGS)}"
        ) from None


def difficulty_model(dataset_name: str) -> DifficultyModel:
    """The calibrated difficulty model for a dataset."""
    try:
        return DIFFICULTY_MODELS[dataset_name]
    except KeyError:
        raise KeyError(
            f"no difficulty model for dataset {dataset_name!r}; "
            f"available: {sorted(DIFFICULTY_MODELS)}"
        ) from None
