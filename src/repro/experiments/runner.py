"""Experiment runner: prepare instances, run methods, collect measurements.

This is the layer the benchmarks and examples drive.  An *instance* bundles
a generated dataset, its pruned candidate set, and a shared crowd answer
file for one crowd setting — every method run on the instance replays the
same answers (the paper's file-``F`` protocol).  A *method run* produces a
:class:`MethodResult` with the three quantities the paper charts: F1,
crowdsourced pairs, and crowd iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.baselines import crowder_plus, gcer, transm, transnode
from repro.core.acd import run_acd
from repro.core.clustering import Clustering
from repro.crowd.cache import AnswerFile
from repro.crowd.oracle import CrowdOracle
from repro.crowd.stats import CrowdStats
from repro.crowd.worker import WorkerPool
from repro.datasets.registry import generate
from repro.datasets.schema import Dataset
from repro.eval.metrics import pairwise_scores
from repro.obs import maybe_span
from repro.experiments.configs import (
    CrowdSetting,
    PRUNING_THRESHOLD,
    crowd_setting,
    difficulty_model,
)
from repro.perf.timing import StageTimings
from repro.pruning.candidate import CandidateSet, build_candidate_set
from repro.similarity.composite import jaccard_similarity_function

ACD_METHOD = "ACD"
PC_PIVOT_METHOD = "PC-Pivot"
CROWD_PIVOT_METHOD = "Crowd-Pivot"
CROWDER_METHOD = "CrowdER+"
GCER_METHOD = "GCER"
TRANSM_METHOD = "TransM"
TRANSNODE_METHOD = "TransNode"

ALL_METHODS = (
    ACD_METHOD, PC_PIVOT_METHOD, CROWDER_METHOD,
    GCER_METHOD, TRANSM_METHOD, TRANSNODE_METHOD,
)

RANDOMIZED_METHODS = frozenset({ACD_METHOD, PC_PIVOT_METHOD, CROWD_PIVOT_METHOD})


@dataclass(frozen=True)
class Instance:
    """A prepared experiment instance (dataset x crowd setting)."""

    dataset: Dataset
    candidates: CandidateSet
    answers: AnswerFile
    setting: CrowdSetting

    @property
    def record_ids(self) -> List[int]:
        return self.dataset.record_ids


def prepare_instance(
    dataset_name: str,
    setting_name: str = "3w",
    scale: float = 1.0,
    seed: int = 0,
    threshold: float = PRUNING_THRESHOLD,
    engine: str = "auto",
    parallel: int = 0,
    shards: int = 0,
    kernel_backend: str = "auto",
    timings: Optional[StageTimings] = None,
    obs=None,
    candidates: Optional[CandidateSet] = None,
    supervisor_policy=None,
    fault_plan=None,
) -> Instance:
    """Generate a dataset, run the pruning phase, and open the answer file.

    Args:
        dataset_name: 'paper', 'restaurant', or 'product'.
        setting_name: '3w' or '5w'.
        scale: Dataset size multiplier (1.0 = Table 3 size).
        seed: Dataset generation seed.
        threshold: Pruning threshold τ (paper: 0.3).
        engine: Pruning engine: 'auto', 'reference', or 'prefix'
            (see :func:`repro.pruning.candidate.build_candidate_set`).
        parallel: Worker processes (reference scoring loop or sharded
            prefix join; <= 1 runs serially).
        shards: Blocking-key shards for the prefix join (0/1 = unsharded;
            output is identical for every value).
        kernel_backend: Prefix-join verification kernel: 'auto',
            'vectorized', or 'scalar' (see :mod:`repro.similarity.kernels`).
        timings: Optional stage timer recording pruning wall-clock.
        obs: Optional :class:`~repro.obs.ObsContext`; traces the pruning
            phase (the dataset generation itself is untimed).
        candidates: Pre-built candidate set (e.g. restored from a
            ``pruning`` checkpoint); skips the pruning phase entirely.
        supervisor_policy: Fault-handling knobs for parallel pruning
            (see :class:`~repro.runtime.supervisor.SupervisorPolicy`).
        fault_plan: Deterministic process-fault injection for parallel
            pruning (chaos testing only).
    """
    setting = crowd_setting(setting_name)
    dataset = generate(dataset_name, scale=scale, seed=seed)
    if candidates is None:
        candidates = build_candidate_set(
            dataset.records, jaccard_similarity_function(),
            threshold=threshold,
            engine=engine, parallel=parallel, shards=shards,
            kernel_backend=kernel_backend, timings=timings, obs=obs,
            supervisor_policy=supervisor_policy, fault_plan=fault_plan,
        )
    workers = WorkerPool(
        difficulty=difficulty_model(dataset_name),
        num_workers=setting.num_workers,
    )
    answers = AnswerFile(dataset.gold, workers)
    return Instance(
        dataset=dataset, candidates=candidates, answers=answers,
        setting=setting,
    )


@dataclass
class MethodResult:
    """One method's measurements on one instance."""

    method: str
    f1: float
    precision: float
    recall: float
    pairs_issued: float
    iterations: float
    hits: float
    num_clusters: float
    clustering: Optional[Clustering] = field(default=None, repr=False)

    def scaled_copy_without_clustering(self) -> "MethodResult":
        return replace(self, clustering=None)


def _result(method: str, instance: Instance, clustering: Clustering,
            stats: CrowdStats) -> MethodResult:
    scores = pairwise_scores(clustering, instance.dataset.gold)
    return MethodResult(
        method=method,
        f1=scores.f1,
        precision=scores.precision,
        recall=scores.recall,
        pairs_issued=float(stats.pairs_issued),
        iterations=float(stats.iterations),
        hits=float(stats.hits),
        num_clusters=float(len(clustering)),
        clustering=clustering,
    )


def _fresh_oracle(instance: Instance, obs=None) -> CrowdOracle:
    stats = CrowdStats(
        pairs_per_hit=instance.setting.pairs_per_hit,
        reward_cents_per_hit=instance.setting.reward_cents_per_hit,
        num_workers=instance.setting.num_workers,
    )
    return CrowdOracle(instance.answers, stats=stats, obs=obs)


def run_method(
    method: str,
    instance: Instance,
    seed: int = 0,
    gcer_budget: Optional[int] = None,
    epsilon: float = 0.1,
    threshold_divisor: float = 8.0,
    obs=None,
    refine_engine: str = "fast",
    pivot_engine: str = "fast",
    pivot_shards: int = 0,
    pivot_processes: int = 0,
    refine_shards: int = 0,
    refine_processes: int = 0,
    checkpoints=None,
    resume: bool = False,
    pipeline: bool = False,
    pipeline_workers: int = 0,
) -> MethodResult:
    """Run one method on an instance and measure it.

    Args:
        method: One of :data:`ALL_METHODS` or 'Crowd-Pivot'.
        instance: The prepared instance.
        seed: Seed for randomized methods (pivot permutations).
        gcer_budget: Pair budget for GCER (required when method is GCER).
        epsilon: PC-Pivot's ε (ACD / PC-Pivot only).
        threshold_divisor: PC-Refine's ``x`` (ACD only).
        obs: Optional :class:`~repro.obs.ObsContext`.  ACD / PC-Pivot runs
            get the full phase-level trace from :func:`run_acd`; baseline
            methods run inside a single ``method`` span with their crowd
            batches traced through the oracle.
        refine_engine: ACD refinement evaluation engine ("fast" or
            "reference"; byte-identical outputs) — ignored by the
            non-ACD baselines.
        pivot_engine: Cluster-generation engine ("fast" or "reference";
            byte-identical outputs) for ACD / PC-Pivot / Crowd-Pivot —
            ignored by the other baselines.
        pivot_shards: Shard tasks for sharded cluster generation (ACD /
            PC-Pivot only; forwarded to :func:`~repro.core.acd.run_acd`).
            0 keeps the classic single-graph loop.
        pivot_processes: Worker processes for the shard tasks (<= 1 runs
            them in-process; ignored without ``pivot_shards``).
        refine_shards: Shard tasks for sharded refinement (ACD only;
            forwarded to :func:`~repro.core.acd.run_acd`).  0 keeps the
            classic single-clustering loop.
        refine_processes: Worker processes for the refine shard tasks
            (<= 1 runs them in-process; ignored without
            ``refine_shards``).
        checkpoints: Optional
            :class:`~repro.runtime.checkpoint.CheckpointStore` for
            phase-level crash safety (ACD / PC-Pivot only; forwarded to
            :func:`~repro.core.acd.run_acd`).
        resume: With ``checkpoints``, restore the generation phase from
            its checkpoint instead of re-running it when one exists.
        pipeline: Run ACD's crowd phases as the component-streaming
            pipeline (ACD / PC-Pivot only; forwarded to
            :func:`~repro.core.acd.run_acd`).  Byte-identical output.
        pipeline_workers: Worker processes for the shared pipeline pool
            (ignored without ``pipeline``).
    """
    ids = instance.record_ids

    if method in (ACD_METHOD, PC_PIVOT_METHOD):
        result = run_acd(
            ids, instance.candidates, instance.answers,
            epsilon=epsilon, threshold_divisor=threshold_divisor,
            seed=seed, refine=(method == ACD_METHOD),
            pairs_per_hit=instance.setting.pairs_per_hit,
            obs=obs, refine_engine=refine_engine,
            pivot_engine=pivot_engine,
            pivot_shards=pivot_shards,
            pivot_processes=pivot_processes,
            refine_shards=refine_shards,
            refine_processes=refine_processes,
            checkpoints=checkpoints, resume=resume,
            pipeline=pipeline, pipeline_workers=pipeline_workers,
        )
        return _result(method, instance, result.clustering, result.stats)

    oracle = _fresh_oracle(instance, obs=obs)
    with maybe_span(obs, "method", method=method):
        if method == CROWD_PIVOT_METHOD:
            from repro.core.pivot import crowd_pivot
            clustering = crowd_pivot(ids, instance.candidates, oracle,
                                     seed=seed, obs=obs,
                                     engine=pivot_engine)
        elif method == CROWDER_METHOD:
            clustering = crowder_plus(ids, instance.candidates, oracle)
        elif method == TRANSM_METHOD:
            clustering = transm(ids, instance.candidates, oracle)
        elif method == TRANSNODE_METHOD:
            clustering = transnode(ids, instance.candidates, oracle)
        elif method == GCER_METHOD:
            if gcer_budget is None:
                raise ValueError("GCER needs gcer_budget (ACD's pair count)")
            clustering = gcer(ids, instance.candidates, oracle,
                              budget=gcer_budget)
        else:
            raise ValueError(f"unknown method {method!r}")
    return _result(method, instance, clustering, oracle.stats)


def average_results(results: Sequence[MethodResult]) -> MethodResult:
    """Mean of several runs of the same (randomized) method."""
    if not results:
        raise ValueError("cannot average zero results")
    method = results[0].method
    if any(result.method != method for result in results):
        raise ValueError("cannot average results of different methods")
    count = len(results)
    return MethodResult(
        method=method,
        f1=sum(r.f1 for r in results) / count,
        precision=sum(r.precision for r in results) / count,
        recall=sum(r.recall for r in results) / count,
        pairs_issued=sum(r.pairs_issued for r in results) / count,
        iterations=sum(r.iterations for r in results) / count,
        hits=sum(r.hits for r in results) / count,
        num_clusters=sum(r.num_clusters for r in results) / count,
    )


def run_comparison(
    instance: Instance,
    methods: Sequence[str] = ALL_METHODS,
    repetitions: int = 5,
    base_seed: int = 100,
    epsilon: float = 0.1,
    threshold_divisor: float = 8.0,
) -> Dict[str, MethodResult]:
    """Run the full method comparison of Section 6.3 on one instance.

    Randomized methods (ACD, PC-Pivot) are repeated ``repetitions`` times and
    averaged; GCER's budget is set to ACD's average pair count, as the paper
    prescribes.  ACD is always run (even if not requested) when GCER needs a
    budget.
    """
    results: Dict[str, MethodResult] = {}

    def run_randomized(method: str) -> MethodResult:
        runs = [
            run_method(
                method, instance, seed=base_seed + repetition,
                epsilon=epsilon, threshold_divisor=threshold_divisor,
            )
            for repetition in range(repetitions)
        ]
        return average_results(runs)

    needs_acd = ACD_METHOD in methods or GCER_METHOD in methods
    if needs_acd:
        results[ACD_METHOD] = run_randomized(ACD_METHOD)
    for method in methods:
        if method == ACD_METHOD or method in results:
            continue
        if method in RANDOMIZED_METHODS:
            results[method] = run_randomized(method)
        elif method == GCER_METHOD:
            budget = int(round(results[ACD_METHOD].pairs_issued))
            results[method] = run_method(
                method, instance, gcer_budget=budget
            )
        else:
            results[method] = run_method(method, instance)
    return {method: results[method] for method in methods if method in results}
