"""End-to-end crowd cost summaries: money plus time.

Combines a run's :class:`~repro.crowd.stats.CrowdStats` with a
:class:`~repro.crowd.latency.LatencyModel` to answer the deployment
question the paper's charts imply: *what would this method cost on AMT, in
dollars and in hours?*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.crowd.latency import LatencyModel, format_duration
from repro.crowd.stats import CrowdStats


@dataclass(frozen=True)
class CostSummary:
    """One run's projected crowd costs.

    Attributes:
        pairs: Unique record pairs crowdsourced.
        hits: HITs posted.
        iterations: Crowd rounds.
        dollars: Total worker payment.
        seconds: Simulated wall-clock time.
    """

    pairs: int
    hits: int
    iterations: int
    dollars: float
    seconds: float

    @property
    def duration(self) -> str:
        return format_duration(self.seconds)

    def __str__(self) -> str:
        return (
            f"{self.pairs} pairs / {self.hits} HITs / "
            f"{self.iterations} rounds — ${self.dollars:.2f}, "
            f"~{self.duration}"
        )


def summarize_costs(stats: CrowdStats,
                    latency: Optional[LatencyModel] = None) -> CostSummary:
    """Project a run's stats into a :class:`CostSummary`.

    Args:
        stats: The run's counters (must have per-batch sizes recorded).
        latency: Timing model; defaults to one matching the stats' HIT
            packing and worker count.
    """
    if latency is None:
        latency = LatencyModel(pairs_per_hit=stats.pairs_per_hit,
                               num_workers=stats.num_workers)
    return CostSummary(
        pairs=stats.pairs_issued,
        hits=stats.hits,
        iterations=stats.iterations,
        dollars=stats.monetary_cost_cents / 100.0,
        seconds=latency.total_seconds(stats.batch_sizes),
    )


def compare_costs(stats_by_method: Mapping[str, CrowdStats],
                  latency: Optional[LatencyModel] = None
                  ) -> "dict[str, CostSummary]":
    """Cost summaries for several methods' runs, shared timing model."""
    return {
        method: summarize_costs(stats, latency=latency)
        for method, stats in stats_by_method.items()
    }
