"""Statistical utilities for experiment results.

Randomized methods (ACD, PC-Pivot) are averaged over repetitions; a
credible comparison should also report spread and whether differences
survive resampling.  Provides mean / standard deviation / normal-theory
confidence intervals and a paired bootstrap test for method deltas.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple


@dataclass(frozen=True)
class SummaryStats:
    """Mean, sample standard deviation, and a confidence half-width."""

    mean: float
    std: float
    count: int
    confidence_half_width: float

    @property
    def interval(self) -> Tuple[float, float]:
        return (self.mean - self.confidence_half_width,
                self.mean + self.confidence_half_width)

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.confidence_half_width:.3f}"


# Two-sided z critical values for common confidence levels.
_Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def summarize(values: Sequence[float], confidence: float = 0.95) -> SummaryStats:
    """Summary statistics with a normal-approximation confidence interval.

    Raises:
        ValueError: On an empty sample or unsupported confidence level.
    """
    if not values:
        raise ValueError("cannot summarize an empty sample")
    if confidence not in _Z_VALUES:
        raise ValueError(
            f"confidence must be one of {sorted(_Z_VALUES)}, got {confidence}"
        )
    count = len(values)
    mean = sum(values) / count
    if count == 1:
        return SummaryStats(mean=mean, std=0.0, count=1,
                            confidence_half_width=0.0)
    variance = sum((v - mean) ** 2 for v in values) / (count - 1)
    std = math.sqrt(variance)
    half_width = _Z_VALUES[confidence] * std / math.sqrt(count)
    return SummaryStats(mean=mean, std=std, count=count,
                        confidence_half_width=half_width)


@dataclass(frozen=True)
class BootstrapResult:
    """Outcome of a paired bootstrap comparison."""

    mean_difference: float
    p_value: float
    resamples: int

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def paired_bootstrap(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    resamples: int = 10_000,
    seed: Optional[int] = 0,
) -> BootstrapResult:
    """Two-sided paired bootstrap test of ``mean(a) - mean(b) != 0``.

    Both samples must be paired (same length, i-th entries from the same
    run/seed).  The p-value is the fraction of sign-randomized resampled
    mean differences at least as extreme as the observed one.

    Raises:
        ValueError: On length mismatch or empty samples.
    """
    if len(sample_a) != len(sample_b):
        raise ValueError("paired samples must have equal length")
    if not sample_a:
        raise ValueError("cannot bootstrap empty samples")
    differences = [a - b for a, b in zip(sample_a, sample_b)]
    observed = sum(differences) / len(differences)
    rng = random.Random(seed)
    extreme = 0
    for _ in range(resamples):
        resampled = sum(
            d if rng.random() < 0.5 else -d for d in differences
        ) / len(differences)
        if abs(resampled) >= abs(observed) - 1e-15:
            extreme += 1
    return BootstrapResult(
        mean_difference=observed,
        p_value=extreme / resamples,
        resamples=resamples,
    )
