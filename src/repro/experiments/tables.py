"""Table/figure regeneration: produce the paper's reported rows and series.

These functions return plain data structures and formatted text blocks; the
``benchmarks/`` suite calls them and prints the output next to the paper's
reference numbers (recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.experiments.configs import WORKER_SETTINGS
from repro.experiments.runner import (
    Instance,
    MethodResult,
    prepare_instance,
    run_comparison,
)
from repro.experiments.sweeps import EpsilonSweep, ThresholdPoint


def table3_row(dataset_name: str, scale: float = 1.0,
               seed: int = 0) -> Dict[str, float]:
    """One row of Table 3: dataset characteristics and crowd error rates.

    Builds the dataset once, prunes once, and measures the majority-vote
    error rate of both crowd settings over the full candidate set.
    """
    row: Dict[str, float] = {}
    base = prepare_instance(dataset_name, "3w", scale=scale, seed=seed)
    row["records"] = len(base.dataset)
    row["entities"] = base.dataset.num_entities
    row["candidate_pairs"] = len(base.candidates)
    for setting_name in WORKER_SETTINGS:
        instance = (
            base if setting_name == "3w"
            else prepare_instance(dataset_name, setting_name, scale=scale,
                                  seed=seed)
        )
        error = instance.answers.majority_error_rate(instance.candidates.pairs)
        row[f"error_{setting_name}"] = error
    return row


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Plain-text aligned table (what the benches print)."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index])
                         for index, cell in enumerate(cells))
    out = [line(list(headers)), line(["-" * width for width in widths])]
    out.extend(line(row) for row in materialized)
    return "\n".join(out)


def format_comparison(results: Mapping[str, MethodResult]) -> str:
    """Figure 6/7/8 rows for one instance: method, F1, pairs, iterations."""
    rows = [
        [
            method,
            f"{result.f1:.3f}",
            f"{result.precision:.3f}",
            f"{result.recall:.3f}",
            f"{result.pairs_issued:.0f}",
            f"{result.iterations:.1f}",
        ]
        for method, result in results.items()
    ]
    return format_table(
        ["method", "F1", "precision", "recall", "pairs", "iterations"], rows
    )


def format_epsilon_sweep(sweep: EpsilonSweep) -> str:
    """Figure 5 series for one dataset."""
    rows = [
        [f"{point.epsilon:.1f}", f"{point.iterations:.1f}",
         f"{point.pairs_issued:.0f}"]
        for point in sweep.points
    ]
    rows.append([
        "Crowd-Pivot",
        f"{sweep.crowd_pivot_iterations:.1f}",
        f"{sweep.crowd_pivot_pairs:.0f}",
    ])
    return format_table(["epsilon", "crowd iterations", "pairs issued"], rows)


def format_threshold_sweep(points: Sequence[ThresholdPoint]) -> str:
    """Figure 10 series for one dataset."""
    rows = [
        [
            f"N_m/{point.divisor:.0f}",
            f"{point.f1:.3f}",
            f"{point.refinement_pairs:.0f}",
            f"{point.refinement_iterations:.1f}",
            f"{point.total_pairs:.0f}",
        ]
        for point in points
    ]
    return format_table(
        ["T", "F1", "refine pairs", "refine iterations", "total pairs"], rows
    )
