"""Robustness analysis: accuracy as a function of crowd error rate.

The paper's central qualitative claim is that ACD degrades gracefully with
crowd errors while transitivity-based methods collapse (Figure 1, Section
6.3's 3w-vs-5w comparison).  This module turns that claim into an explicit
curve: hold the dataset fixed, sweep the simulated crowd's error level, and
measure each method's F1 at every point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.crowd.cache import AnswerFile
from repro.crowd.oracle import CrowdOracle
from repro.crowd.stats import CrowdStats
from repro.crowd.worker import DifficultyModel, WorkerPool
from repro.datasets.schema import Dataset
from repro.eval.metrics import f1_score
from repro.pruning.candidate import CandidateSet


@dataclass(frozen=True)
class RobustnessPoint:
    """One error level of the robustness curve.

    Attributes:
        easy_error: The per-worker error probability used.
        measured_error: The realized majority-vote error over the
            candidate set.
        f1_by_method: Method name -> mean F1 at this error level.
    """

    easy_error: float
    measured_error: float
    f1_by_method: Dict[str, float]


def error_sweep(
    dataset: Dataset,
    candidates: CandidateSet,
    easy_errors: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4),
    methods: Sequence[str] = ("ACD", "TransM", "CrowdER+"),
    num_workers: int = 3,
    repetitions: int = 3,
    base_seed: int = 700,
) -> List[RobustnessPoint]:
    """Measure methods across worker error levels.

    Each point builds a fresh answer file with the given per-worker error
    (no hard-pair mixture — this sweep isolates the error-rate axis), so
    the dataset and candidate set stay constant while the crowd degrades.

    Args:
        dataset: The record set with gold labels.
        candidates: The pruned candidate set (shared across points).
        easy_errors: Per-worker error probabilities to sweep.
        methods: Any of 'ACD', 'PC-Pivot', 'TransM', 'TransNode',
            'CrowdER+'.
        num_workers: Panel size per pair.
        repetitions: Runs to average for randomized methods.
        base_seed: Seed base.

    Returns:
        One :class:`RobustnessPoint` per error level, in sweep order.
    """
    from repro.baselines import crowder_plus, transm, transnode
    from repro.core.acd import run_acd

    points: List[RobustnessPoint] = []
    for level_index, easy_error in enumerate(easy_errors):
        difficulty = DifficultyModel(easy_error=easy_error,
                                     seed=base_seed + level_index)
        answers = AnswerFile(
            dataset.gold, WorkerPool(difficulty, num_workers=num_workers)
        )
        measured = answers.majority_error_rate(candidates.pairs)

        f1_by_method: Dict[str, float] = {}
        for method in methods:
            if method in ("ACD", "PC-Pivot"):
                total = 0.0
                for repetition in range(repetitions):
                    result = run_acd(
                        dataset.record_ids, candidates, answers,
                        seed=base_seed + repetition,
                        refine=(method == "ACD"),
                    )
                    total += f1_score(result.clustering, dataset.gold)
                f1_by_method[method] = total / repetitions
            else:
                oracle = CrowdOracle(answers, stats=CrowdStats(
                    num_workers=num_workers
                ))
                if method == "TransM":
                    clustering = transm(dataset.record_ids, candidates,
                                        oracle)
                elif method == "TransNode":
                    clustering = transnode(dataset.record_ids, candidates,
                                           oracle)
                elif method == "CrowdER+":
                    clustering = crowder_plus(dataset.record_ids, candidates,
                                              oracle)
                else:
                    raise ValueError(f"unknown method {method!r}")
                f1_by_method[method] = f1_score(clustering, dataset.gold)
        points.append(RobustnessPoint(
            easy_error=easy_error,
            measured_error=measured,
            f1_by_method=f1_by_method,
        ))
    return points


def degradation(points: Sequence[RobustnessPoint], method: str) -> float:
    """Total F1 loss of a method from the first to the last sweep point."""
    if not points:
        raise ValueError("empty sweep")
    return points[0].f1_by_method[method] - points[-1].f1_by_method[method]
