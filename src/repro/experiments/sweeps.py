"""Parameter sweeps: the ε experiment (Figure 5) and the T experiment
(Figure 10 / Appendix C)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.acd import run_acd
from repro.core.pivot import crowd_pivot
from repro.crowd.oracle import CrowdOracle
from repro.crowd.stats import CrowdStats
from repro.eval.metrics import f1_score
from repro.experiments.runner import Instance

DEFAULT_EPSILONS = (0.0, 0.1, 0.2, 0.4, 0.8)
DEFAULT_THRESHOLD_DIVISORS = (2.0, 4.0, 8.0, 16.0)


@dataclass(frozen=True)
class EpsilonPoint:
    """One ε point of Figure 5: PC-Pivot's iterations and pair cost."""

    epsilon: float
    iterations: float
    pairs_issued: float


@dataclass(frozen=True)
class EpsilonSweep:
    """Figure 5 data for one dataset: PC-Pivot sweep plus the sequential
    Crowd-Pivot reference line."""

    points: List[EpsilonPoint]
    crowd_pivot_iterations: float
    crowd_pivot_pairs: float


def epsilon_sweep(
    instance: Instance,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    repetitions: int = 5,
    base_seed: int = 100,
) -> EpsilonSweep:
    """Measure PC-Pivot (generation phase only) across ε values.

    Each ε point and the Crowd-Pivot reference are averaged over
    ``repetitions`` random permutations (the same seeds for every ε, so the
    curves differ only through ε).
    """
    points: List[EpsilonPoint] = []
    for epsilon in epsilons:
        iterations = 0.0
        pairs = 0.0
        for repetition in range(repetitions):
            result = run_acd(
                instance.record_ids, instance.candidates, instance.answers,
                epsilon=epsilon, seed=base_seed + repetition, refine=False,
                pairs_per_hit=instance.setting.pairs_per_hit,
            )
            iterations += result.stats.iterations
            pairs += result.stats.pairs_issued
        points.append(EpsilonPoint(
            epsilon=epsilon,
            iterations=iterations / repetitions,
            pairs_issued=pairs / repetitions,
        ))

    sequential_iterations = 0.0
    sequential_pairs = 0.0
    for repetition in range(repetitions):
        stats = CrowdStats(pairs_per_hit=instance.setting.pairs_per_hit,
                           num_workers=instance.setting.num_workers)
        oracle = CrowdOracle(instance.answers, stats=stats)
        crowd_pivot(instance.record_ids, instance.candidates, oracle,
                    seed=base_seed + repetition)
        sequential_iterations += stats.iterations
        sequential_pairs += stats.pairs_issued
    return EpsilonSweep(
        points=points,
        crowd_pivot_iterations=sequential_iterations / repetitions,
        crowd_pivot_pairs=sequential_pairs / repetitions,
    )


@dataclass(frozen=True)
class ThresholdPoint:
    """One T point of Figure 10: divisor x (T = N_m / x), with the full-ACD
    F1, refinement pair cost, and refinement iteration count."""

    divisor: float
    f1: float
    refinement_pairs: float
    refinement_iterations: float
    total_pairs: float


def threshold_sweep(
    instance: Instance,
    divisors: Sequence[float] = DEFAULT_THRESHOLD_DIVISORS,
    repetitions: int = 5,
    base_seed: int = 100,
) -> List[ThresholdPoint]:
    """Measure full ACD across PC-Refine budget divisors (Figure 10)."""
    points: List[ThresholdPoint] = []
    for divisor in divisors:
        f1 = 0.0
        refinement_pairs = 0.0
        refinement_iterations = 0.0
        total_pairs = 0.0
        for repetition in range(repetitions):
            result = run_acd(
                instance.record_ids, instance.candidates, instance.answers,
                threshold_divisor=divisor, seed=base_seed + repetition,
                pairs_per_hit=instance.setting.pairs_per_hit,
            )
            f1 += f1_score(result.clustering, instance.dataset.gold)
            refinement_pairs += result.refinement_stats["pairs_issued"]
            refinement_iterations += result.refinement_stats["iterations"]
            total_pairs += result.stats.pairs_issued
        points.append(ThresholdPoint(
            divisor=divisor,
            f1=f1 / repetitions,
            refinement_pairs=refinement_pairs / repetitions,
            refinement_iterations=refinement_iterations / repetitions,
            total_pairs=total_pairs / repetitions,
        ))
    return points
