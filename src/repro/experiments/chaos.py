"""Chaos suite: the full pipeline stack under injected faults.

Two fault surfaces are exercised:

- **Crowd-side** — the three pipeline families (ACD, the sequential
  Crowd-Pivot, and the CrowdER+ baseline) against a fault-injecting
  :class:`~repro.crowd.platform.PlatformSimulator` (abandonment,
  timeouts, spammers, adversarial workers, outages, bounded reposts).
- **Process-side** — the supervised worker pool
  (:mod:`repro.runtime.supervisor`) under deterministic worker kills,
  task delays, and poison chunks at the 10k-record tier, for sharded
  pruning, the sharded generation pool (per-shard PC-Pivot with
  cross-shard merge), the sharded refinement pool, and the
  component-streaming pipelined executor
  (:mod:`repro.runtime.pipeline` — the full overlap DAG, compared
  against barrier execution as well), plus phase-checkpoint
  kill-resume checks
  (:mod:`repro.runtime.checkpoint`): a run killed after a completed
  phase must resume from the snapshot and finish byte-identical to an
  uninterrupted run.

Every pipeline and pruning run must terminate with degradation accounted
rather than crashed on, and every fault schedule must leave results
byte-identical.  The output is machine-readable, for the ``chaos-smoke``
CI job and for regression tracking in ``CHAOS_smoke.json``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.baselines import crowder_plus
from repro.core.acd import run_acd
from repro.crowd.faults import FaultModel
from repro.crowd.oracle import CrowdOracle
from repro.crowd.platform import PlatformAnswerFile, PlatformSimulator
from repro.crowd.stats import CrowdStats
from repro.crowd.workforce import Workforce
from repro.datasets.registry import generate
from repro.eval.metrics import pairwise_scores
from repro.experiments.configs import PRUNING_THRESHOLD, difficulty_model
from repro.pruning.candidate import build_candidate_set
from repro.similarity.composite import jaccard_similarity_function

#: The pipelines the suite must drive to completion under faults.
CHAOS_PIPELINES = ("ACD", "Crowd-Pivot", "CrowdER+")

#: The process-fault kinds of the runtime matrix (one supervised sharded
#: pruning run each, compared byte-for-byte against the fault-free run).
RUNTIME_PROCESS_FAULTS = ("kill", "delay", "poison")


def _platform_answers(dataset_name: str, dataset, candidates, seed: int,
                      fault_model: FaultModel,
                      workforce_size: int = 80,
                      concurrent_workers: int = 12) -> PlatformAnswerFile:
    workforce = Workforce(
        size=workforce_size, seed=seed,
        spam_fraction=fault_model.spam_fraction,
        adversarial_fraction=fault_model.adversarial_fraction,
    )
    platform = PlatformSimulator(
        workforce=workforce,
        gold=dataset.gold,
        difficulty=difficulty_model(dataset_name),
        concurrent_workers=concurrent_workers,
        seed=seed,
        fault_model=fault_model,
    )
    # Degradation fallback: the pruning phase's machine similarity score.
    return PlatformAnswerFile(
        platform, fallback=lambda pair: candidates.score(*pair)
    )


def run_chaos_pipeline(pipeline: str, dataset_name: str, dataset,
                       candidates, seed: int,
                       fault_model: FaultModel) -> Dict[str, object]:
    """Run one pipeline on a fresh fault-injecting platform; measure it.

    Returns a record with the pipeline's F1, crowd cost snapshot (including
    the fault counters), the degraded-pair count, and the platform's
    simulated wall clock and spend.
    """
    answers = _platform_answers(dataset_name, dataset, candidates, seed,
                                fault_model)
    ids = dataset.record_ids
    if pipeline == "ACD":
        result = run_acd(ids, candidates, answers, seed=seed, parallel=True)
        clustering, stats = result.clustering, result.stats
        oracle_degraded = answers.degraded_pairs()
    elif pipeline == "Crowd-Pivot":
        result = run_acd(ids, candidates, answers, seed=seed, parallel=False,
                         refine=False)
        clustering, stats = result.clustering, result.stats
        oracle_degraded = answers.degraded_pairs()
    elif pipeline == "CrowdER+":
        stats = CrowdStats(num_workers=answers.num_workers)
        oracle = CrowdOracle(answers, stats=stats)
        clustering = crowder_plus(ids, candidates, oracle)
        oracle_degraded = oracle.degraded_pairs()
    else:
        raise ValueError(f"unknown chaos pipeline {pipeline!r}")
    scores = pairwise_scores(clustering, dataset.gold)
    platform = answers.platform
    return {
        "pipeline": pipeline,
        "seed": seed,
        "f1": round(scores.f1, 4),
        "stats": stats.snapshot(),
        "degraded_pairs": len(oracle_degraded),
        "platform_clock_seconds": round(platform.clock_seconds, 1),
        "platform_cost_cents": round(platform.total_cost_cents(), 2),
        "fault_events": len(platform.fault_events()),
    }


def _candidate_fingerprint(candidates) -> tuple:
    """The byte-identity key of a candidate set (pairs, scores, τ)."""
    return (candidates.pairs,
            tuple(sorted(candidates.machine_scores.items())),
            candidates.threshold)


def _runtime_counters(obs) -> Dict[str, int]:
    """The supervisor's ``runtime_*_total`` counters from an ObsContext."""
    counters = obs.metrics.as_dict()["counters"]
    return {name: int(value) for name, value in sorted(counters.items())
            if name.startswith("runtime_")}


def run_runtime_process_faults(
    records: int = 10_000,
    seed: int = 0,
    shards: int = 8,
    processes: int = 4,
    faults_per_kind: int = 2,
) -> List[Dict[str, object]]:
    """The process-fault matrix: supervised sharded pruning under chaos.

    Runs the sharded prefix join over a ``records``-sized *largescale*
    population once fault-free and once per fault kind in
    :data:`RUNTIME_PROCESS_FAULTS` (deterministic worker kills, task
    delays, poison chunks injected via
    :class:`~repro.runtime.faults.ProcessFaultPlan`), asserting the
    candidate set stays byte-identical in every schedule.  Returns one
    record per fault kind with the supervisor's fault counters.
    """
    from repro.datasets.largescale import BASE_RECORDS
    from repro.obs import ObsContext
    from repro.runtime.faults import ProcessFaultPlan
    from repro.runtime.supervisor import SupervisorPolicy

    dataset = generate("largescale", scale=records / BASE_RECORDS, seed=seed)
    policy = SupervisorPolicy(backoff_base_s=0.01)
    # The delay run gets a straggler deadline shorter than the injected
    # delay, so re-dispatch (first result wins) is what finishes it.
    straggler_policy = SupervisorPolicy(backoff_base_s=0.01,
                                        task_deadline_s=0.25)

    def prune(fault_plan=None, obs=None, run_policy=policy):
        return build_candidate_set(
            dataset.records, jaccard_similarity_function(),
            threshold=PRUNING_THRESHOLD, engine="prefix",
            shards=shards, parallel=processes,
            supervisor_policy=run_policy, fault_plan=fault_plan, obs=obs,
        )

    reference = _candidate_fingerprint(prune())
    plans = {
        "kill": ProcessFaultPlan.sample(shards, seed=seed,
                                        kills=faults_per_kind),
        "delay": ProcessFaultPlan.sample(shards, seed=seed,
                                         delays=faults_per_kind,
                                         delay_seconds=0.6),
        "poison": ProcessFaultPlan.sample(shards, seed=seed,
                                          poisons=faults_per_kind),
    }
    results = []
    for kind in RUNTIME_PROCESS_FAULTS:
        obs = ObsContext()
        candidates = prune(
            fault_plan=plans[kind], obs=obs,
            run_policy=straggler_policy if kind == "delay" else policy,
        )
        results.append({
            "check": "process-fault",
            "fault": kind,
            "records": records,
            "shards": shards,
            "processes": processes,
            "candidate_pairs": len(candidates),
            "byte_identical": (_candidate_fingerprint(candidates)
                               == reference),
            "runtime_counters": _runtime_counters(obs),
        })
    return results


def _generation_fingerprint(clustering, stats, diagnostics) -> tuple:
    """The byte-identity key of one sharded generation run."""
    return (
        tuple(sorted((key, tuple(value) if isinstance(value, list) else value)
                     for key, value in clustering.to_state().items())),
        tuple(sorted(stats.snapshot().items())),
        tuple(stats.batch_sizes),
        tuple(diagnostics.ks),
        tuple(diagnostics.predicted_waste),
        tuple(diagnostics.issued_per_round),
    )


def run_generation_process_faults(
    records: int = 10_000,
    seed: int = 0,
    shards: int = 8,
    processes: int = 4,
    faults_per_kind: int = 2,
) -> List[Dict[str, object]]:
    """The generation-pool fault matrix: sharded PC-Pivot under chaos.

    Runs sharded cluster generation over a ``records``-sized *largescale*
    population once fault-free (also once through the classic
    single-process engine) and once per fault kind in
    :data:`RUNTIME_PROCESS_FAULTS`, asserting every fault schedule leaves
    the clustering, crowd stats, and per-round diagnostics byte-identical
    to the fault-free sharded run — and the clustering itself identical
    to the classic engine's.  Returns one record per fault kind with the
    supervisor's fault counters.
    """
    from repro.core.pc_pivot import PCPivotDiagnostics, pc_pivot
    from repro.crowd.cache import AnswerFile
    from repro.crowd.worker import WorkerPool
    from repro.datasets.largescale import BASE_RECORDS
    from repro.obs import ObsContext
    from repro.runtime.faults import ProcessFaultPlan
    from repro.runtime.supervisor import SupervisorPolicy

    dataset = generate("largescale", scale=records / BASE_RECORDS, seed=seed)
    candidates = build_candidate_set(
        dataset.records, jaccard_similarity_function(),
        threshold=PRUNING_THRESHOLD,
    )
    workers = WorkerPool(difficulty=difficulty_model("largescale"),
                         num_workers=3)
    policy = SupervisorPolicy(backoff_base_s=0.01)
    straggler_policy = SupervisorPolicy(backoff_base_s=0.01,
                                        task_deadline_s=0.25)

    def run(fault_plan=None, obs=None, run_policy=policy):
        # AnswerFile resolves each pair from a pair-seeded RNG, so a
        # fresh instance per run replays identical answers.
        oracle = CrowdOracle(AnswerFile(dataset.gold, workers))
        diagnostics = PCPivotDiagnostics()
        clustering = pc_pivot(
            dataset.record_ids, candidates, oracle, seed=seed,
            shards=shards, processes=processes, diagnostics=diagnostics,
            supervisor_policy=run_policy, fault_plan=fault_plan, obs=obs,
        )
        return _generation_fingerprint(clustering, oracle.stats,
                                       diagnostics), clustering

    classic_oracle = CrowdOracle(AnswerFile(dataset.gold, workers))
    classic = pc_pivot(dataset.record_ids, candidates, classic_oracle,
                       seed=seed)
    reference, reference_clustering = run()
    classic_identical = (reference_clustering.to_state()
                         == classic.to_state())
    plans = {
        "kill": ProcessFaultPlan.sample(shards, seed=seed,
                                        kills=faults_per_kind),
        "delay": ProcessFaultPlan.sample(shards, seed=seed,
                                         delays=faults_per_kind,
                                         delay_seconds=0.6),
        "poison": ProcessFaultPlan.sample(shards, seed=seed,
                                          poisons=faults_per_kind),
    }
    results = []
    for kind in RUNTIME_PROCESS_FAULTS:
        obs = ObsContext()
        fingerprint, _ = run(
            fault_plan=plans[kind], obs=obs,
            run_policy=straggler_policy if kind == "delay" else policy,
        )
        results.append({
            "check": "generation-fault",
            "fault": kind,
            "records": records,
            "shards": shards,
            "processes": processes,
            "byte_identical": fingerprint == reference,
            "classic_identical": classic_identical,
            "runtime_counters": _runtime_counters(obs),
        })
    return results


def _refinement_fingerprint(clustering, stats, diagnostics) -> tuple:
    """The byte-identity key of one sharded refinement run."""
    return (
        tuple(sorted((key, tuple(value) if isinstance(value, list) else value)
                     for key, value in clustering.to_state().items())),
        tuple(sorted(stats.snapshot().items())),
        tuple(stats.batch_sizes),
        tuple(diagnostics.batch_sizes),
        tuple(diagnostics.operations_packed),
        tuple(diagnostics.operations_applied),
        diagnostics.free_operations_applied,
        diagnostics.operation_evaluations,
        tuple(sorted(diagnostics.evaluation_cache.items()))
        if diagnostics.evaluation_cache is not None else None,
    )


def run_refine_process_faults(
    records: int = 10_000,
    seed: int = 0,
    shards: int = 8,
    processes: int = 4,
    faults_per_kind: int = 2,
) -> List[Dict[str, object]]:
    """The refinement-pool fault matrix: sharded PC-Refine under chaos.

    Runs sharded refinement over a *confused* ``records``-sized
    largescale population (``confusion`` gives the refine phase real
    over/under-merge work) once fault-free and once per fault kind in
    :data:`RUNTIME_PROCESS_FAULTS`, asserting every fault schedule
    leaves the clustering, crowd stats, and refine diagnostics
    byte-identical to the fault-free sharded run.  The classic engine's
    clustering is recorded as an advisory ``classic_identical`` flag —
    classic parity is empirical for sharded refinement (see
    ``repro/core/refine_shard.py``), so it is reported, not asserted.
    """
    from repro.core.pc_pivot import pc_pivot
    from repro.core.pc_refine import PCRefineDiagnostics, pc_refine
    from repro.crowd.cache import AnswerFile
    from repro.crowd.worker import WorkerPool
    from repro.datasets.largescale import BASE_RECORDS
    from repro.obs import ObsContext
    from repro.runtime.faults import ProcessFaultPlan
    from repro.runtime.supervisor import SupervisorPolicy

    dataset = generate("largescale", scale=records / BASE_RECORDS, seed=seed,
                       confusion=0.25)
    candidates = build_candidate_set(
        dataset.records, jaccard_similarity_function(),
        threshold=PRUNING_THRESHOLD,
    )
    workers = WorkerPool(difficulty=difficulty_model("largescale"),
                         num_workers=3)
    policy = SupervisorPolicy(backoff_base_s=0.01)
    straggler_policy = SupervisorPolicy(backoff_base_s=0.01,
                                        task_deadline_s=0.25)

    def run(refine_shards=shards, fault_plan=None, obs=None,
            run_policy=policy):
        # AnswerFile resolves each pair from a pair-seeded RNG, so a
        # fresh instance per run replays identical answers; generation
        # runs classic so only the refinement phase varies.
        oracle = CrowdOracle(AnswerFile(dataset.gold, workers))
        clustering = pc_pivot(dataset.record_ids, candidates, oracle,
                              seed=seed)
        diagnostics = PCRefineDiagnostics()
        clustering = pc_refine(
            clustering, candidates, oracle,
            num_records=len(dataset.records), diagnostics=diagnostics,
            shards=refine_shards, processes=processes if refine_shards else 0,
            supervisor_policy=run_policy, fault_plan=fault_plan, obs=obs,
        )
        return _refinement_fingerprint(clustering, oracle.stats,
                                       diagnostics), clustering

    _, classic_clustering = run(refine_shards=0)
    reference, reference_clustering = run()
    classic_identical = (reference_clustering.to_state()
                         == classic_clustering.to_state())
    plans = {
        "kill": ProcessFaultPlan.sample(shards, seed=seed,
                                        kills=faults_per_kind),
        "delay": ProcessFaultPlan.sample(shards, seed=seed,
                                         delays=faults_per_kind,
                                         delay_seconds=0.6),
        "poison": ProcessFaultPlan.sample(shards, seed=seed,
                                          poisons=faults_per_kind),
    }
    results = []
    for kind in RUNTIME_PROCESS_FAULTS:
        obs = ObsContext()
        fingerprint, _ = run(
            fault_plan=plans[kind], obs=obs,
            run_policy=straggler_policy if kind == "delay" else policy,
        )
        results.append({
            "check": "refinement-fault",
            "fault": kind,
            "records": records,
            "shards": shards,
            "processes": processes,
            "byte_identical": fingerprint == reference,
            "classic_identical": classic_identical,
            "runtime_counters": _runtime_counters(obs),
        })
    return results


def _pipeline_result_fingerprint(result) -> tuple:
    """The byte-identity key of a pipelined ACD run (cluster ids
    included — the pipelined contract is id-exact, not just
    partition-exact)."""
    return (
        tuple(sorted((key, tuple(map(tuple, value))
                      if isinstance(value, list) else value)
                     for key, value in result.clustering.to_state().items())),
        tuple(sorted(result.stats.snapshot().items())),
        tuple(result.stats.batch_sizes),
        tuple(sorted(result.generation_stats.items())),
        tuple(sorted(result.refinement_stats.items())),
    )


def run_pipeline_process_faults(
    records: int = 10_000,
    seed: int = 0,
    shards: int = 8,
    workers: int = 4,
    faults_per_kind: int = 2,
) -> List[Dict[str, object]]:
    """The pipelined-executor fault matrix: the full overlap DAG under chaos.

    Runs the component-streaming pipelined executor
    (:func:`repro.runtime.pipeline.run_pipeline`) end to end — streamed
    pruning, sealed-component pivot dispatch, shared-pool refinement —
    over a *confused* ``records``-sized largescale population once
    fault-free and once per fault kind in
    :data:`RUNTIME_PROCESS_FAULTS`, asserting every fault schedule
    leaves the final clustering (cluster ids included), crowd stats, and
    phase stats byte-identical to the fault-free pipelined run, and that
    the fault-free pipelined run is itself byte-identical to barrier
    sharded execution of the same configuration.
    """
    from repro.crowd.cache import AnswerFile
    from repro.crowd.worker import WorkerPool
    from repro.datasets.largescale import BASE_RECORDS
    from repro.obs import ObsContext
    from repro.runtime.faults import ProcessFaultPlan
    from repro.runtime.pipeline import run_pipeline
    from repro.runtime.supervisor import SupervisorPolicy

    dataset = generate("largescale", scale=records / BASE_RECORDS, seed=seed,
                       confusion=0.25)
    crowd = WorkerPool(difficulty=difficulty_model("largescale"),
                       num_workers=3)
    policy = SupervisorPolicy(backoff_base_s=0.01)
    similarity = jaccard_similarity_function()

    def run(fault_plan=None, obs=None):
        # AnswerFile resolves each pair from a pair-seeded RNG, so a
        # fresh instance per run replays identical answers.
        out = run_pipeline(
            AnswerFile(dataset.gold, crowd),
            records=dataset.records, similarity=similarity,
            threshold=PRUNING_THRESHOLD, pruning_shards=shards,
            workers=workers, seed=seed,
            supervisor_policy=policy, fault_plan=fault_plan, obs=obs,
        )
        return _pipeline_result_fingerprint(out.result), out

    reference, reference_out = run()
    barrier_candidates = build_candidate_set(
        dataset.records, similarity, threshold=PRUNING_THRESHOLD,
        shards=shards, parallel=workers,
    )
    barrier = run_acd(dataset.record_ids, barrier_candidates,
                      AnswerFile(dataset.gold, crowd), seed=seed,
                      pivot_shards=shards, pivot_processes=workers,
                      refine_shards=shards, refine_processes=workers)
    barrier_identical = (
        _pipeline_result_fingerprint(barrier) == reference
        and _candidate_fingerprint(barrier_candidates)
        == _candidate_fingerprint(reference_out.candidates)
    )
    plans = {
        "kill": ProcessFaultPlan.sample(shards, seed=seed,
                                        kills=faults_per_kind),
        # The pipeline has no straggler re-dispatch by design (pivot and
        # refine tasks sleep on crowd latency), so the delay schedule is
        # ridden out rather than raced.
        "delay": ProcessFaultPlan.sample(shards, seed=seed,
                                         delays=faults_per_kind,
                                         delay_seconds=0.6),
        "poison": ProcessFaultPlan.sample(shards, seed=seed,
                                          poisons=faults_per_kind),
    }
    results = []
    for kind in RUNTIME_PROCESS_FAULTS:
        obs = ObsContext()
        fingerprint, _ = run(fault_plan=plans[kind], obs=obs)
        results.append({
            "check": "pipeline-fault",
            "fault": kind,
            "records": records,
            "shards": shards,
            "processes": workers,
            "byte_identical": fingerprint == reference,
            "barrier_identical": barrier_identical,
            "runtime_counters": _runtime_counters(obs),
        })
    return results


class _CountingAnswers:
    """Pass-through answer source counting fresh pair resolutions."""

    def __init__(self, source):
        self._source = source
        self.resolved_pairs = 0

    @property
    def num_workers(self) -> int:
        return self._source.num_workers

    def confidence(self, record_a: int, record_b: int) -> float:
        self.resolved_pairs += 1
        return self._source.confidence(record_a, record_b)


def _acd_fingerprint(result) -> tuple:
    """The byte-identity key of a finished ACD run."""
    return (
        tuple(tuple(sorted(cluster)) for cluster in
              result.clustering.as_sets()),
        tuple(sorted(result.stats.snapshot().items())),
        tuple(result.stats.batch_sizes),
        tuple(sorted(result.generation_stats.items())),
        tuple(sorted(result.refinement_stats.items())),
    )


def run_checkpoint_kill_resume(
    dataset_name: str = "restaurant",
    scale: float = 0.1,
    seed: int = 0,
    method_seed: int = 7,
) -> List[Dict[str, object]]:
    """Kill-resume checks for both phase checkpoints.

    For each checkpointed phase the check emulates a run killed right
    after the phase's snapshot landed, then resumes in a fresh "process"
    (fresh instance, fresh answer source) and asserts the final result is
    byte-identical to an uninterrupted run — and that the resumed run did
    not re-execute the checkpointed phase (no candidate re-scoring for
    ``pruning``; only refinement-phase pair resolutions for
    ``generation``).
    """
    from repro.experiments.runner import prepare_instance
    from repro.runtime.checkpoint import (
        CheckpointStore,
        candidate_state,
        restore_candidates,
    )

    config = {"dataset": dataset_name, "scale": scale, "seed": seed,
              "method_seed": method_seed}

    def fresh_instance():
        return prepare_instance(dataset_name, "3w", scale=scale, seed=seed)

    baseline_instance = fresh_instance()
    baseline = run_acd(baseline_instance.record_ids,
                       baseline_instance.candidates,
                       _CountingAnswers(baseline_instance.answers),
                       seed=method_seed)
    reference = _acd_fingerprint(baseline)
    checks: List[Dict[str, object]] = []

    with tempfile.TemporaryDirectory() as tmp:
        # -- pruning: the killed run persisted the candidate set, died
        # before the crowd phases; the resumed run restores it and never
        # re-runs the join.
        store = CheckpointStore(Path(tmp) / "pruning", config=config)
        store.save("pruning", candidate_state(baseline_instance.candidates))
        resumed = CheckpointStore(Path(tmp) / "pruning", config=config)
        candidates = restore_candidates(resumed.load("pruning"))
        instance = prepare_instance(dataset_name, "3w", scale=scale,
                                    seed=seed, candidates=candidates)
        result = run_acd(instance.record_ids, instance.candidates,
                         instance.answers, seed=method_seed)
        checks.append({
            "check": "kill-resume",
            "phase": "pruning",
            "byte_identical": _acd_fingerprint(result) == reference,
            "candidates_identical": (
                _candidate_fingerprint(candidates)
                == _candidate_fingerprint(baseline_instance.candidates)
            ),
            "phase_reexecuted": False,
        })

        # -- generation: the killed run snapshotted phase 2, died during
        # refinement; the resumed run restores the clustering + answers
        # and only resolves refinement-phase pairs against the source.
        store = CheckpointStore(Path(tmp) / "generation", config=config)
        first_instance = fresh_instance()
        run_acd(first_instance.record_ids, first_instance.candidates,
                first_instance.answers, seed=method_seed, checkpoints=store)
        # The finished run also snapshotted the refinement phase; drop it
        # to emulate a process that died *during* refinement, so the
        # resume below genuinely exercises the generation restore path.
        store.clear("refinement")
        resumed_store = CheckpointStore(Path(tmp) / "generation",
                                        config=config)
        resume_instance = fresh_instance()
        counting = _CountingAnswers(resume_instance.answers)
        result = run_acd(resume_instance.record_ids,
                         resume_instance.candidates, counting,
                         seed=method_seed, checkpoints=resumed_store,
                         resume=True)
        generation_pairs = int(baseline.generation_stats["pairs_issued"])
        refinement_pairs = int(baseline.stats.pairs_issued) - generation_pairs
        checks.append({
            "check": "kill-resume",
            "phase": "generation",
            "byte_identical": _acd_fingerprint(result) == reference,
            "resolved_pairs_resumed": counting.resolved_pairs,
            "resolved_pairs_baseline": int(baseline.stats.pairs_issued),
            "phase_reexecuted": counting.resolved_pairs > refinement_pairs,
        })

        # -- refinement: the killed run snapshotted the finished pipeline,
        # died before reporting; the resumed run restores clustering,
        # stats, and diagnostics wholesale and never touches the crowd.
        store = CheckpointStore(Path(tmp) / "refinement", config=config)
        first_instance = fresh_instance()
        run_acd(first_instance.record_ids, first_instance.candidates,
                first_instance.answers, seed=method_seed, checkpoints=store)
        resumed_store = CheckpointStore(Path(tmp) / "refinement",
                                        config=config)
        resume_instance = fresh_instance()
        counting = _CountingAnswers(resume_instance.answers)
        result = run_acd(resume_instance.record_ids,
                         resume_instance.candidates, counting,
                         seed=method_seed, checkpoints=resumed_store,
                         resume=True)
        checks.append({
            "check": "kill-resume",
            "phase": "refinement",
            "byte_identical": _acd_fingerprint(result) == reference,
            "resolved_pairs_resumed": counting.resolved_pairs,
            "resolved_pairs_baseline": int(baseline.stats.pairs_issued),
            "phase_reexecuted": counting.resolved_pairs > 0,
        })
    return checks


def run_chaos_suite(
    dataset_name: str = "restaurant",
    scale: float = 0.1,
    seeds: Iterable[int] = (0, 1, 2),
    fault_model: Optional[FaultModel] = None,
    pipelines: Sequence[str] = CHAOS_PIPELINES,
    include_runtime: bool = True,
    runtime_records: int = 10_000,
) -> Dict[str, object]:
    """Drive every pipeline through the fault-injecting platform.

    Args:
        dataset_name: Registered dataset ('paper', 'restaurant', 'product').
        scale: Dataset size multiplier (keep small — every pipeline posts
            real simulated batches).
        seeds: One full pipeline sweep per seed.
        fault_model: Injected fault profile (default:
            :meth:`FaultModel.default`, the hostile-but-survivable AMT).
        pipelines: Which pipelines to drive.
        include_runtime: Also run the pruning process-fault matrix
            (:func:`run_runtime_process_faults`), the generation-pool
            fault matrix (:func:`run_generation_process_faults`), the
            refinement-pool fault matrix
            (:func:`run_refine_process_faults`), the pipelined-executor
            fault matrix (:func:`run_pipeline_process_faults`), and the
            checkpoint kill-resume checks
            (:func:`run_checkpoint_kill_resume`).
        runtime_records: Record count of the sharded tier the pruning,
            generation, refinement, and pipelined fault matrices run at.

    Returns:
        A machine-readable summary: the fault knobs used, one record per
        (seed, pipeline), the runtime-chaos records, and aggregate fault
        totals.  Every pipeline that reached its F1 terminated, and every
        runtime check is byte-identical — that is the property under test.
    """
    fault = fault_model if fault_model is not None else FaultModel.default()
    runs = []
    for seed in seeds:
        dataset = generate(dataset_name, scale=scale, seed=seed)
        candidates = build_candidate_set(
            dataset.records, jaccard_similarity_function(),
            threshold=PRUNING_THRESHOLD,
        )
        for pipeline in pipelines:
            runs.append(run_chaos_pipeline(
                pipeline, dataset_name, dataset, candidates, seed, fault,
            ))
    totals = {
        key: sum(run["stats"].get(key, 0) for run in runs)
        for key in ("retries", "timeouts", "abandonments",
                    "degraded_pairs", "quorum_stops")
    }
    runtime_checks: List[Dict[str, object]] = []
    if include_runtime:
        runtime_checks.extend(run_runtime_process_faults(
            records=runtime_records, seed=min(seeds, default=0),
        ))
        runtime_checks.extend(run_generation_process_faults(
            records=runtime_records, seed=min(seeds, default=0),
        ))
        runtime_checks.extend(run_refine_process_faults(
            records=runtime_records, seed=min(seeds, default=0),
        ))
        runtime_checks.extend(run_pipeline_process_faults(
            records=runtime_records, seed=min(seeds, default=0),
        ))
        runtime_checks.extend(run_checkpoint_kill_resume(
            dataset_name=dataset_name, scale=scale,
            seed=min(seeds, default=0),
        ))
    runtime_ok = all(
        check["byte_identical"]
        # barrier parity is the pipelined executor's hard contract.
        and check.get("barrier_identical", True)
        # classic_identical is advisory for refinement-fault checks —
        # sharded refinement guarantees cross-config identity, while
        # classic parity is empirical (see repro/core/refine_shard.py).
        and (check.get("classic_identical", True)
             or check["check"] == "refinement-fault")
        and not check.get("phase_reexecuted", False)
        for check in runtime_checks
    )
    runtime_fault_totals: Dict[str, int] = {}
    for check in runtime_checks:
        for name, value in check.get("runtime_counters", {}).items():
            runtime_fault_totals[name] = (
                runtime_fault_totals.get(name, 0) + value
            )
    return {
        "suite": "chaos",
        "dataset": dataset_name,
        "scale": scale,
        "seeds": list(seeds),
        "fault_model": {
            "abandonment_probability": fault.abandonment_probability,
            "timeout_seconds": fault.timeout_seconds,
            "spam_fraction": fault.spam_fraction,
            "adversarial_fraction": fault.adversarial_fraction,
            "outages": [list(window) for window in fault.outages],
            "max_reposts": fault.max_reposts,
            "early_quorum": fault.early_quorum,
        },
        "runs": runs,
        "fault_totals": totals,
        "runtime_checks": runtime_checks,
        "runtime_fault_totals": runtime_fault_totals,
        "all_completed": (
            len(runs) == len(list(seeds)) * len(list(pipelines))
            and (runtime_ok or not include_runtime)
        ),
    }
