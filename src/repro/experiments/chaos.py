"""Chaos suite: the full pipeline stack under an adversarial crowd.

Runs the three pipeline families — ACD (PC-Pivot + PC-Refine), the
sequential Crowd-Pivot, and the CrowdER+ baseline — against a
fault-injecting :class:`~repro.crowd.platform.PlatformSimulator`
(abandonment, timeouts, spammers, adversarial workers, outages, bounded
reposts) and verifies that every one of them terminates, with degradation
accounted rather than crashed on.  The output is machine-readable, for
the ``chaos-smoke`` CI job and for regression tracking in
``CHAOS_smoke.json``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.baselines import crowder_plus
from repro.core.acd import run_acd
from repro.crowd.faults import FaultModel
from repro.crowd.oracle import CrowdOracle
from repro.crowd.platform import PlatformAnswerFile, PlatformSimulator
from repro.crowd.stats import CrowdStats
from repro.crowd.workforce import Workforce
from repro.datasets.registry import generate
from repro.eval.metrics import pairwise_scores
from repro.experiments.configs import PRUNING_THRESHOLD, difficulty_model
from repro.pruning.candidate import build_candidate_set
from repro.similarity.composite import jaccard_similarity_function

#: The pipelines the suite must drive to completion under faults.
CHAOS_PIPELINES = ("ACD", "Crowd-Pivot", "CrowdER+")


def _platform_answers(dataset_name: str, dataset, candidates, seed: int,
                      fault_model: FaultModel,
                      workforce_size: int = 80,
                      concurrent_workers: int = 12) -> PlatformAnswerFile:
    workforce = Workforce(
        size=workforce_size, seed=seed,
        spam_fraction=fault_model.spam_fraction,
        adversarial_fraction=fault_model.adversarial_fraction,
    )
    platform = PlatformSimulator(
        workforce=workforce,
        gold=dataset.gold,
        difficulty=difficulty_model(dataset_name),
        concurrent_workers=concurrent_workers,
        seed=seed,
        fault_model=fault_model,
    )
    # Degradation fallback: the pruning phase's machine similarity score.
    return PlatformAnswerFile(
        platform, fallback=lambda pair: candidates.score(*pair)
    )


def run_chaos_pipeline(pipeline: str, dataset_name: str, dataset,
                       candidates, seed: int,
                       fault_model: FaultModel) -> Dict[str, object]:
    """Run one pipeline on a fresh fault-injecting platform; measure it.

    Returns a record with the pipeline's F1, crowd cost snapshot (including
    the fault counters), the degraded-pair count, and the platform's
    simulated wall clock and spend.
    """
    answers = _platform_answers(dataset_name, dataset, candidates, seed,
                                fault_model)
    ids = dataset.record_ids
    if pipeline == "ACD":
        result = run_acd(ids, candidates, answers, seed=seed, parallel=True)
        clustering, stats = result.clustering, result.stats
        oracle_degraded = answers.degraded_pairs()
    elif pipeline == "Crowd-Pivot":
        result = run_acd(ids, candidates, answers, seed=seed, parallel=False,
                         refine=False)
        clustering, stats = result.clustering, result.stats
        oracle_degraded = answers.degraded_pairs()
    elif pipeline == "CrowdER+":
        stats = CrowdStats(num_workers=answers.num_workers)
        oracle = CrowdOracle(answers, stats=stats)
        clustering = crowder_plus(ids, candidates, oracle)
        oracle_degraded = oracle.degraded_pairs()
    else:
        raise ValueError(f"unknown chaos pipeline {pipeline!r}")
    scores = pairwise_scores(clustering, dataset.gold)
    platform = answers.platform
    return {
        "pipeline": pipeline,
        "seed": seed,
        "f1": round(scores.f1, 4),
        "stats": stats.snapshot(),
        "degraded_pairs": len(oracle_degraded),
        "platform_clock_seconds": round(platform.clock_seconds, 1),
        "platform_cost_cents": round(platform.total_cost_cents(), 2),
        "fault_events": len(platform.fault_events()),
    }


def run_chaos_suite(
    dataset_name: str = "restaurant",
    scale: float = 0.1,
    seeds: Iterable[int] = (0, 1, 2),
    fault_model: Optional[FaultModel] = None,
    pipelines: Sequence[str] = CHAOS_PIPELINES,
) -> Dict[str, object]:
    """Drive every pipeline through the fault-injecting platform.

    Args:
        dataset_name: Registered dataset ('paper', 'restaurant', 'product').
        scale: Dataset size multiplier (keep small — every pipeline posts
            real simulated batches).
        seeds: One full pipeline sweep per seed.
        fault_model: Injected fault profile (default:
            :meth:`FaultModel.default`, the hostile-but-survivable AMT).
        pipelines: Which pipelines to drive.

    Returns:
        A machine-readable summary: the fault knobs used, one record per
        (seed, pipeline), and aggregate fault totals.  Every pipeline that
        reached its F1 terminated — that is the property under test.
    """
    fault = fault_model if fault_model is not None else FaultModel.default()
    runs = []
    for seed in seeds:
        dataset = generate(dataset_name, scale=scale, seed=seed)
        candidates = build_candidate_set(
            dataset.records, jaccard_similarity_function(),
            threshold=PRUNING_THRESHOLD,
        )
        for pipeline in pipelines:
            runs.append(run_chaos_pipeline(
                pipeline, dataset_name, dataset, candidates, seed, fault,
            ))
    totals = {
        key: sum(run["stats"].get(key, 0) for run in runs)
        for key in ("retries", "timeouts", "abandonments",
                    "degraded_pairs", "quorum_stops")
    }
    return {
        "suite": "chaos",
        "dataset": dataset_name,
        "scale": scale,
        "seeds": list(seeds),
        "fault_model": {
            "abandonment_probability": fault.abandonment_probability,
            "timeout_seconds": fault.timeout_seconds,
            "spam_fraction": fault.spam_fraction,
            "adversarial_fraction": fault.adversarial_fraction,
            "outages": [list(window) for window in fault.outages],
            "max_reposts": fault.max_reposts,
            "early_quorum": fault.early_quorum,
        },
        "runs": runs,
        "fault_totals": totals,
        "all_completed": len(runs) == len(list(seeds)) * len(list(pipelines)),
    }
