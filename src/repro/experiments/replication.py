"""One-command full replication.

:func:`replicate` runs everything the paper's evaluation reports — Table 3,
the ε sweep (Figure 5), the six-method comparison (Figures 6–8), and the T
sweep (Figure 10) — across all datasets and both crowd settings, and
renders a single markdown document mirroring EXPERIMENTS.md's structure.
The CLI command ``repro replicate`` wraps it.

At scale 1.0 with 3 repetitions this is ~10 minutes of compute; pass a
smaller scale for a quick pass.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.datasets.registry import dataset_names
from repro.experiments.report import ExperimentReport, markdown_table
from repro.experiments.runner import prepare_instance, run_comparison
from repro.experiments.sweeps import epsilon_sweep, threshold_sweep
from repro.experiments.tables import table3_row

ProgressCallback = Callable[[str], None]


def replicate(
    scale: float = 1.0,
    seed: int = 1,
    repetitions: int = 3,
    settings: Sequence[str] = ("3w", "5w"),
    datasets: Optional[Sequence[str]] = None,
    include_sweeps: bool = True,
    progress: Optional[ProgressCallback] = None,
) -> str:
    """Run the full evaluation and return the markdown report.

    Args:
        scale: Dataset size multiplier (1.0 = Table 3 sizes).
        seed: Dataset/crowd seed.
        repetitions: Averaging runs for randomized methods.
        settings: Crowd settings to cover.
        datasets: Datasets to cover (default: all three).
        include_sweeps: Also run the ε and T sweeps (3w only, per the
            paper).
        progress: Optional callback receiving one line per completed step.
    """
    names = list(datasets) if datasets is not None else dataset_names()

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    report = ExperimentReport(
        title=f"Full replication (scale={scale}, reps={repetitions}, "
              f"seed={seed})"
    )

    # Table 3.
    rows = []
    for name in names:
        row = table3_row(name, scale=scale, seed=seed)
        rows.append([
            name, f"{row['records']:.0f}", f"{row['entities']:.0f}",
            f"{row['candidate_pairs']:.0f}",
            f"{row['error_3w']:.1%}", f"{row['error_5w']:.1%}",
        ])
        note(f"table3: {name}")
    report.add_section("Table 3 — datasets and crowd error rates",
                       markdown_table(
                           ["dataset", "records", "entities", "pairs",
                            "error 3w", "error 5w"], rows))

    # Figures 6-8 per dataset x setting.
    for name in names:
        for setting in settings:
            instance = prepare_instance(name, setting, scale=scale,
                                        seed=seed)
            results = run_comparison(instance, repetitions=repetitions)
            report.add_comparison(
                f"Figures 6-8 — {name} ({setting})", results
            )
            note(f"comparison: {name}/{setting}")

    # Figures 5 and 10 (3-worker setting, as in the paper).
    if include_sweeps:
        for name in names:
            instance = prepare_instance(name, "3w", scale=scale, seed=seed)
            report.add_epsilon_sweep(
                f"Figure 5 — ε sweep — {name}",
                epsilon_sweep(instance, repetitions=repetitions),
            )
            note(f"epsilon sweep: {name}")
            report.add_threshold_sweep(
                f"Figure 10 — T sweep — {name}",
                threshold_sweep(instance, repetitions=repetitions),
            )
            note(f"threshold sweep: {name}")

    return report.render()
