"""Resumable experiment grids with an on-disk result store.

Running the full comparison over datasets × settings × methods takes
minutes; re-running everything because one cell changed is wasteful.
:class:`ResultStore` persists finished cells as JSON keyed by their exact
configuration; :func:`run_grid` fills in only the missing cells.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.experiments.runner import (
    ALL_METHODS,
    MethodResult,
    prepare_instance,
    run_comparison,
)

_STORE_VERSION = 1


@dataclass(frozen=True)
class GridCell:
    """One grid configuration (a dataset × setting comparison)."""

    dataset: str
    setting: str
    scale: float
    seed: int
    repetitions: int

    def key(self) -> str:
        return (f"{self.dataset}|{self.setting}|scale={self.scale}"
                f"|seed={self.seed}|reps={self.repetitions}")


class ResultStore:
    """JSON-backed store of finished grid cells.

    The file layout is a single JSON object:
    ``{"version": 1, "cells": {key: {method: result_dict}}}``.
    """

    def __init__(self, path: Union[str, Path]):
        self._path = Path(path)
        self._cells: Dict[str, Dict[str, Dict[str, float]]] = {}
        if self._path.exists():
            payload = json.loads(self._path.read_text())
            if (not isinstance(payload, dict)
                    or payload.get("version") != _STORE_VERSION):
                raise ValueError(f"{path}: not a version-{_STORE_VERSION} "
                                 "result store")
            self._cells = payload["cells"]

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, cell: GridCell) -> bool:
        return cell.key() in self._cells

    def get(self, cell: GridCell) -> Optional[Dict[str, MethodResult]]:
        """Stored results for a cell, rebuilt as MethodResult objects."""
        raw = self._cells.get(cell.key())
        if raw is None:
            return None
        return {
            method: MethodResult(
                method=method,
                f1=values["f1"],
                precision=values["precision"],
                recall=values["recall"],
                pairs_issued=values["pairs_issued"],
                iterations=values["iterations"],
                hits=values["hits"],
                num_clusters=values["num_clusters"],
            )
            for method, values in raw.items()
        }

    def put(self, cell: GridCell,
            results: Dict[str, MethodResult]) -> None:
        """Store a cell's results and flush to disk."""
        self._cells[cell.key()] = {
            method: {
                "f1": result.f1,
                "precision": result.precision,
                "recall": result.recall,
                "pairs_issued": result.pairs_issued,
                "iterations": result.iterations,
                "hits": result.hits,
                "num_clusters": result.num_clusters,
            }
            for method, result in results.items()
        }
        self._flush()

    def _flush(self) -> None:
        payload = {"version": _STORE_VERSION, "cells": self._cells}
        self._path.write_text(json.dumps(payload, indent=0, sort_keys=True))


def grid_cells(
    datasets: Sequence[str],
    settings: Sequence[str],
    scale: float = 1.0,
    seed: int = 1,
    repetitions: int = 3,
) -> List[GridCell]:
    """The full factorial cell list."""
    return [
        GridCell(dataset=dataset, setting=setting, scale=scale, seed=seed,
                 repetitions=repetitions)
        for dataset in datasets
        for setting in settings
    ]


def run_grid(
    cells: Sequence[GridCell],
    store: ResultStore,
    methods: Sequence[str] = ALL_METHODS,
) -> Dict[GridCell, Dict[str, MethodResult]]:
    """Fill a grid, skipping cells already in the store.

    Returns every requested cell's results (cached or fresh).
    """
    out: Dict[GridCell, Dict[str, MethodResult]] = {}
    for cell in cells:
        cached = store.get(cell)
        if cached is not None and set(methods) <= set(cached):
            out[cell] = {method: cached[method] for method in methods}
            continue
        instance = prepare_instance(cell.dataset, cell.setting,
                                    scale=cell.scale, seed=cell.seed)
        results = run_comparison(instance, methods=methods,
                                 repetitions=cell.repetitions)
        stripped = {
            method: result.scaled_copy_without_clustering()
            for method, result in results.items()
        }
        store.put(cell, stripped)
        out[cell] = stripped
    return out
