"""Markdown experiment reports.

Turns experiment results into a self-contained markdown document — the
programmatic counterpart of EXPERIMENTS.md.  Used by the CLI's ``report``
command and handy for CI artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence

from repro.experiments.runner import Instance, MethodResult, run_comparison
from repro.experiments.sweeps import (
    EpsilonSweep,
    ThresholdPoint,
    epsilon_sweep,
    threshold_sweep,
)


def markdown_table(headers: Sequence[str],
                   rows: Sequence[Sequence[object]]) -> str:
    """A GitHub-flavored markdown table."""
    head = "| " + " | ".join(headers) + " |"
    divider = "|" + "|".join("---" for _ in headers) + "|"
    body = "\n".join(
        "| " + " | ".join(str(cell) for cell in row) + " |" for row in rows
    )
    return f"{head}\n{divider}\n{body}" if rows else f"{head}\n{divider}"


@dataclass
class ExperimentReport:
    """Accumulates sections and renders one markdown document."""

    title: str = "Experiment report"
    _sections: List[str] = field(default_factory=list)

    def add_section(self, heading: str, body: str) -> None:
        self._sections.append(f"## {heading}\n\n{body}")

    def add_comparison(self, heading: str,
                       results: Mapping[str, MethodResult]) -> None:
        """A Figure 6/7/8-style method table."""
        rows = [
            [
                method,
                f"{result.f1:.3f}",
                f"{result.precision:.3f}",
                f"{result.recall:.3f}",
                f"{result.pairs_issued:.0f}",
                f"{result.iterations:.1f}",
            ]
            for method, result in results.items()
        ]
        self.add_section(heading, markdown_table(
            ["method", "F1", "precision", "recall", "pairs", "iterations"],
            rows,
        ))

    def add_epsilon_sweep(self, heading: str, sweep: EpsilonSweep) -> None:
        rows = [
            [f"{point.epsilon:.1f}", f"{point.iterations:.1f}",
             f"{point.pairs_issued:.0f}"]
            for point in sweep.points
        ]
        rows.append(["Crowd-Pivot", f"{sweep.crowd_pivot_iterations:.1f}",
                     f"{sweep.crowd_pivot_pairs:.0f}"])
        self.add_section(heading, markdown_table(
            ["ε", "crowd iterations", "pairs issued"], rows
        ))

    def add_threshold_sweep(self, heading: str,
                            points: Sequence[ThresholdPoint]) -> None:
        rows = [
            [f"N_m/{point.divisor:.0f}", f"{point.f1:.3f}",
             f"{point.refinement_pairs:.0f}",
             f"{point.refinement_iterations:.1f}"]
            for point in points
        ]
        self.add_section(heading, markdown_table(
            ["T", "F1", "refine pairs", "refine iterations"], rows
        ))

    def render(self) -> str:
        parts = [f"# {self.title}"]
        parts.extend(self._sections)
        return "\n\n".join(parts) + "\n"


def full_report_for_instance(
    instance: Instance,
    repetitions: int = 3,
    include_sweeps: bool = True,
    title: Optional[str] = None,
) -> str:
    """One-stop report: method comparison plus both parameter sweeps."""
    name = instance.dataset.name
    report = ExperimentReport(
        title=title or f"ACD reproduction — {name} ({instance.setting.name})"
    )
    report.add_section("Instance", markdown_table(
        ["records", "entities", "candidate pairs", "workers"],
        [[len(instance.dataset), instance.dataset.num_entities,
          len(instance.candidates), instance.setting.num_workers]],
    ))
    report.add_comparison(
        "Method comparison (Figures 6-8)",
        run_comparison(instance, repetitions=repetitions),
    )
    if include_sweeps:
        report.add_epsilon_sweep(
            "ε sweep (Figure 5)",
            epsilon_sweep(instance, repetitions=repetitions),
        )
        report.add_threshold_sweep(
            "T sweep (Figure 10)",
            threshold_sweep(instance, repetitions=repetitions),
        )
    return report.render()
