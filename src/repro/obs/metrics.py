"""A small metrics registry: counters, gauges, equal-width histograms.

The pipeline's instrumentation sites increment these as they run; the
registry's :meth:`MetricsRegistry.as_dict` snapshot lands in the run
manifest, and :func:`repro.obs.exporters.to_prometheus` renders the same
state in the Prometheus text exposition format.

The registry deliberately mirrors the Prometheus data model — monotone
counters, last-write gauges, cumulative-bucket histograms — but stays
dependency-free and in-process: there is no label support and no
concurrency, because one registry instruments one pipeline run.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

# Batch sizes span a few pairs (one pivot's edges) to thousands (a whole
# PC-Pivot round); roughly-exponential bounds keep every decade visible.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A fixed-bound histogram with cumulative bucket counts.

    ``counts[i]`` counts observations ``<= bounds[i]``; one implicit
    overflow bucket (``+Inf``) catches the rest, Prometheus-style.
    """

    __slots__ = ("name", "help", "bounds", "counts", "sum", "count")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS,
                 help: str = ""):
        ordered = tuple(float(bound) for bound in bounds)
        if not ordered or any(nxt <= prev
                              for prev, nxt in zip(ordered, ordered[1:])):
            raise ValueError(
                f"histogram {name!r} needs strictly increasing bounds, "
                f"got {bounds!r}"
            )
        self.name = name
        self.help = help
        self.bounds = ordered
        self.counts = [0] * len(ordered)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1

    def snapshot(self) -> Dict[str, Any]:
        return {
            "buckets": {str(bound): count
                        for bound, count in zip(self.bounds, self.counts)},
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Named metric instruments, get-or-create by kind."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_free(self, name: str, kind: Dict[str, Any]) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not kind and name in family:
                raise ValueError(
                    f"metric {name!r} already registered with another kind"
                )

    def counter(self, name: str, help: str = "") -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            self._check_free(name, self._counters)
            counter = self._counters[name] = Counter(name, help=help)
        return counter

    def gauge(self, name: str, help: str = "") -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            self._check_free(name, self._gauges)
            gauge = self._gauges[name] = Gauge(name, help=help)
        return gauge

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None,
                  help: str = "") -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            self._check_free(name, self._histograms)
            histogram = self._histograms[name] = Histogram(
                name, bounds=bounds or DEFAULT_BUCKETS, help=help,
            )
        return histogram

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def families(self) -> Iterable[Tuple[str, str, Any]]:
        """(kind, name, instrument) triples in registration order."""
        for name, counter in self._counters.items():
            yield "counter", name, counter
        for name, gauge in self._gauges.items():
            yield "gauge", name, gauge
        for name, histogram in self._histograms.items():
            yield "histogram", name, histogram

    def as_dict(self) -> Dict[str, Any]:
        """The manifest's ``metrics`` block (JSON-ready)."""
        return {
            "counters": {name: counter.value
                         for name, counter in self._counters.items()},
            "gauges": {name: gauge.value
                       for name, gauge in self._gauges.items()},
            "histograms": {name: histogram.snapshot()
                           for name, histogram in self._histograms.items()},
        }
