"""Pipeline observability: trace spans, metrics, JSONL logs, manifests.

The pipeline's instrumentation sites all accept an optional
:class:`ObsContext` (default ``None`` — observability is opt-in and the
disabled path is allocation-free and byte-identical in output to an
uninstrumented run).  An :class:`ObsContext` bundles:

- a :class:`~repro.obs.trace.Tracer` building the span tree,
- a :class:`~repro.obs.metrics.MetricsRegistry` of counters / gauges /
  histograms,
- optionally a :class:`~repro.obs.events.JsonlEventLog` that every
  finished span and emitted event streams into, and
- optionally a manifest path, in which case
  :func:`repro.core.acd.run_acd` writes a run manifest atomically when
  it finishes.

Typical use::

    from repro.obs import ObsContext

    obs = ObsContext.to_path("run.trace.jsonl")
    result = run_acd(ids, candidates, answers, seed=7, obs=obs)
    obs.close()          # flushes the JSONL log
    # -> run.trace.jsonl + run.trace.manifest.json
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.obs.events import JsonlEventLog, read_events
from repro.obs.exporters import (
    format_trace_summary,
    summarize_trace,
    to_prometheus,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    dataset_fingerprint,
    default_manifest_path,
    git_revision,
    load_manifest,
    validate_manifest,
    write_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "ObsContext", "maybe_span",
    "Tracer", "NullTracer", "NULL_TRACER", "Span",
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "JsonlEventLog", "read_events",
    "to_prometheus", "summarize_trace", "format_trace_summary",
    "MANIFEST_SCHEMA", "MANIFEST_SCHEMA_VERSION",
    "build_manifest", "dataset_fingerprint", "default_manifest_path",
    "git_revision", "load_manifest", "validate_manifest", "write_manifest",
]


_NULL_CONTEXT_SPAN = NULL_TRACER.span("")


def maybe_span(obs: Optional["ObsContext"], name: str, **attrs: Any):
    """A span on ``obs`` — or the shared no-op span when ``obs`` is None.

    The instrumentation idiom for phase-granularity sites::

        with maybe_span(obs, "generation"):
            ...

    The disabled branch returns one shared null object: no allocation,
    no timing, nothing recorded.
    """
    if obs is None:
        return _NULL_CONTEXT_SPAN
    return obs.span(name, **attrs)


class ObsContext:
    """One run's observability bundle: tracer + metrics + optional sinks.

    Attributes:
        tracer: The span tree builder; its sink is the JSONL log when one
            is attached.
        metrics: The run's metric registry.
        log: The JSONL trace writer, or ``None`` for in-memory-only
            observation.
        manifest_path: When set, ``run_acd`` writes its run manifest here
            (atomically) on completion.
        manifest_extra: Caller-supplied context merged into that manifest
            (the CLI stores the dataset fingerprint and CLI config here).
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        log: Optional[JsonlEventLog] = None,
        manifest_path: Optional[Union[str, Path]] = None,
    ):
        self.log = log
        self.tracer = tracer if tracer is not None else Tracer(
            sink=log.emit if log is not None else None
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.manifest_path = (
            Path(manifest_path) if manifest_path is not None else None
        )
        self.manifest_extra: Dict[str, Any] = {}

    @classmethod
    def to_path(cls, trace_path: Union[str, Path],
                manifest_path: Optional[Union[str, Path]] = None,
                ) -> "ObsContext":
        """An ObsContext streaming to a JSONL trace file.

        The manifest lands next to the trace
        (:func:`~repro.obs.manifest.default_manifest_path`) unless an
        explicit path is given.
        """
        log = JsonlEventLog(trace_path)
        if manifest_path is None:
            manifest_path = default_manifest_path(trace_path)
        return cls(log=log, manifest_path=manifest_path)

    # Convenience pass-throughs so instrumentation sites read naturally.

    def span(self, name: str, **attrs: Any):
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs: Any) -> None:
        self.tracer.event(name, **attrs)

    @property
    def trace_path(self) -> Optional[Path]:
        return self.log.path if self.log is not None else None

    def flush(self) -> None:
        if self.log is not None:
            self.log.flush()

    def close(self) -> None:
        if self.log is not None:
            self.log.close()

    def __enter__(self) -> "ObsContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
