"""Exporters: metrics to Prometheus text format, traces to summaries.

Two render targets for the observability layer's state:

- :func:`to_prometheus` — the standard text exposition format, so a
  scraper (or a human with ``curl``) can read a run's counters.
- :func:`summarize_trace` / :func:`format_trace_summary` — fold a JSONL
  trace back into per-phase wall-clock totals, event counts, and the
  per-round crowd batch table the paper's figures are built from.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Union

from repro.obs.events import read_events
from repro.obs.metrics import MetricsRegistry


def _format_value(value: float) -> str:
    """Prometheus sample value: integers render without a fraction."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _sanitize(name: str) -> str:
    return "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )


def to_prometheus(registry: MetricsRegistry, prefix: str = "repro_") -> str:
    """Render a registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for kind, name, instrument in registry.families():
        metric = prefix + _sanitize(name)
        if instrument.help:
            lines.append(f"# HELP {metric} {instrument.help}")
        lines.append(f"# TYPE {metric} {kind}")
        if kind == "histogram":
            cumulative = 0
            for bound, count in zip(instrument.bounds, instrument.counts):
                cumulative = count
                lines.append(
                    f'{metric}_bucket{{le="{_format_value(bound)}"}} '
                    f"{cumulative}"
                )
            lines.append(f'{metric}_bucket{{le="+Inf"}} {instrument.count}')
            lines.append(f"{metric}_sum {_format_value(instrument.sum)}")
            lines.append(f"{metric}_count {instrument.count}")
        else:
            lines.append(f"{metric} {_format_value(instrument.value)}")
    return "\n".join(lines) + "\n"


def summarize_trace(path: Union[str, Path]) -> Dict[str, Any]:
    """Aggregate a JSONL trace into a machine-readable summary.

    Returns::

        {
          "records": <total trace records>,
          "spans":  [{"name", "count", "total_s"}, ...],
          "events": {name: count, ...},
          "crowd_rounds": [{"iteration", "pairs"}, ...],
          "crowd_pairs_total": <sum of batch sizes>,
        }
    """
    spans: Dict[str, Dict[str, Any]] = {}
    span_order: List[str] = []
    events: Dict[str, int] = {}
    crowd_rounds: List[Dict[str, Any]] = []
    records = read_events(path)
    for record in records:
        kind = record.get("type")
        if kind == "span":
            name = record.get("name", "?")
            entry = spans.get(name)
            if entry is None:
                span_order.append(name)
                entry = spans[name] = {"name": name, "count": 0,
                                       "total_s": 0.0}
            entry["count"] += 1
            entry["total_s"] += float(record.get("duration_s") or 0.0)
        elif kind == "event":
            name = record.get("name", "?")
            events[name] = events.get(name, 0) + 1
            if name == "crowd.batch":
                attrs = record.get("attrs", {})
                crowd_rounds.append({
                    "iteration": attrs.get("iteration"),
                    "pairs": attrs.get("pairs", 0),
                })
    return {
        "records": len(records),
        "spans": [spans[name] for name in span_order],
        "events": dict(sorted(events.items())),
        "crowd_rounds": crowd_rounds,
        "crowd_pairs_total": sum(r["pairs"] or 0 for r in crowd_rounds),
    }


def format_trace_summary(summary: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`summarize_trace`'s output."""
    lines: List[str] = [f"trace records: {summary['records']}"]
    if summary["spans"]:
        lines.append("")
        lines.append("spans (wall-clock):")
        width = max(len(s["name"]) for s in summary["spans"])
        for span in summary["spans"]:
            lines.append(
                f"  {span['name']:<{width}}  x{span['count']:<4d} "
                f"{span['total_s']:.4f}s"
            )
    if summary["events"]:
        lines.append("")
        lines.append("events:")
        width = max(len(name) for name in summary["events"])
        for name, count in summary["events"].items():
            lines.append(f"  {name:<{width}}  {count}")
    if summary["crowd_rounds"]:
        lines.append("")
        lines.append(
            f"crowd rounds: {len(summary['crowd_rounds'])} "
            f"({summary['crowd_pairs_total']} pairs)"
        )
        for row in summary["crowd_rounds"]:
            lines.append(
                f"  iteration {row['iteration']}: {row['pairs']} pairs"
            )
    return "\n".join(lines)
