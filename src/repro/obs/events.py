"""Append-only JSONL trace log: one JSON object per line.

The writer is deliberately dumb — it serializes whatever record the
tracer hands it and appends one line.  Unlike the crowd answer journal
(:mod:`repro.crowd.persistence`), the trace log is *telemetry*, not a
recovery log: it is not fsynced per record, and a torn final line is
tolerated by the reader.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Union


class JsonlEventLog:
    """Writes trace records to ``path`` as JSON lines (truncates on open)."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._handle = open(self.path, "w", encoding="utf-8")
        self.records_written = 0

    def emit(self, record: Mapping[str, Any]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True,
                                      separators=(",", ":")) + "\n")
        self.records_written += 1

    def flush(self) -> None:
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlEventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_events(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load a JSONL trace back as a list of records.

    A torn (unterminated, unparseable) final line — a run killed
    mid-write — is silently dropped; garbage anywhere else raises.
    """
    records: List[Dict[str, Any]] = []
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            records.append(json.loads(stripped))
        except ValueError:
            if index == len(lines) - 1:
                break
            raise ValueError(
                f"{path}: malformed trace record on line {index + 1}"
            ) from None
    return records
