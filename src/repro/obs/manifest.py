"""Run manifests: one JSON document describing what a pipeline run *was*.

A manifest pins everything needed to interpret (or re-run) a traced
pipeline run: the command and config, every seed, a content fingerprint
of the dataset, the repository revision, the crowd-cost rollup, the
metrics registry snapshot, and the per-phase span totals.  It is written
atomically (temp file + ``os.replace``) next to the run's trace so a
crash can never leave a torn manifest.

The document shape is pinned by :data:`MANIFEST_SCHEMA` — a subset of
JSON Schema (``type`` / ``required`` / ``properties`` / ``items``) that
:func:`validate_manifest` enforces without third-party dependencies.
The same schema ships as ``docs/manifest.schema.json`` for external
tooling; a test keeps the two in sync.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.runtime.atomic import atomic_write_text as _atomic_write_text

MANIFEST_SCHEMA_VERSION = 1

MANIFEST_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["schema_version", "created_unix", "command", "config",
                 "seeds", "metrics", "stats", "spans"],
    "properties": {
        "schema_version": {"type": "integer"},
        "created_unix": {"type": "number"},
        "command": {"type": "string"},
        "git_revision": {"type": ["string", "null"]},
        "config": {
            "type": "object",
            # Shard-parallelism knobs, when the command records them.
            # Extra config keys are always allowed; these just pin the
            # types of the ones external tooling keys off.
            "properties": {
                "pivot_shards": {"type": "integer"},
                "pivot_processes": {"type": "integer"},
                "refine_shards": {"type": "integer"},
                "refine_processes": {"type": "integer"},
            },
        },
        "seeds": {"type": "object"},
        "dataset": {
            "type": ["object", "null"],
            "required": ["name", "records", "fingerprint"],
            "properties": {
                "name": {"type": "string"},
                "records": {"type": "integer"},
                "entities": {"type": "integer"},
                "fingerprint": {"type": "string"},
            },
        },
        "metrics": {
            "type": "object",
            "required": ["counters", "gauges", "histograms"],
            "properties": {
                "counters": {"type": "object"},
                "gauges": {"type": "object"},
                "histograms": {"type": "object"},
            },
        },
        "stats": {"type": "object"},
        "generation_stats": {"type": ["object", "null"]},
        "refinement_stats": {"type": ["object", "null"]},
        "spans": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "count", "total_s"],
                "properties": {
                    "name": {"type": "string"},
                    "count": {"type": "integer"},
                    "total_s": {"type": "number"},
                },
            },
        },
        "result": {"type": ["object", "null"]},
        "trace_path": {"type": ["string", "null"]},
    },
}

_TYPE_CHECKS = {
    "object": lambda value: isinstance(value, dict),
    "array": lambda value: isinstance(value, list),
    "string": lambda value: isinstance(value, str),
    "integer": lambda value: isinstance(value, int)
    and not isinstance(value, bool),
    "number": lambda value: isinstance(value, (int, float))
    and not isinstance(value, bool),
    "boolean": lambda value: isinstance(value, bool),
    "null": lambda value: value is None,
}


def _validate(instance: Any, schema: Mapping[str, Any], path: str,
              errors: List[str]) -> None:
    expected = schema.get("type")
    if expected is not None:
        allowed = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[kind](instance) for kind in allowed):
            errors.append(
                f"{path or '$'}: expected {' or '.join(allowed)}, "
                f"got {type(instance).__name__}"
            )
            return
    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                errors.append(f"{path or '$'}: missing required key {key!r}")
        for key, subschema in schema.get("properties", {}).items():
            if key in instance:
                _validate(instance[key], subschema, f"{path}.{key}", errors)
    if isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            _validate(item, schema["items"], f"{path}[{index}]", errors)


def validate_manifest(manifest: Any) -> List[str]:
    """Validate a manifest dict against :data:`MANIFEST_SCHEMA`.

    Returns a list of human-readable errors; empty means valid.
    """
    errors: List[str] = []
    _validate(manifest, MANIFEST_SCHEMA, "", errors)
    if not errors and manifest["schema_version"] != MANIFEST_SCHEMA_VERSION:
        errors.append(
            f"$.schema_version: expected {MANIFEST_SCHEMA_VERSION}, "
            f"got {manifest['schema_version']}"
        )
    return errors


def git_revision(start: Union[str, Path] = ".") -> Optional[str]:
    """Best-effort current commit hash, reading ``.git`` directly.

    Walks up from ``start`` to the nearest ``.git`` directory and follows
    ``HEAD`` one level of indirection; returns ``None`` outside a work
    tree (or on any read failure — provenance is best-effort, never a
    reason to fail a run).
    """
    try:
        directory = Path(start).resolve()
        for candidate in [directory, *directory.parents]:
            git_dir = candidate / ".git"
            if not git_dir.is_dir():
                continue
            head = (git_dir / "HEAD").read_text().strip()
            if head.startswith("ref:"):
                ref = head.split(None, 1)[1]
                ref_file = git_dir / ref
                if ref_file.exists():
                    return ref_file.read_text().strip()
                packed = git_dir / "packed-refs"
                if packed.exists():
                    for line in packed.read_text().splitlines():
                        if line.endswith(" " + ref):
                            return line.split()[0]
                return None
            return head or None
    except OSError:
        return None
    return None


def dataset_fingerprint(dataset) -> Dict[str, Any]:
    """A content fingerprint of a dataset: counts plus a stable digest.

    The digest covers record ids, texts, and the gold entity mapping, so
    two runs share a fingerprint iff they deduplicated the same inputs
    against the same ground truth.
    """
    digest = hashlib.sha256()
    for record in sorted(dataset.records, key=lambda r: r.record_id):
        digest.update(
            f"{record.record_id}\x1f{record.text}\x1e".encode("utf-8")
        )
    for record in sorted(dataset.records, key=lambda r: r.record_id):
        digest.update(
            f"{record.record_id}\x1f{dataset.gold.entity(record.record_id)}"
            "\x1e".encode("utf-8")
        )
    return {
        "name": dataset.name,
        "records": len(dataset.records),
        "entities": len(dataset.gold),
        "fingerprint": digest.hexdigest()[:16],
    }


def build_manifest(
    command: str,
    config: Mapping[str, Any],
    seeds: Mapping[str, Any],
    stats: Mapping[str, Any],
    metrics: Mapping[str, Any],
    spans: List[Dict[str, Any]],
    dataset: Optional[Mapping[str, Any]] = None,
    generation_stats: Optional[Mapping[str, Any]] = None,
    refinement_stats: Optional[Mapping[str, Any]] = None,
    result: Optional[Mapping[str, Any]] = None,
    trace_path: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Assemble a schema-valid manifest document."""
    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "created_unix": time.time(),
        "command": command,
        "git_revision": git_revision(),
        "config": dict(config),
        "seeds": dict(seeds),
        "dataset": dict(dataset) if dataset is not None else None,
        "metrics": dict(metrics),
        "stats": dict(stats),
        "generation_stats": (dict(generation_stats)
                             if generation_stats is not None else None),
        "refinement_stats": (dict(refinement_stats)
                             if refinement_stats is not None else None),
        "spans": list(spans),
        "result": dict(result) if result is not None else None,
        "trace_path": str(trace_path) if trace_path is not None else None,
    }


def write_manifest(path: Union[str, Path],
                   manifest: Mapping[str, Any]) -> Path:
    """Atomically write a manifest; validates first, raises on invalid."""
    errors = validate_manifest(dict(manifest))
    if errors:
        raise ValueError("refusing to write invalid manifest: "
                         + "; ".join(errors))
    target = Path(path)
    _atomic_write_text(target, json.dumps(manifest, indent=2,
                                          sort_keys=True) + "\n")
    return target


def load_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a manifest back; raises ``ValueError`` if it fails validation."""
    manifest = json.loads(Path(path).read_text(encoding="utf-8"))
    errors = validate_manifest(manifest)
    if errors:
        raise ValueError(f"{path}: invalid manifest: " + "; ".join(errors))
    return manifest


def default_manifest_path(trace_path: Union[str, Path]) -> Path:
    """The manifest's conventional home next to a trace file.

    ``run.trace.jsonl`` -> ``run.trace.manifest.json`` (a trailing
    ``.jsonl``/``.json`` suffix is replaced; anything else is appended
    to).
    """
    trace = Path(trace_path)
    if trace.suffix in (".jsonl", ".json"):
        return trace.with_suffix(".manifest.json")
    return trace.with_name(trace.name + ".manifest.json")
