"""Trace spans: a lightweight wall-clock span tree plus point events.

A :class:`Tracer` records what the pipeline *did*: phases open
:class:`Span`\\ s (nested, timed with :func:`time.perf_counter`), and
decision points emit flat *events* attached to the innermost open span.
Every finished span and every event is also forwarded to an optional
``sink`` callable — the hook the JSONL trace writer plugs into — as a
plain JSON-serializable dict.

Tracing is **off by default** everywhere in the pipeline: instrumentation
sites take an optional observability context and do nothing when it is
``None``, so the disabled path allocates nothing and the pipeline output
is byte-identical to an uninstrumented run (the same null-model
discipline the fault-injection layer uses).  For library users who want
an always-valid tracer object, :data:`NULL_TRACER` accepts the full API
at near-zero cost.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

Sink = Callable[[Dict[str, Any]], None]


class Span:
    """One timed, attributed node of the trace tree."""

    __slots__ = ("name", "attrs", "children", "events",
                 "started_unix", "duration_s", "_start")

    def __init__(self, name: str, attrs: Dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.children: List["Span"] = []
        self.events: List[Dict[str, Any]] = []
        self.started_unix = time.time()
        self.duration_s: Optional[float] = None
        self._start = time.perf_counter()

    @property
    def finished(self) -> bool:
        return self.duration_s is not None

    def set_attr(self, key: str, value: Any) -> None:
        """Attach/overwrite one attribute (e.g. a count known only at exit)."""
        self.attrs[key] = value

    def to_dict(self) -> Dict[str, Any]:
        """Nested plain-dict view (children included) for JSON export."""
        return {
            "name": self.name,
            "started_unix": self.started_unix,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
            "events": list(self.events),
            "children": [child.to_dict() for child in self.children],
        }


class _SpanContext:
    """Context manager opening/closing one span on a tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._finish(self._span, error=exc_type is not None)
        return False


class Tracer:
    """Collects a span tree and forwards closed spans/events to a sink.

    Not thread-safe by design: one tracer instruments one pipeline run.
    """

    enabled = True

    def __init__(self, sink: Optional[Sink] = None):
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._sink = sink

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a child span of the innermost open span (``with`` block)."""
        span = Span(name, attrs)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def event(self, name: str, **attrs: Any) -> Dict[str, Any]:
        """Record one point event under the innermost open span."""
        record: Dict[str, Any] = {
            "type": "event",
            "name": name,
            "ts_unix": time.time(),
            "span": self._stack[-1].name if self._stack else None,
            "attrs": attrs,
        }
        if self._stack:
            self._stack[-1].events.append(
                {"name": name, "ts_unix": record["ts_unix"], "attrs": attrs}
            )
        if self._sink is not None:
            self._sink(record)
        return record

    def _finish(self, span: Span, error: bool = False) -> None:
        span.duration_s = time.perf_counter() - span._start
        if error:
            span.attrs.setdefault("error", True)
        depth = len(self._stack) - 1
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        else:  # pragma: no cover - misuse guard (out-of-order exit)
            self._stack = [s for s in self._stack if s is not span]
        if self._sink is not None:
            self._sink({
                "type": "span",
                "name": span.name,
                "depth": depth,
                "started_unix": span.started_unix,
                "duration_s": span.duration_s,
                "attrs": dict(span.attrs),
            })

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def span_summaries(self) -> List[Dict[str, Any]]:
        """Flat per-name rollup of the finished span tree.

        Each entry: ``{"name", "count", "total_s"}`` — the manifest's
        phase table.  Depth-first order of first occurrence.
        """
        order: List[str] = []
        totals: Dict[str, Dict[str, Any]] = {}

        def visit(span: Span) -> None:
            entry = totals.get(span.name)
            if entry is None:
                order.append(span.name)
                entry = totals[span.name] = {
                    "name": span.name, "count": 0, "total_s": 0.0,
                }
            entry["count"] += 1
            entry["total_s"] += span.duration_s or 0.0
            for child in span.children:
                visit(child)

        for root in self.roots:
            visit(root)
        return [totals[name] for name in order]


class _NullSpan:
    """A reusable no-op span/context-manager (shared singleton)."""

    __slots__ = ()
    name = ""
    attrs: Dict[str, Any] = {}
    duration_s = None
    finished = False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """API-compatible tracer that records nothing and allocates nothing.

    ``span`` always returns the same shared null span; ``event`` is a
    no-op.  The pipeline's own instrumentation guards on the
    observability context being ``None`` instead, but library users can
    pass :data:`NULL_TRACER` wherever a tracer is required.
    """

    __slots__ = ()
    enabled = False
    roots: List[Span] = []
    current = None

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def span_summaries(self) -> List[Dict[str, Any]]:
        return []


NULL_TRACER = NullTracer()
