"""Dataset registry: generate any of the paper's three datasets by name.

Beyond the paper's trio, the registry also serves the synthetic
``largescale`` population (10k-1M records; see
:mod:`repro.datasets.largescale`) used by the scale benchmark —
:func:`extended_dataset_names` lists it, while :func:`dataset_names`
stays pinned to the paper's presentation set.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.datasets.largescale import generate_largescale
from repro.datasets.paper import generate_paper
from repro.datasets.product import generate_product
from repro.datasets.restaurant import generate_restaurant
from repro.datasets.schema import Dataset

_GENERATORS: Dict[str, Callable[..., Dataset]] = {
    "paper": generate_paper,
    "restaurant": generate_restaurant,
    "product": generate_product,
    "largescale": generate_largescale,
}


def dataset_names() -> List[str]:
    """The paper's dataset names, in its presentation order."""
    return ["paper", "restaurant", "product"]


def extended_dataset_names() -> List[str]:
    """Every generatable dataset: the paper's trio plus synthetics."""
    return dataset_names() + ["largescale"]


def generate(name: str, scale: float = 1.0, seed: int = 0,
             **kwargs) -> Dataset:
    """Generate a dataset by name.

    Args:
        name: One of :func:`dataset_names`.
        scale: Size multiplier (1.0 reproduces Table 3 counts).
        seed: Generator seed.
        **kwargs: Generator-specific knobs, forwarded verbatim (e.g.
            ``largescale``'s ``confusion``).

    Raises:
        KeyError: For an unknown dataset name.
        TypeError: For a knob the named generator does not take.
    """
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        ) from None
    return generator(scale=scale, seed=seed, **kwargs)
