"""Dataset registry: generate any of the paper's three datasets by name."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.datasets.paper import generate_paper
from repro.datasets.product import generate_product
from repro.datasets.restaurant import generate_restaurant
from repro.datasets.schema import Dataset

_GENERATORS: Dict[str, Callable[..., Dataset]] = {
    "paper": generate_paper,
    "restaurant": generate_restaurant,
    "product": generate_product,
}


def dataset_names() -> List[str]:
    """The registered dataset names, in the paper's presentation order."""
    return ["paper", "restaurant", "product"]


def generate(name: str, scale: float = 1.0, seed: int = 0) -> Dataset:
    """Generate a dataset by name.

    Args:
        name: One of :func:`dataset_names`.
        scale: Size multiplier (1.0 reproduces Table 3 counts).
        seed: Generator seed.

    Raises:
        KeyError: For an unknown dataset name.
    """
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        ) from None
    return generator(scale=scale, seed=seed)
