"""The *Largescale* synthetic dataset generator (10k-1M records).

The paper's three datasets top out at a few thousand records; the scale
benchmark (``benchmarks/bench_scale.py``) needs populations two to three
orders of magnitude larger with a candidate graph that stays *linear* in
the record count.  Two design choices make that possible:

Blocked Zipf clustering
    Applying :func:`~repro.datasets.synthetic.zipf_cluster_sizes` to a
    million records at once concentrates a large fraction of them in a few
    head entities, whose within-cluster pair counts grow quadratically —
    a 100k-record entity alone contributes ~5 billion duplicate pairs.
    Real dedup corpora do not look like that, and no join could survive
    it.  Instead the Zipf skew is applied *within bounded blocks* of
    :data:`BLOCK_RECORDS` records: every block is a miniature Zipf world
    (a few entities with a dozen-odd mentions, many singletons), so the
    global cluster-size distribution keeps the Zipf shape while the
    largest cluster — and with it the candidate graph — stays bounded.

Unique-heavy token profile
    Each entity's description is :data:`UNIQUE_TOKENS_PER_ENTITY` tokens
    synthesized uniquely for that entity plus :data:`SHARED_TOKENS_PER_ENTITY`
    drawn from a small shared vocabulary (cities, categories — the realistic
    "common word" background).  Under the canonical rare-first token order
    the unique tokens (document frequency = cluster size) fill the join
    prefixes, while the high-frequency shared tokens fall outside them —
    posting lists stay cluster-sized and candidate generation stays linear.

Confusion knob (refinement difficulty)
    By default the unique tokens separate entities so cleanly that the
    generation phase already lands on the gold clustering and the refine
    phase has nothing to do — useless for benchmarking refinement.  The
    ``confusion`` knob makes a fraction of entities *borrow* most of
    their unique tokens from the previous entity in the same block
    (over-merge pressure: their mentions look like the neighbor's) and
    doubles those mentions' token-drop noise (under-merge pressure:
    the confused entity's own mentions drift apart).  ``confusion=0.0``
    is byte-identical to the pre-knob generator.
"""

from __future__ import annotations

import random
import string
from typing import Dict, List

from repro.datasets.schema import Dataset, GoldStandard, Record
from repro.datasets.synthetic import noisy_variant, zipf_cluster_sizes

#: Records per Zipf block — bounds the largest cluster (and the quadratic
#: within-cluster pair count) independently of the total dataset size.
BLOCK_RECORDS = 256

#: Fraction of a block's records that are distinct entities (~1.4 records
#: per entity on average; the Zipf skew concentrates the duplicates).
ENTITY_FRACTION = 0.7

#: Tokens synthesized uniquely per entity (document frequency = cluster
#: size; these dominate the rare-first join prefixes).
UNIQUE_TOKENS_PER_ENTITY = 5

#: Tokens drawn from the shared vocabulary per entity (high document
#: frequency; realistic common-word background, outside the prefixes).
SHARED_TOKENS_PER_ENTITY = 2

#: Shared vocabulary size.  Small enough that shared tokens are frequent
#: (frequent tokens sort last canonically), large enough for variety.
SHARED_VOCABULARY = 512

#: Records at ``scale=1.0``; the benchmark tiers are scale 1 / 10 / 100.
BASE_RECORDS = 10_000

#: Unique tokens a confused entity borrows from its predecessor (of its
#: :data:`UNIQUE_TOKENS_PER_ENTITY`) — enough token overlap to pull the
#: two entities into one candidate component.
CONFUSED_BORROWED_TOKENS = 3

#: Token-drop rate for a confused entity's mentions (doubled from the
#: baseline 0.06): its own mentions drift apart, creating under-merge
#: work for the refine phase alongside the over-merge pressure.
CONFUSED_DROP_RATE = 0.12

_LETTERS = string.ascii_lowercase


def _unique_token(counter: int) -> str:
    """A deterministic, collision-free pseudo-word for one unique-token
    slot (base-26 over letters, 'q'-prefixed so it never collides with the
    shared vocabulary)."""
    encoded = []
    value = counter
    while True:
        encoded.append(_LETTERS[value % 26])
        value //= 26
        if value == 0:
            break
    return "q" + "".join(reversed(encoded))


def _shared_vocabulary(rng: random.Random) -> List[str]:
    """The common-word background pool (6-9 letter pseudo-words)."""
    pool: List[str] = []
    seen = set()
    while len(pool) < SHARED_VOCABULARY:
        word = "".join(rng.choice(_LETTERS)
                       for _ in range(rng.randint(6, 9)))
        if word not in seen and not word.startswith("q"):
            seen.add(word)
            pool.append(word)
    return pool


def generate_largescale(scale: float = 1.0, seed: int = 0,
                        confusion: float = 0.0) -> Dataset:
    """Generate the Largescale dataset.

    Args:
        scale: Multiplies :data:`BASE_RECORDS` (1.0 = 10k records, 10.0 =
            100k, 100.0 = 1M).
        seed: Generator seed.
        confusion: Probability that an entity is *confused* with its
            predecessor — borrowing :data:`CONFUSED_BORROWED_TOKENS` of
            its unique tokens (over-merge pressure) and doubling its
            mentions' token-drop noise to :data:`CONFUSED_DROP_RATE`
            (under-merge pressure) — so the refine phase has real work.
            ``0.0`` (the default) is byte-identical to the knob-free
            generator.

    Returns:
        A :class:`~repro.datasets.schema.Dataset` named ``"largescale"``.
    """
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    if not 0.0 <= confusion <= 1.0:
        raise ValueError(f"confusion must be in [0, 1], got {confusion}")
    rng = random.Random(seed)
    num_records = max(2, round(BASE_RECORDS * scale))
    shared_pool = _shared_vocabulary(rng)

    records: List[Record] = []
    entity_of: Dict[int, int] = {}
    record_id = 0
    entity_id = 0
    unique_counter = 0
    remaining = num_records
    while remaining > 0:
        block_records = min(BLOCK_RECORDS, remaining)
        remaining -= block_records
        block_entities = max(1, min(block_records,
                                    round(block_records * ENTITY_FRACTION)))
        prev_unique: List[str] = []
        for size in zipf_cluster_sizes(block_records, block_entities, rng):
            unique = [_unique_token(unique_counter + slot)
                      for slot in range(UNIQUE_TOKENS_PER_ENTITY)]
            unique_counter += UNIQUE_TOKENS_PER_ENTITY
            # Short-circuit keeps the RNG stream untouched at 0.0, so the
            # knob-free output is byte-identical across versions.
            confused = (confusion > 0.0 and bool(prev_unique)
                        and rng.random() < confusion)
            if confused:
                unique[:CONFUSED_BORROWED_TOKENS] = (
                    prev_unique[:CONFUSED_BORROWED_TOKENS])
            shared = rng.sample(shared_pool, SHARED_TOKENS_PER_ENTITY)
            canonical = " ".join(unique + shared)
            drop_rate = CONFUSED_DROP_RATE if confused else 0.06
            for _ in range(size):
                text = noisy_variant(
                    canonical, rng,
                    typo_rate=0.05, drop_rate=drop_rate,
                    abbreviate_rate=0.02, shuffle_probability=0.2,
                )
                records.append(Record(record_id=record_id, text=text))
                entity_of[record_id] = entity_id
                record_id += 1
            entity_id += 1
            prev_unique = unique

    return Dataset(
        name="largescale", records=records, gold=GoldStandard(entity_of)
    )
