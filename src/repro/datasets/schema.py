"""Record model and gold-standard entity mapping.

The deduplication problem operates on a set of *records* ``R``; the gold
standard is the (usually hidden) function ``g`` mapping each record to the
real-world entity it represents (Section 2.1 of the paper).  This module
provides both as small, explicit value objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Set, Tuple


@dataclass(frozen=True)
class Record:
    """A single record to be deduplicated.

    Attributes:
        record_id: Unique integer identifier within a dataset.
        text: The textual representation shown to crowd workers and fed to
            machine similarity functions.
        fields: Optional structured fields (e.g. ``{"name": ..., "city": ...}``)
            used by field-aware similarity metrics.
    """

    record_id: int
    text: str
    fields: Tuple[Tuple[str, str], ...] = ()

    def field(self, name: str, default: str = "") -> str:
        """Return a structured field value, or ``default`` if absent."""
        for key, value in self.fields:
            if key == name:
                return value
        return default

    @staticmethod
    def make(record_id: int, text: str, fields: Optional[Mapping[str, str]] = None) -> "Record":
        """Build a record from a mapping of fields (convenience constructor)."""
        items = tuple(sorted(fields.items())) if fields else ()
        return Record(record_id=record_id, text=text, fields=items)


def canonical_pair(a: int, b: int) -> Tuple[int, int]:
    """Return the canonical (sorted) form of an unordered record-id pair.

    All pair-keyed maps in the library (crowd answers, similarity caches,
    candidate sets) use this canonical form so that ``(i, j)`` and ``(j, i)``
    always refer to the same pair.
    """
    if a == b:
        raise ValueError(f"a record pair needs two distinct records, got ({a}, {b})")
    return (a, b) if a < b else (b, a)


class GoldStandard:
    """The ground-truth mapping ``g`` from records to entities.

    Used (a) by the simulated crowd to decide whether a worker *should*
    answer "duplicate", and (b) by the evaluation metrics.  The algorithms
    under test never see this object directly.
    """

    def __init__(self, entity_of: Mapping[int, int]):
        """Args:
        entity_of: Maps each record id to an opaque entity id.
        """
        self._entity_of: Dict[int, int] = dict(entity_of)
        clusters: Dict[int, Set[int]] = {}
        for record_id, entity_id in self._entity_of.items():
            clusters.setdefault(entity_id, set()).add(record_id)
        self._clusters: Dict[int, FrozenSet[int]] = {
            entity: frozenset(members) for entity, members in clusters.items()
        }

    def __len__(self) -> int:
        return len(self._entity_of)

    def __contains__(self, record_id: int) -> bool:
        return record_id in self._entity_of

    def entity(self, record_id: int) -> int:
        """Return the entity id of a record."""
        return self._entity_of[record_id]

    def is_duplicate(self, a: int, b: int) -> bool:
        """True iff records ``a`` and ``b`` represent the same entity."""
        return self._entity_of[a] == self._entity_of[b]

    @property
    def record_ids(self) -> Iterable[int]:
        return self._entity_of.keys()

    @property
    def num_entities(self) -> int:
        return len(self._clusters)

    def entity_members(self, entity_id: int) -> FrozenSet[int]:
        """Return the set of record ids belonging to one entity."""
        return self._clusters[entity_id]

    def clusters(self) -> List[FrozenSet[int]]:
        """Return the gold clustering as a list of frozensets of record ids."""
        return list(self._clusters.values())

    def duplicate_pairs(self) -> Iterator[Tuple[int, int]]:
        """Yield every unordered pair of records that are true duplicates."""
        for members in self._clusters.values():
            ordered = sorted(members)
            for i, a in enumerate(ordered):
                for b in ordered[i + 1:]:
                    yield (a, b)

    def num_duplicate_pairs(self) -> int:
        """Number of true duplicate pairs (sum of C(|cluster|, 2))."""
        return sum(
            len(members) * (len(members) - 1) // 2 for members in self._clusters.values()
        )


@dataclass
class Dataset:
    """A dataset bundle: records plus their gold standard.

    Attributes:
        name: Human-readable dataset name (e.g. ``"paper"``).
        records: The records, indexed by position; ids are unique.
        gold: Ground-truth entity mapping for all records.
    """

    name: str
    records: List[Record]
    gold: GoldStandard
    _by_id: Dict[int, Record] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._by_id = {record.record_id: record for record in self.records}
        if len(self._by_id) != len(self.records):
            raise ValueError(f"dataset {self.name!r} has duplicate record ids")
        missing = [r.record_id for r in self.records if r.record_id not in self.gold]
        if missing:
            raise ValueError(
                f"dataset {self.name!r}: {len(missing)} records missing from gold standard"
            )

    def __len__(self) -> int:
        return len(self.records)

    def record(self, record_id: int) -> Record:
        """Look up a record by id."""
        return self._by_id[record_id]

    @property
    def record_ids(self) -> List[int]:
        return [record.record_id for record in self.records]

    @property
    def num_entities(self) -> int:
        return self.gold.num_entities

    def summary(self) -> Dict[str, int]:
        """Table-3-style summary: record and entity counts."""
        return {
            "records": len(self.records),
            "entities": self.gold.num_entities,
            "duplicate_pairs": self.gold.num_duplicate_pairs(),
        }
