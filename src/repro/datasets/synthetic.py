"""Noise channels for synthetic dedup datasets.

Real dedup benchmarks are messy in specific ways: character typos, dropped
or abbreviated tokens, reordered fields, formatting variants.  The paper's
three datasets are not redistributable here, so the generators in this
package synthesize datasets with the same *shape* (record/entity counts,
candidate-graph density, hardness) by composing these noise channels over
clean entity descriptions.  All randomness flows through an explicit
``random.Random`` for reproducibility.
"""

from __future__ import annotations

import random
import string
from typing import List, Sequence

_ALPHABET = string.ascii_lowercase


def typo(word: str, rng: random.Random) -> str:
    """Apply one random character-level edit (swap/delete/insert/replace)."""
    if not word:
        return word
    kind = rng.choice(("swap", "delete", "insert", "replace"))
    position = rng.randrange(len(word))
    if kind == "swap" and len(word) >= 2:
        position = min(position, len(word) - 2)
        chars = list(word)
        chars[position], chars[position + 1] = chars[position + 1], chars[position]
        return "".join(chars)
    if kind == "delete" and len(word) >= 2:
        return word[:position] + word[position + 1:]
    if kind == "insert":
        return word[:position] + rng.choice(_ALPHABET) + word[position:]
    return word[:position] + rng.choice(_ALPHABET) + word[position + 1:]


def corrupt_words(words: Sequence[str], rng: random.Random,
                  typo_rate: float = 0.1) -> List[str]:
    """Independently typo each word with probability ``typo_rate``."""
    return [typo(word, rng) if rng.random() < typo_rate else word
            for word in words]


def drop_words(words: Sequence[str], rng: random.Random,
               drop_rate: float = 0.1, keep_at_least: int = 1) -> List[str]:
    """Drop words independently, keeping at least ``keep_at_least``."""
    kept = [word for word in words if rng.random() >= drop_rate]
    if len(kept) < keep_at_least:
        kept = list(words[:keep_at_least])
    return kept


def abbreviate(word: str, rng: random.Random) -> str:
    """Abbreviate a word: initial ('proceedings' -> 'p') or clipped prefix
    ('international' -> 'intl'-style truncation)."""
    if len(word) <= 3:
        return word
    if rng.random() < 0.5:
        return word[0]
    cut = rng.randint(3, max(3, len(word) - 1))
    return word[:cut]


def abbreviate_words(words: Sequence[str], rng: random.Random,
                     rate: float = 0.1) -> List[str]:
    """Abbreviate words independently with probability ``rate``."""
    return [abbreviate(word, rng) if rng.random() < rate else word
            for word in words]


def shuffle_some(words: Sequence[str], rng: random.Random,
                 probability: float = 0.2) -> List[str]:
    """With the given probability, lightly permute the word order (one
    random adjacent transposition), else keep order."""
    result = list(words)
    if len(result) >= 2 and rng.random() < probability:
        position = rng.randrange(len(result) - 1)
        result[position], result[position + 1] = (
            result[position + 1], result[position]
        )
    return result


def noisy_variant(
    text: str,
    rng: random.Random,
    typo_rate: float = 0.08,
    drop_rate: float = 0.08,
    abbreviate_rate: float = 0.05,
    shuffle_probability: float = 0.15,
) -> str:
    """A full noisy rendering of a clean description: drop, abbreviate,
    typo, reorder — the composition used by all dataset generators."""
    words = text.split()
    words = drop_words(words, rng, drop_rate=drop_rate)
    words = abbreviate_words(words, rng, rate=abbreviate_rate)
    words = corrupt_words(words, rng, typo_rate=typo_rate)
    words = shuffle_some(words, rng, probability=shuffle_probability)
    return " ".join(words)


def zipf_cluster_sizes(num_records: int, num_entities: int,
                       rng: random.Random, skew: float = 1.2) -> List[int]:
    """Partition ``num_records`` into ``num_entities`` positive cluster
    sizes with a Zipf-like skew (a few big entities, many small ones).

    The sizes sum exactly to ``num_records``.
    """
    if num_entities < 1:
        raise ValueError(f"num_entities must be >= 1, got {num_entities}")
    if num_records < num_entities:
        raise ValueError(
            f"need at least one record per entity: {num_records} records, "
            f"{num_entities} entities"
        )
    weights = [1.0 / (rank ** skew) for rank in range(1, num_entities + 1)]
    rng.shuffle(weights)
    total_weight = sum(weights)
    extra = num_records - num_entities
    sizes = [1] * num_entities
    # Apportion the extra records proportionally, then distribute remainders.
    fractions = []
    assigned = 0
    for index, weight in enumerate(weights):
        share = extra * weight / total_weight
        whole = int(share)
        sizes[index] += whole
        assigned += whole
        fractions.append((share - whole, index))
    fractions.sort(reverse=True)
    for _, index in fractions[: extra - assigned]:
        sizes[index] += 1
    return sizes
