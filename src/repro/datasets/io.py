"""CSV import/export for datasets.

The synthetic generators cover the paper's experiments, but a downstream
user's first question is "how do I run this on *my* records?".  The format
is a plain CSV with a header::

    record_id,entity_id,text[,field1,field2,...]

``entity_id`` is the gold label (required for evaluation and for simulating
a crowd; when deduplicating truly unlabelled data, run the algorithms
directly against a live crowd client instead).  Extra columns become
structured :class:`Record` fields.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Union

from repro.datasets.schema import Dataset, GoldStandard, Record

REQUIRED_COLUMNS = ("record_id", "entity_id", "text")


def save_dataset(dataset: Dataset, path: Union[str, Path]) -> int:
    """Write a dataset to CSV; returns the number of records written.

    All structured field names present on any record become columns.
    """
    field_names: List[str] = []
    seen = set()
    for record in dataset.records:
        for name, _ in record.fields:
            if name not in seen:
                seen.add(name)
                field_names.append(name)

    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(REQUIRED_COLUMNS) + field_names)
        for record in dataset.records:
            row = [
                record.record_id,
                dataset.gold.entity(record.record_id),
                record.text,
            ]
            row.extend(record.field(name) for name in field_names)
            writer.writerow(row)
    return len(dataset.records)


def load_dataset(path: Union[str, Path], name: str = "") -> Dataset:
    """Read a dataset from CSV.

    Args:
        path: Source file (format per the module docstring).
        name: Dataset name; defaults to the file stem.

    Raises:
        ValueError: On missing required columns, duplicate record ids, or
            unparsable ids.
    """
    path = Path(path)
    records: List[Record] = []
    entity_of: Dict[int, int] = {}
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        header = reader.fieldnames or []
        missing = [col for col in REQUIRED_COLUMNS if col not in header]
        if missing:
            raise ValueError(f"{path}: missing required columns {missing}")
        field_names = [col for col in header if col not in REQUIRED_COLUMNS]
        for line, row in enumerate(reader, start=2):
            try:
                record_id = int(row["record_id"])
                entity_id = int(row["entity_id"])
            except (TypeError, ValueError):
                raise ValueError(
                    f"{path}:{line}: record_id and entity_id must be integers"
                ) from None
            if record_id in entity_of:
                raise ValueError(f"{path}:{line}: duplicate record_id {record_id}")
            fields = {
                column: row[column]
                for column in field_names
                if row.get(column)
            }
            records.append(Record.make(record_id, row["text"] or "", fields))
            entity_of[record_id] = entity_id
    if not records:
        raise ValueError(f"{path}: no records")
    return Dataset(
        name=name or path.stem,
        records=records,
        gold=GoldStandard(entity_of),
    )
