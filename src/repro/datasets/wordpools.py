"""Shared vocabulary pools for the synthetic dataset generators.

The pools are intentionally small: reusing surnames, topic words, street
names, and brand lines across entities is what creates the confusable
cross-entity record pairs that make deduplication hard (the Chevrolet /
Chevron effect the paper opens with).
"""

from __future__ import annotations

SURNAMES = [
    "smith", "johnson", "lee", "wang", "garcia", "kumar", "chen", "mueller",
    "kim", "tanaka", "rossi", "novak", "silva", "haddad", "jones", "brown",
    "davis", "miller", "wilson", "moore", "taylor", "anderson", "thomas",
    "jackson", "white", "harris", "martin", "thompson", "martinez", "clark",
]

FIRST_INITIALS = list("abcdefghijklmnopqrstuvwy")

TOPIC_WORDS = [
    "learning", "databases", "clustering", "networks", "optimization",
    "inference", "queries", "graphs", "streams", "indexing", "sampling",
    "entity", "resolution", "integration", "crowdsourcing", "parallel",
    "distributed", "approximate", "adaptive", "scalable", "efficient",
    "probabilistic", "semantics", "mining", "retrieval", "systems",
    "transactions", "storage", "privacy", "ranking",
]

VENUES = [
    "sigmod", "vldb", "icde", "kdd", "www", "nips", "icml", "cikm",
    "edbt", "pods", "sigir", "aaai",
]

VENUE_STYLES = [
    "proceedings of the {ord} {venue} conference",
    "proc {venue}",
    "{venue}",
    "in {venue} proceedings",
    "{venue} conf",
]

ORDINALS = [
    "first", "second", "third", "fourth", "fifth", "tenth", "twelfth",
    "fifteenth", "twentieth", "annual", "international",
]

CUISINES = [
    "italian", "french", "japanese", "mexican", "thai", "indian", "chinese",
    "american", "seafood", "steakhouse", "vegetarian", "mediterranean",
]

RESTAURANT_HEADS = [
    "cafe", "bistro", "grill", "kitchen", "house", "garden", "palace",
    "corner", "table", "room", "tavern", "diner",
]

RESTAURANT_NAMES = [
    "golden", "blue", "silver", "royal", "little", "grand", "old", "new",
    "red", "green", "lucky", "happy", "sunset", "harbor", "spring", "union",
    "liberty", "central", "pacific", "atlantic",
]

STREETS = [
    "main st", "oak ave", "park blvd", "market st", "broadway", "elm st",
    "sunset blvd", "lake dr", "hill rd", "river rd", "union sq", "5th ave",
    "2nd st", "grand ave", "washington st", "mission st",
]

CITIES = [
    "new york", "los angeles", "san francisco", "chicago", "atlanta",
    "boston", "seattle", "austin", "denver", "miami", "portland", "dallas",
]

BRANDS = [
    "sonic", "nova", "apex", "zenith", "orion", "vertex", "atlas", "lumen",
    "pulse", "aero", "titan", "delta", "omega", "prime", "echo", "quanta",
]

PRODUCT_LINES = [
    "speaker", "headphones", "monitor", "keyboard", "camera", "router",
    "printer", "charger", "tablet", "drive", "projector", "microphone",
    "soundbar", "webcam", "adapter", "dock",
]

PRODUCT_QUALIFIERS = [
    "wireless", "bluetooth", "portable", "compact", "pro", "ultra", "mini",
    "hd", "4k", "gaming", "studio", "travel", "slim", "premium",
]

PRODUCT_SPECS = [
    "black", "white", "silver", "32gb", "64gb", "128gb", "1080p", "dual",
    "rechargeable", "bundle", "kit", "refurbished", "edition",
]
