"""The *Product* dataset generator (Abt-Buy-like product titles).

Table 3 shape at scale 1.0: 3,073 records over 1,076 entities, but a very
*sparse* candidate graph (≈3.2k pairs — about one per record): product titles
from different vendors describe the same item with largely different words,
and distinct products rarely share enough tokens to clear τ.  Crowd accuracy
sits between Paper and Restaurant (9 % / 5 %).  The generator reproduces this
with distinctive brand+model tokens (which drive the true-pair similarity)
plus vendor-specific qualifier noise (which keeps overall token overlap low).
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.datasets.poolgen import expand_pool, scaled_size
from repro.datasets.schema import Dataset, GoldStandard, Record
from repro.datasets.synthetic import noisy_variant
from repro.datasets import wordpools

BASE_ENTITIES = 1076
BASE_RECORDS = 3073


class _Pools:
    """Brand/line vocabularies sized with the sqrt of the scale so that
    distinct products rarely collide above τ — keeping the candidate graph
    at the real dataset's ~1 pair per record."""

    def __init__(self, scale: float, rng: random.Random):
        self.brands = expand_pool(
            wordpools.BRANDS, scaled_size(80, scale), rng
        )
        self.lines = expand_pool(
            wordpools.PRODUCT_LINES, scaled_size(48, scale), rng
        )


def _make_product(rng: random.Random, pools: _Pools) -> str:
    brand = rng.choice(pools.brands)
    line = rng.choice(pools.lines)
    model = f"{rng.choice('abcdefghjkmnpqrstvwxz')}{rng.randint(100, 9999)}"
    return f"{brand} {line} {model}"


def _vendor_listing(core: str, rng: random.Random) -> str:
    """One vendor's rendering: the core identity plus vendor-specific
    qualifiers and specs that *don't* reliably overlap across vendors."""
    qualifiers = rng.sample(wordpools.PRODUCT_QUALIFIERS, k=1)
    specs = rng.sample(wordpools.PRODUCT_SPECS, k=rng.randint(0, 1))
    listing = f"{core} {' '.join(qualifiers)} {' '.join(specs)}".strip()
    return noisy_variant(
        listing, rng,
        typo_rate=0.02, drop_rate=0.03,
        abbreviate_rate=0.02, shuffle_probability=0.10,
    )


def generate_product(scale: float = 1.0, seed: int = 0) -> Dataset:
    """Generate the Product dataset.

    Args:
        scale: Multiplies the entity and record counts (1.0 = Table 3 size).
        seed: Generator seed.

    Returns:
        A :class:`~repro.datasets.schema.Dataset` named ``"product"``.
    """
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    rng = random.Random(seed)
    num_entities = max(2, round(BASE_ENTITIES * scale))
    num_records_target = max(num_entities, round(BASE_RECORDS * scale))

    pools = _Pools(scale, rng)
    records: List[Record] = []
    entity_of: Dict[int, int] = {}
    record_id = 0
    remaining = num_records_target
    for entity_id in range(num_entities):
        remaining_entities = num_entities - entity_id
        # Keep exactly enough records for one per remaining entity.
        max_copies = max(1, remaining - (remaining_entities - 1))
        copies = min(rng.choice((1, 2, 3, 3, 4)), max_copies)
        core = _make_product(rng, pools)
        for _ in range(copies):
            records.append(
                Record(record_id=record_id, text=_vendor_listing(core, rng))
            )
            entity_of[record_id] = entity_id
            record_id += 1
        remaining -= copies

    return Dataset(name="product", records=records, gold=GoldStandard(entity_of))
