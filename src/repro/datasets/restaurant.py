"""The *Restaurant* dataset generator (Fodors-Zagat-like listings).

Table 3 shape at scale 1.0: 858 records over 752 entities — i.e. mostly
singletons plus ~106 entities listed twice (once per guide), a moderate
candidate graph (≈4.8k pairs, restaurants in the same city share address and
cuisine tokens), and a very *easy* crowd workload (0.8 % error at 3 workers):
the two listings of one restaurant are near-identical, and different
restaurants are clearly different.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.datasets.poolgen import expand_pool, scaled_size
from repro.datasets.schema import Dataset, GoldStandard, Record
from repro.datasets.synthetic import noisy_variant
from repro.datasets import wordpools

BASE_ENTITIES = 752
BASE_RECORDS = 858


class _Pools:
    """Vocabulary pools sized so the candidate density stays at the real
    dataset's ~5.6 pairs per record at every scale (sqrt-of-scale growth:
    short listings over narrow pools make distinct restaurants share
    street/cuisine/name tokens — pairs that are nevertheless easy for the
    crowd to tell apart)."""

    def __init__(self, scale: float, rng: random.Random):
        self.names = expand_pool(
            wordpools.RESTAURANT_NAMES, scaled_size(19, scale), rng
        )
        self.heads = expand_pool(
            wordpools.RESTAURANT_HEADS, scaled_size(12, scale), rng
        )
        self.streets = expand_pool(
            wordpools.STREETS, scaled_size(12, scale), rng
        )
        self.cities = expand_pool(
            wordpools.CITIES, scaled_size(9, scale), rng
        )
        self.cuisines = expand_pool(
            wordpools.CUISINES, scaled_size(12, scale), rng
        )


def _make_restaurant(rng: random.Random, pools: _Pools) -> str:
    name = f"{rng.choice(pools.names)} {rng.choice(pools.heads)}"
    street = rng.choice(pools.streets)
    city = rng.choice(pools.cities)
    cuisine = rng.choice(pools.cuisines)
    return f"{name} {street} {city} {cuisine}"


def generate_restaurant(scale: float = 1.0, seed: int = 0) -> Dataset:
    """Generate the Restaurant dataset.

    Args:
        scale: Multiplies the entity and record counts (1.0 = Table 3 size).
        seed: Generator seed.

    Returns:
        A :class:`~repro.datasets.schema.Dataset` named ``"restaurant"``.
    """
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    rng = random.Random(seed)
    num_entities = max(2, round(BASE_ENTITIES * scale))
    num_duplicated = max(1, round((BASE_RECORDS - BASE_ENTITIES) * scale))
    num_duplicated = min(num_duplicated, num_entities)

    pools = _Pools(scale, rng)
    records: List[Record] = []
    entity_of: Dict[int, int] = {}
    record_id = 0
    for entity_id in range(num_entities):
        canonical = _make_restaurant(rng, pools)
        copies = 2 if entity_id < num_duplicated else 1
        for _ in range(copies):
            # Two-guide listings differ only lightly: tiny typo/drop rates.
            text = noisy_variant(
                canonical, rng,
                typo_rate=0.02, drop_rate=0.04,
                abbreviate_rate=0.03, shuffle_probability=0.05,
            )
            records.append(Record(record_id=record_id, text=text))
            entity_of[record_id] = entity_id
            record_id += 1

    return Dataset(
        name="restaurant", records=records, gold=GoldStandard(entity_of)
    )
