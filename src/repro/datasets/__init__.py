"""Datasets: record model, gold standards, and synthetic generators that
reproduce the shape of the paper's three benchmarks (Paper, Restaurant,
Product — Table 3)."""

from repro.datasets.io import load_dataset, save_dataset
from repro.datasets.paper import generate_paper
from repro.datasets.product import generate_product
from repro.datasets.registry import dataset_names, generate
from repro.datasets.restaurant import generate_restaurant
from repro.datasets.schema import Dataset, GoldStandard, Record, canonical_pair
from repro.datasets.synthetic import (
    abbreviate,
    abbreviate_words,
    corrupt_words,
    drop_words,
    noisy_variant,
    shuffle_some,
    typo,
    zipf_cluster_sizes,
)

__all__ = [
    "Dataset",
    "GoldStandard",
    "Record",
    "abbreviate",
    "abbreviate_words",
    "canonical_pair",
    "corrupt_words",
    "dataset_names",
    "drop_words",
    "generate",
    "generate_paper",
    "generate_product",
    "generate_restaurant",
    "load_dataset",
    "noisy_variant",
    "save_dataset",
    "shuffle_some",
    "typo",
    "zipf_cluster_sizes",
]
