"""Vocabulary pool expansion for size-scaled dataset generation.

The candidate-graph density of a synthetic dataset is governed by how often
unrelated records collide on tokens, which is a function of record count
versus vocabulary size.  To keep density *constant* as a dataset scales
(matching the real datasets' per-record candidate counts in Table 3),
vocabulary pools must grow like the square root of the record count.  This
module expands the hand-written base pools with pronounceable synthesized
tokens when a generator needs more vocabulary than the base lists offer.
"""

from __future__ import annotations

import random
from typing import List, Sequence

_ONSETS = ["b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z",
           "br", "dr", "gr", "st", "tr", "sh"]
_VOWELS = ["a", "e", "i", "o", "u", "ai", "ea", "or"]
_CODAS = ["", "n", "r", "s", "l", "m", "x", "nd", "rt"]


def synthesize_token(rng: random.Random, syllables: int = 2) -> str:
    """One pronounceable made-up word, e.g. 'belmor' or 'traiko'."""
    parts = []
    for index in range(syllables):
        parts.append(rng.choice(_ONSETS))
        parts.append(rng.choice(_VOWELS))
        if index == syllables - 1:
            parts.append(rng.choice(_CODAS))
    return "".join(parts)


def expand_pool(base: Sequence[str], size: int, rng: random.Random,
                syllables: int = 2) -> List[str]:
    """A pool of exactly ``size`` distinct tokens: the base list first,
    synthesized tokens after it runs out.

    Args:
        base: Hand-written vocabulary to prefer.
        size: Desired pool size (>= 1).
        rng: Randomness for the synthesized tail (deterministic per rng
            state).
        syllables: Length of synthesized words.
    """
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    pool = list(base[:size])
    seen = set(pool)
    while len(pool) < size:
        token = synthesize_token(rng, syllables=syllables)
        if token not in seen:
            seen.add(token)
            pool.append(token)
    return pool


def scaled_size(base_size: int, scale: float, minimum: int = 4) -> int:
    """Pool size growing with the square root of the dataset scale.

    ``scale`` is the dataset's record-count multiplier; sqrt scaling keeps
    the expected number of token collisions per record constant.
    """
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    return max(minimum, round(base_size * scale ** 0.5))
