"""The *Paper* dataset generator (Cora-like bibliographic citations).

Table 3 shape at scale 1.0: 997 records over 191 entities (≈5.2 citations
per paper, heavily skewed) and a *dense* candidate graph (≈30k pairs) —
citations of different papers share authors, venues, and topic words, so
machine similarity confuses them badly and crowd workers also struggle
(23 % majority-vote error at 3 workers).  The generator reproduces that by
drawing titles from a deliberately narrow topic vocabulary, reusing a small
author pool across papers, and rendering each citation with heavy token
noise (drops, abbreviations, reordering, typos).
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.datasets.schema import Dataset, GoldStandard, Record
from repro.datasets.synthetic import noisy_variant, zipf_cluster_sizes
from repro.datasets import wordpools

BASE_ENTITIES = 191
BASE_RECORDS = 997


def _make_author(rng: random.Random) -> str:
    return f"{rng.choice(wordpools.FIRST_INITIALS)} {rng.choice(wordpools.SURNAMES)}"


def _make_paper_entity(rng: random.Random, topic_pool: List[str],
                       author_pool: List[str], venue_pool: List[str]) -> str:
    """A clean canonical citation: authors, title, venue, year."""
    authors = rng.sample(author_pool, k=rng.randint(1, 3))
    title_words = rng.sample(topic_pool, k=rng.randint(4, 6))
    venue = rng.choice(venue_pool)
    style = rng.choice(wordpools.VENUE_STYLES)
    venue_text = style.format(venue=venue, ord=rng.choice(wordpools.ORDINALS))
    year = rng.randint(1993, 1999)
    return f"{' '.join(authors)} {' '.join(title_words)} {venue_text} {year}"


def generate_paper(scale: float = 1.0, seed: int = 0) -> Dataset:
    """Generate the Paper dataset.

    Args:
        scale: Multiplies the entity and record counts (1.0 = Table 3 size).
        seed: Generator seed; same seed, same dataset.

    Returns:
        A :class:`~repro.datasets.schema.Dataset` named ``"paper"``.
    """
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    rng = random.Random(seed)
    num_entities = max(2, round(BASE_ENTITIES * scale))
    num_records = max(num_entities, round(BASE_RECORDS * scale))

    # Narrow pools: this is what makes distinct papers look alike.
    topic_pool = wordpools.TOPIC_WORDS[:14]
    venue_pool = wordpools.VENUES[:5]
    author_pool = sorted({_make_author(rng) for _ in range(22)})

    sizes = zipf_cluster_sizes(num_records, num_entities, rng, skew=1.1)
    records: List[Record] = []
    entity_of: Dict[int, int] = {}
    record_id = 0
    for entity_id, size in enumerate(sizes):
        canonical = _make_paper_entity(rng, topic_pool, author_pool, venue_pool)
        for _ in range(size):
            text = noisy_variant(
                canonical, rng,
                typo_rate=0.06, drop_rate=0.12,
                abbreviate_rate=0.08, shuffle_probability=0.25,
            )
            records.append(Record(record_id=record_id, text=text))
            entity_of[record_id] = entity_id
            record_id += 1

    return Dataset(name="paper", records=records, gold=GoldStandard(entity_of))
