"""Machine-based agglomerative clustering algorithms for deduplication.

The paper's related work surveys a line of machine-based correlation
clustering and merging heuristics [5, 14, 22, 27, 36, 41].  Two classic
families are implemented here as additional no-crowd reference points:

- :func:`vote_clustering` — Elsner-Schudy style greedy VOTE: consider
  records one at a time, joining the existing cluster with the best net
  score (or starting a new one).  A strong, cheap correlation-clustering
  heuristic.
- :func:`agglomerative_clustering` — hierarchical agglomerative merging of
  the closest cluster pair under single/complete/average linkage until no
  linkage exceeds the threshold; the sorted-neighborhood-merge idiom of
  classic dedup pipelines.

Both consume the machine scores of a :class:`CandidateSet` only.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.clustering import Clustering
from repro.pruning.candidate import CandidateSet

Pair = Tuple[int, int]

LINKAGES = ("single", "complete", "average")


def vote_clustering(
    record_ids,
    candidates: CandidateSet,
    order: Optional[List[int]] = None,
) -> Clustering:
    """Greedy VOTE correlation clustering on machine scores.

    Each record (in the given order, default: ascending id) either joins
    the existing cluster maximizing the net score
    ``sum(2 f(r, m) - 1 for members m)`` — when positive — or founds a new
    cluster.  Pairs outside the candidate set score 0 (i.e. a -1 vote).

    Args:
        record_ids: The record set ``R``.
        candidates: Machine-scored candidate set.
        order: Optional explicit insertion order.
    """
    ids = list(record_ids)
    sequence = list(order) if order is not None else sorted(ids)
    if set(sequence) != set(ids):
        raise ValueError("order must be a permutation of record_ids")

    clusters: List[Set[int]] = []
    # Adjacency from record to scored neighbors, for O(deg) vote updates.
    neighbors: Dict[int, Dict[int, float]] = {r: {} for r in ids}
    for (a, b), score in candidates.machine_scores.items():
        neighbors[a][b] = score
        neighbors[b][a] = score

    cluster_of: Dict[int, int] = {}
    for record in sequence:
        votes: Dict[int, float] = {}
        for other, score in neighbors[record].items():
            index = cluster_of.get(other)
            if index is not None:
                votes[index] = votes.get(index, 0.0) + (2.0 * score - 1.0)
        best_index = None
        best_net = 0.0
        for index, positive_part in votes.items():
            # Members without a candidate edge contribute -1 each.
            unscored = len(clusters[index]) - sum(
                1 for other in neighbors[record] if cluster_of.get(other) == index
            )
            net = positive_part - unscored
            if net > best_net:
                best_net = net
                best_index = index
        if best_index is None:
            cluster_of[record] = len(clusters)
            clusters.append({record})
        else:
            cluster_of[record] = best_index
            clusters[best_index].add(record)

    return Clustering(clusters)


def _linkage_value(scores: List[float], pending_zeroes: int,
                   linkage: str) -> float:
    """Aggregate cross-cluster scores under a linkage; ``pending_zeroes``
    counts cross pairs outside the candidate set (score 0)."""
    if linkage == "single":
        return max(scores) if scores else 0.0
    if linkage == "complete":
        if pending_zeroes > 0 or not scores:
            return 0.0
        return min(scores)
    # average
    total_pairs = len(scores) + pending_zeroes
    if total_pairs == 0:
        return 0.0
    return sum(scores) / total_pairs


def agglomerative_clustering(
    record_ids,
    candidates: CandidateSet,
    threshold: float = 0.5,
    linkage: str = "average",
) -> Clustering:
    """Hierarchical agglomerative clustering on machine scores.

    Repeatedly merges the candidate-connected cluster pair with the highest
    linkage value until none exceeds ``threshold``.

    Args:
        record_ids: The record set ``R``.
        candidates: Machine-scored candidate set.
        threshold: Minimum linkage required to merge.
        linkage: 'single', 'complete', or 'average'.
    """
    if linkage not in LINKAGES:
        raise ValueError(f"linkage must be one of {LINKAGES}, got {linkage!r}")
    clustering = Clustering.singletons(record_ids)

    def linkage_between(cluster_a: int, cluster_b: int) -> float:
        scores: List[float] = []
        zero_pairs = 0
        for x in clustering.members(cluster_a):
            for y in clustering.members(cluster_b):
                pair = (x, y) if x < y else (y, x)
                if pair in candidates:
                    scores.append(candidates.machine_scores[pair])
                else:
                    zero_pairs += 1
        return _linkage_value(scores, zero_pairs, linkage)

    while True:
        # Candidate-connected cluster pairs only (others can never exceed a
        # positive threshold under any linkage).
        seen: Set[Tuple[int, int]] = set()
        best: Optional[Tuple[float, int, int]] = None
        for a, b in candidates.pairs:
            cluster_a = clustering.cluster_of(a)
            cluster_b = clustering.cluster_of(b)
            if cluster_a == cluster_b:
                continue
            key = (min(cluster_a, cluster_b), max(cluster_a, cluster_b))
            if key in seen:
                continue
            seen.add(key)
            value = linkage_between(*key)
            if value > threshold and (best is None or value > best[0]):
                best = (value, key[0], key[1])
        if best is None:
            return clustering
        clustering.merge(best[1], best[2])
