"""Machine-only baselines: no crowd at all.

These are the classic correlation-clustering algorithms the paper builds on:
Pivot (Ailon et al. [5]) run directly on machine similarity scores, and the
BOEM local-move postprocessing (Gionis et al. [22] / Goder-Filkov [23]) the
paper rules out for crowd settings but which is the natural machine-side
refiner.  They serve as the no-crowd reference point in the experiments and
examples.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Set, Tuple

from repro.core.clustering import Clustering
from repro.core.permutation import Permutation
from repro.pruning.candidate import CandidateSet
from repro.pruning.graph import CandidateGraph

Pair = Tuple[int, int]


def machine_pivot(
    record_ids,
    candidates: CandidateSet,
    threshold: float = 0.5,
    permutation: Optional[Permutation] = None,
    seed: Optional[int] = None,
) -> Clustering:
    """Pivot on machine scores: a neighbor joins the pivot's cluster iff its
    machine similarity exceeds ``threshold`` (no crowd involved).

    Args:
        record_ids: The record set ``R`` (ids).
        candidates: The candidate set with machine scores.
        threshold: Same-entity decision threshold on ``f``.
        permutation: Explicit pivot order; random from ``seed`` otherwise.
    """
    ids = list(record_ids)
    if permutation is None:
        permutation = Permutation.random(ids, seed=seed)
    graph = CandidateGraph(ids, candidates.pairs)
    clustering = Clustering()
    while not graph.is_empty():
        pivot = permutation.first(graph.vertices)
        cluster = {pivot}
        for neighbor in graph.neighbors(pivot):
            if candidates.score(pivot, neighbor) > threshold:
                cluster.add(neighbor)
        clustering.add_cluster(cluster)
        graph.remove_vertices(cluster)
    return clustering


def boem(
    clustering: Clustering,
    record_ids,
    score: Callable[[int, int], float],
    max_rounds: int = 50,
) -> Clustering:
    """Best-One-Element-Move postprocessing.

    Repeatedly moves the single record whose relocation (to another cluster
    or to a fresh singleton) most decreases the Λ objective, until no move
    helps.  Requires a complete score lookup — which is exactly why the paper
    deems it unusable with a crowd (Section 5.1): computing move deltas needs
    the scores of *all* pairs involving the candidate records.

    Args:
        clustering: Starting partition (mutated in place).
        record_ids: The record set ``R`` (ids).
        score: Complete pair score lookup (machine scores, or full crowd
            answers in an ablation).
        max_rounds: Safety cap on improvement rounds.

    Returns:
        The locally-optimal clustering.
    """
    ids = list(record_ids)

    def move_delta(record_id: int, target_members: Set[int]) -> float:
        """Λ change if ``record_id`` moved into the given target cluster
        (empty set = new singleton)."""
        current = clustering.members(clustering.cluster_of(record_id))
        current.discard(record_id)
        # Leaving the current cluster: pairs flip from together to apart.
        delta = sum(
            score(record_id, other) - (1.0 - score(record_id, other))
            for other in current
        )
        # Joining the target: pairs flip from apart to together.
        delta += sum(
            (1.0 - score(record_id, other)) - score(record_id, other)
            for other in target_members
        )
        return delta

    for _ in range(max_rounds):
        best_delta = -1e-9
        best_move: Optional[Tuple[int, Optional[int]]] = None
        cluster_ids = clustering.cluster_ids
        for record_id in ids:
            home = clustering.cluster_of(record_id)
            if clustering.size(home) > 1:
                delta = move_delta(record_id, set())
                if delta < best_delta:
                    best_delta = delta
                    best_move = (record_id, None)
            for cluster_id in cluster_ids:
                if cluster_id == home:
                    continue
                delta = move_delta(record_id, clustering.members(cluster_id))
                if delta < best_delta:
                    best_delta = delta
                    best_move = (record_id, cluster_id)
        if best_move is None:
            break
        record_id, target = best_move
        if clustering.size(clustering.cluster_of(record_id)) > 1:
            clustering.split(record_id)
        if target is not None:
            clustering.merge(clustering.cluster_of(record_id), target)
    return clustering
