"""TransNode (Vesdapunt et al., VLDB 2014 [44]): node-priority deduplication.

Instead of ordering *pairs*, TransNode orders *records* and inserts them one
by one into the growing clustering: a new record is compared (via the crowd)
against existing clusters in descending match likelihood until one confirms,
and starts a new cluster if all deny.  Transitivity is exploited in both
directions: one positive answer joins a whole cluster, one negative answer
rules a whole cluster out — giving the original paper's worst-case guarantee
on the number of questions, but inheriting the same sensitivity to crowd
errors as TransM.

Record priority follows the original heuristic: records with larger expected
cluster mass (sum of candidate machine similarities) are inserted first.
TransNode has no batch mechanism — every question is its own crowd iteration
(which is why the ACD paper omits it from the crowd-iteration figure).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.clustering import Clustering
from repro.crowd.oracle import CrowdOracle
from repro.datasets.schema import canonical_pair
from repro.pruning.candidate import CandidateSet

Pair = Tuple[int, int]


def _node_priority(record_ids, candidates: CandidateSet) -> List[int]:
    """Records sorted by descending candidate-similarity mass."""
    mass: Dict[int, float] = {record_id: 0.0 for record_id in record_ids}
    for (a, b), score in candidates.machine_scores.items():
        mass[a] += score
        mass[b] += score
    return sorted(mass, key=lambda record_id: (-mass[record_id], record_id))


def transnode(record_ids, candidates: CandidateSet,
              oracle: CrowdOracle) -> Clustering:
    """Run TransNode.

    Args:
        record_ids: The record set ``R`` (ids).
        candidates: The candidate set ``S``.
        oracle: Crowd access; one pair per crowd round (sequential).

    Returns:
        The incremental clustering after all records are inserted.
    """
    ids = _node_priority(list(record_ids), candidates)
    clusters: List[Set[int]] = []

    for record_id in ids:
        # Rank existing clusters by the best machine similarity between the
        # new record and any member reachable through the candidate set.
        best_link: Dict[int, float] = {}
        for index, cluster in enumerate(clusters):
            best = 0.0
            for member in cluster:
                pair = canonical_pair(record_id, member)
                if pair in candidates:
                    best = max(best, candidates.machine_scores[pair])
            if best > 0.0:
                best_link[index] = best
        ranked = sorted(best_link, key=lambda index: (-best_link[index], index))

        joined = False
        for index in ranked:
            # One question against the cluster's best-matching member decides
            # membership for the whole cluster (transitivity).
            member = max(
                clusters[index],
                key=lambda m: candidates.score(record_id, m),
            )
            confidence = oracle.ask(record_id, member)
            if confidence > 0.5:
                clusters[index].add(record_id)
                joined = True
                break
        if not joined:
            clusters.append({record_id})

    return Clustering(clusters)
