"""GCER (Whang et al., VLDB 2013 [48]): budget-limited question selection.

GCER spends a fixed crowdsourcing budget on the most *informative* record
pairs, then generalizes the crowd's answers to the un-asked pairs through an
equi-depth histogram mapping machine scores to expected crowd scores, and
clusters on the resulting hybrid evidence.  Its weakness — reproduced here —
is that generalization propagates crowd mistakes: a wrong answer shifts the
histogram and thereby mislabels *other* pairs too.

Question selection (the ``selection`` parameter): ``"similarity"`` issues
the most-likely duplicates first (descending machine score — the default),
``"uncertainty"`` issues the pairs whose current estimated crowd score is
closest to 0.5.  Batches of ``batch_size`` pairs form one crowd iteration.
Final clustering: transitive closure over the hybrid evidence (actual crowd
answers where asked, histogram-adjusted machine scores elsewhere).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.baselines.unionfind import UnionFind
from repro.core.clustering import Clustering
from repro.core.estimator import HistogramEstimator
from repro.crowd.oracle import CrowdOracle
from repro.pruning.candidate import CandidateSet

Pair = Tuple[int, int]


def gcer(
    record_ids,
    candidates: CandidateSet,
    oracle: CrowdOracle,
    budget: int,
    batch_size: int = 0,
    num_buckets: int = 20,
    selection: str = "similarity",
) -> Clustering:
    """Run GCER with a pair budget.

    Args:
        record_ids: The record set ``R`` (ids).
        candidates: The candidate set ``S``.
        oracle: Crowd access.
        budget: Maximum pairs to crowdsource (the ACD paper sets this to the
            number of pairs ACD itself crowdsourced, for a fair comparison).
        batch_size: Pairs per crowd iteration; 0 picks ``budget // 10``
            (min 10) so GCER's iteration count is in the same regime as the
            batched competitors.
        num_buckets: Histogram granularity.
        selection: Question-selection strategy: "similarity" (most-likely
            duplicates first) or "uncertainty" (estimated score nearest 0.5).

    Returns:
        The hybrid-evidence clustering.
    """
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    if selection not in ("similarity", "uncertainty"):
        raise ValueError(
            f"selection must be 'similarity' or 'uncertainty', got {selection!r}"
        )
    ids = list(record_ids)
    if batch_size <= 0:
        batch_size = max(10, budget // 10)

    estimator = HistogramEstimator(num_buckets=num_buckets)
    known: Dict[Pair, float] = {}
    remaining = budget
    unasked: List[Pair] = list(candidates.pairs)

    while remaining > 0 and unasked:
        if selection == "uncertainty":
            # Most-informative-first: estimated crowd score nearest 0.5.
            unasked.sort(
                key=lambda pair: (
                    abs(estimator.estimate(candidates.machine_scores[pair]) - 0.5),
                    pair,
                )
            )
        else:
            # Most-likely-duplicates first.
            unasked.sort(
                key=lambda pair: (-candidates.machine_scores[pair], pair)
            )
        batch = unasked[: min(batch_size, remaining)]
        unasked = unasked[len(batch):]
        answers = oracle.ask_batch(batch)
        for pair, confidence in answers.items():
            known[pair] = confidence
            estimator.add_sample(
                pair, candidates.machine_scores[pair], confidence
            )
        remaining -= len(batch)

    def hybrid_score(pair: Pair) -> float:
        answered = known.get(pair)
        if answered is not None:
            return answered
        # Generalization for un-asked pairs: the refined similarity is the
        # machine prior adjusted toward the histogram's crowd expectation
        # (Whang et al. refine f rather than replace it outright).
        machine = candidates.machine_scores[pair]
        return 0.5 * (machine + estimator.estimate(machine))

    # Final clustering: transitive closure over every pair the hybrid
    # evidence labels duplicate.  This is where GCER's weakness lives — a
    # single wrong crowd answer (or a histogram bucket dragged the wrong way
    # by wrong answers) glues clusters together, exactly the sensitivity the
    # ACD paper attributes to it.
    closure = UnionFind(ids)
    for pair in candidates.pairs:
        if hybrid_score(pair) > 0.5:
            closure.union(*pair)
    return Clustering(closure.groups())
