"""Disjoint-set (union-find) with path compression and union by size.

The transitivity-based baselines (TransM, TransNode) maintain clusters as a
disjoint-set forest, merging on every crowd-confirmed duplicate.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set


class UnionFind:
    """Classic disjoint-set over hashable items."""

    def __init__(self, items: Iterable[Hashable] = ()):
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        """Register an item as its own singleton set (idempotent)."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def find(self, item: Hashable) -> Hashable:
        """The canonical representative of an item's set."""
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the sets of ``a`` and ``b``; returns the surviving root."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return root_a
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        return root_a

    def connected(self, a: Hashable, b: Hashable) -> bool:
        return self.find(a) == self.find(b)

    def groups(self) -> List[Set[Hashable]]:
        """The current partition as a list of sets."""
        by_root: Dict[Hashable, Set[Hashable]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), set()).add(item)
        return list(by_root.values())
