"""State-of-the-art baselines reimplemented for the paper's comparison:
TransM, TransNode, CrowdER+, GCER, plus machine-only algorithms (Pivot,
BOEM, greedy VOTE, hierarchical agglomerative)."""

from repro.baselines.agglomerative import (
    agglomerative_clustering,
    vote_clustering,
)
from repro.baselines.crowder import crowder_plus
from repro.baselines.gcer import gcer
from repro.baselines.machine import boem, machine_pivot
from repro.baselines.transm import transm
from repro.baselines.transnode import transnode
from repro.baselines.unionfind import UnionFind

__all__ = [
    "UnionFind",
    "agglomerative_clustering",
    "boem",
    "crowder_plus",
    "gcer",
    "machine_pivot",
    "transm",
    "transnode",
    "vote_clustering",
]
