"""TransM (Wang et al., SIGMOD 2013 [47]): transitivity-based deduplication.

Candidate pairs are processed in descending machine-similarity order.  A
pair's label is *inferred* when transitivity decides it — same cluster means
duplicate; a known non-duplicate relation between the two clusters means
non-duplicate — and crowdsourced otherwise.  Confirmed duplicates union
clusters; confirmed non-duplicates record a cluster-level negative edge.

Because every positive answer propagates through unions, a single crowd
mistake can glue two large clusters together (Figure 1 of the ACD paper) —
this implementation deliberately reproduces that failure mode.

Batching: following the original paper's parallel issue strategy, each crowd
iteration sends a maximal prefix (in similarity order) of non-inferable pairs
whose cluster pairs are mutually disjoint, so no answer inside a batch could
have inferred another pair in the same batch.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Set, Tuple

from repro.baselines.unionfind import UnionFind
from repro.core.clustering import Clustering
from repro.crowd.oracle import CrowdOracle
from repro.pruning.candidate import CandidateSet

Pair = Tuple[int, int]
ClusterPair = FrozenSet[int]


class _TransitiveState:
    """Clusters plus cluster-level negative edges, with inference queries."""

    def __init__(self, record_ids):
        self.union_find = UnionFind(record_ids)
        self._negative: Set[ClusterPair] = set()

    def _cluster_pair(self, a: int, b: int) -> ClusterPair:
        return frozenset((self.union_find.find(a), self.union_find.find(b)))

    def infer(self, a: int, b: int) -> Optional[bool]:
        """``True``/``False`` when transitivity decides the pair, else ``None``."""
        if self.union_find.connected(a, b):
            return True
        if self._cluster_pair(a, b) in self._negative:
            return False
        return None

    def mark_duplicate(self, a: int, b: int) -> None:
        root_a, root_b = self.union_find.find(a), self.union_find.find(b)
        if root_a == root_b:
            return
        survivor = self.union_find.union(root_a, root_b)
        absorbed = root_b if survivor == root_a else root_a
        # Rewrite negative edges of the absorbed cluster onto the survivor.
        stale = [edge for edge in self._negative if absorbed in edge]
        for edge in stale:
            self._negative.discard(edge)
            other = next(iter(edge - {absorbed}), None)
            if other is not None and other != survivor:
                self._negative.add(frozenset((self.union_find.find(other),
                                              survivor)))

    def mark_non_duplicate(self, a: int, b: int) -> None:
        pair = self._cluster_pair(a, b)
        if len(pair) == 2:
            self._negative.add(pair)


def transm(record_ids, candidates: CandidateSet,
           oracle: CrowdOracle) -> Clustering:
    """Run TransM.

    Args:
        record_ids: The record set ``R`` (ids).
        candidates: The candidate set ``S`` (pairs issued in descending
            machine-similarity order).
        oracle: Crowd access (batched as described in the module docstring).

    Returns:
        The clustering implied by the final transitive closure.
    """
    ids = list(record_ids)
    state = _TransitiveState(ids)
    pending: List[Pair] = candidates.sorted_by_score(descending=True)

    while pending:
        batch: List[Pair] = []
        batch_clusters: Set[int] = set()
        deferred: List[Pair] = []
        for pair in pending:
            verdict = state.infer(*pair)
            if verdict is not None:
                continue  # inferred for free; drop it
            root_a = state.union_find.find(pair[0])
            root_b = state.union_find.find(pair[1])
            if root_a in batch_clusters or root_b in batch_clusters:
                deferred.append(pair)
                continue
            batch.append(pair)
            batch_clusters.update((root_a, root_b))
        if not batch:
            break
        answers = oracle.ask_batch(batch)
        for pair in batch:
            if answers[pair] > 0.5:
                state.mark_duplicate(*pair)
            else:
                state.mark_non_duplicate(*pair)
        pending = deferred

    return Clustering(state.union_find.groups())
