"""CrowdER+ (Wang et al., VLDB 2012 [46] + the clustering step of [48]).

CrowdER crowdsources *every* candidate pair (in one giant batch — which is
why it needs exactly one crowd iteration and tops the cost charts), but does
not itself specify how to turn pairwise answers into clusters.  Following the
ACD paper's experimental setup, the clustering step sorts the crowd-confirmed
pairs into a neighborhood ordering by descending confidence and greedily
merges clusters whose merge strictly reduces the correlation-clustering
objective Λ' — i.e. only when the total crowd evidence between the two
clusters is net-positive (Equation 6).  With complete pairwise evidence this
is both high-precision and robust, matching CrowdER+'s top accuracy in
Figure 6.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.clustering import Clustering
from repro.core.objective import merge_benefit
from repro.crowd.oracle import CrowdOracle
from repro.pruning.candidate import CandidateSet

Pair = Tuple[int, int]


def crowder_plus(record_ids, candidates: CandidateSet,
                 oracle: CrowdOracle) -> Clustering:
    """Run CrowdER+.

    Args:
        record_ids: The record set ``R`` (ids).
        candidates: The candidate set ``S`` — all of it is crowdsourced.
        oracle: Crowd access; a single batch containing every pair in ``S``.

    Returns:
        The greedy net-positive-merge clustering of the crowd answers.
    """
    ids = list(record_ids)
    answers = oracle.ask_batch(candidates.pairs)

    clustering = Clustering.singletons(ids)
    # Sorted neighborhood over the evidence: strongest confirmations first.
    positive_pairs: List[Tuple[float, Pair]] = sorted(
        ((confidence, pair) for pair, confidence in answers.items()
         if confidence > 0.5),
        key=lambda item: (-item[0], item[1]),
    )

    for _, (a, b) in positive_pairs:
        cluster_a = clustering.cluster_of(a)
        cluster_b = clustering.cluster_of(b)
        if cluster_a == cluster_b:
            continue
        # Merge only if the full crowd evidence between the clusters is
        # net-positive; absent pairs were pruned, i.e. f_c = 0.
        confidences = [
            answers.get((min(x, y), max(x, y)), 0.0)
            for x in clustering.members(cluster_a)
            for y in clustering.members(cluster_b)
        ]
        if merge_benefit(confidences) > 0.0:
            clustering.merge(cluster_a, cluster_b)

    return clustering
