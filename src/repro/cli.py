"""Command-line interface: regenerate the paper's experiments from a shell.

Usage (also via ``python -m repro``)::

    repro datasets                       # Table 3 dataset characteristics
    repro compare paper --setting 3w     # Figure 6/7/8 rows for one dataset
    repro sweep-epsilon restaurant       # Figure 5 series
    repro sweep-threshold paper          # Figure 10 series
    repro run product --method ACD       # one method, one dataset
    repro run paper --journal run.wal    # crash-safe: journal every batch
    repro run paper --journal run.wal --resume   # continue a killed run
    repro run paper --checkpoint-dir ck  # snapshot each completed phase
    repro run paper --checkpoint-dir ck --resume # skip finished phases
    repro run paper --trace run.trace.jsonl      # traced: spans + manifest
    repro trace summarize run.trace.jsonl        # inspect a finished trace
    repro trace validate run.trace.manifest.json # schema-check a manifest
    repro chaos --dataset restaurant     # pipelines under injected faults

Every command takes ``--scale`` (dataset size multiplier; 1.0 = Table 3
sizes) and ``--seed``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.datasets.registry import dataset_names
from repro.experiments.runner import (
    ALL_METHODS,
    Instance,
    prepare_instance,
    run_comparison,
    run_method,
)
from repro.core.pivot_engine import PIVOT_ENGINES
from repro.core.refine import REFINE_ENGINES
from repro.pruning.candidate import ENGINES
from repro.similarity.kernels import KERNEL_BACKENDS
from repro.experiments.sweeps import epsilon_sweep, threshold_sweep
from repro.experiments.tables import (
    format_comparison,
    format_epsilon_sweep,
    format_table,
    format_threshold_sweep,
    table3_row,
)


def _shards_value(text: str):
    """argparse type for shard knobs: a non-negative int or 'auto'."""
    if text == "auto":
        return text
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {text!r}")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.3,
                        help="dataset size multiplier (1.0 = paper size)")
    parser.add_argument("--seed", type=int, default=1,
                        help="dataset/crowd seed")
    parser.add_argument("--engine", choices=ENGINES, default="auto",
                        help="pruning engine (prefix join vs reference loop)")
    parser.add_argument("--parallel", type=int, default=0,
                        help="worker processes for reference pruning or "
                             "sharded prefix-join execution (<= 1 is serial)")
    parser.add_argument("--shards", type=_shards_value, default=0,
                        help="blocking-key shards for the prefix join "
                             "(0/1 = unsharded; identical output at any "
                             "shard count; 'auto' picks by record count)")
    parser.add_argument("--kernel-backend", choices=KERNEL_BACKENDS,
                        default="auto",
                        help="prefix-join verification kernel: numpy batch "
                             "('vectorized') or per-pair Python ('scalar')")


def _prepare(args: argparse.Namespace, obs=None, candidates=None) -> Instance:
    return prepare_instance(
        args.dataset, args.setting, scale=args.scale, seed=args.seed,
        engine=args.engine, parallel=args.parallel, shards=args.shards,
        kernel_backend=args.kernel_backend, obs=obs, candidates=candidates,
    )


def _add_setting(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--setting", choices=("3w", "5w"), default="3w",
                        help="crowd setting (workers per pair)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Crowd-Based Deduplication: "
                    "An Adaptive Approach' (SIGMOD 2015)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    datasets = commands.add_parser(
        "datasets", help="Table 3: dataset characteristics and error rates"
    )
    _add_common(datasets)

    compare = commands.add_parser(
        "compare", help="Figure 6/7/8: compare all methods on one dataset"
    )
    compare.add_argument("dataset", choices=dataset_names())
    compare.add_argument("--repetitions", type=int, default=3)
    _add_setting(compare)
    _add_common(compare)

    sweep_eps = commands.add_parser(
        "sweep-epsilon", help="Figure 5: PC-Pivot's ε trade-off"
    )
    sweep_eps.add_argument("dataset", choices=dataset_names())
    sweep_eps.add_argument("--repetitions", type=int, default=3)
    _add_setting(sweep_eps)
    _add_common(sweep_eps)

    sweep_t = commands.add_parser(
        "sweep-threshold", help="Figure 10: PC-Refine's budget T"
    )
    sweep_t.add_argument("dataset", choices=dataset_names())
    sweep_t.add_argument("--repetitions", type=int, default=3)
    _add_setting(sweep_t)
    _add_common(sweep_t)

    run = commands.add_parser("run", help="run a single method")
    run.add_argument("dataset", choices=dataset_names())
    run.add_argument("--method", choices=ALL_METHODS, default="ACD")
    run.add_argument("--method-seed", type=int, default=7)
    run.add_argument("--journal", default=None, metavar="PATH",
                     help="write-ahead journal: durably record every crowd "
                          "batch so a killed run can be resumed")
    run.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                     help="phase-level checkpoints: atomically snapshot "
                          "the candidate set after pruning, the cluster "
                          "state after generation, and the finished "
                          "pipeline after refinement, so --resume "
                          "restarts from the last completed phase")
    run.add_argument("--resume", action="store_true",
                     help="continue a previous run from its --journal "
                          "and/or --checkpoint-dir (replays journaled "
                          "batches at no crowd cost and skips "
                          "checkpointed phases)")
    run.add_argument("--trace", default=None, metavar="PATH",
                     help="stream a JSONL trace of every span and event to "
                          "PATH and write a run manifest next to it")
    run.add_argument("--manifest", default=None, metavar="PATH",
                     help="override the manifest path (default: derived "
                          "from --trace)")
    run.add_argument("--output", default=None, metavar="PATH",
                     help="also write the result metrics as JSON to PATH")
    run.add_argument("--refine-engine", choices=REFINE_ENGINES,
                     default="fast",
                     help="refinement evaluation engine: incremental "
                          "'fast' (default) or full-re-evaluation "
                          "'reference'; outputs are byte-identical")
    run.add_argument("--pivot-engine", choices=PIVOT_ENGINES,
                     default="fast",
                     help="cluster-generation engine: incremental 'fast' "
                          "(default) or per-round re-derivation "
                          "'reference'; outputs are byte-identical")
    run.add_argument("--pivot-shards", type=_shards_value, default=0,
                     metavar="N",
                     help="shard cluster generation: split the candidate "
                          "graph into connected components, pack them "
                          "into N shard tasks, and merge per-shard "
                          "PC-Pivot results (0 = classic single-graph "
                          "loop; clustering is byte-identical for every "
                          "N; requires the 'fast' engine)")
    run.add_argument("--pivot-processes", type=int, default=0, metavar="N",
                     help="worker processes for the pivot shard tasks "
                          "(<= 1 runs them in-process; ignored without "
                          "--pivot-shards)")
    run.add_argument("--refine-shards", type=_shards_value, default=0,
                     metavar="N",
                     help="shard refinement: split the clustering into "
                          "connected components, pack them into N shard "
                          "tasks, and replay per-shard PC-Refine rounds "
                          "under one global budget (0 = classic "
                          "single-clustering loop; output is "
                          "byte-identical for every N; requires the "
                          "'fast' engine)")
    run.add_argument("--refine-processes", type=int, default=0, metavar="N",
                     help="worker processes for the refine shard tasks "
                          "(<= 1 runs them in-process; ignored without "
                          "--refine-shards)")
    run.add_argument("--pipeline", action="store_true",
                     help="run ACD's crowd phases as a component-streaming "
                          "DAG over one shared worker pool, overlapping "
                          "the pruning/pivot/refine barriers (output is "
                          "byte-identical to barrier execution; replaces "
                          "--pivot-shards/--refine-shards)")
    run.add_argument("--pipeline-workers", type=int, default=0, metavar="N",
                     help="worker processes for the shared pipeline pool "
                          "(<= 1 runs the DAG inline; ignored without "
                          "--pipeline)")
    _add_setting(run)
    _add_common(run)

    trace = commands.add_parser(
        "trace", help="inspect observability artifacts from --trace runs"
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_commands.add_parser(
        "summarize", help="span/event/crowd-round totals of a JSONL trace"
    )
    summarize.add_argument("path", metavar="TRACE")
    validate = trace_commands.add_parser(
        "validate", help="check a run manifest against the schema"
    )
    validate.add_argument("path", metavar="MANIFEST")

    chaos = commands.add_parser(
        "chaos",
        help="fault-injection suite: every pipeline under an adversarial "
             "crowd (abandonment, timeouts, spammers, outage-free default)",
    )
    chaos.add_argument("--dataset", choices=dataset_names(),
                       default="restaurant")
    chaos.add_argument("--scale", type=float, default=0.1,
                       help="dataset size multiplier (keep small)")
    chaos.add_argument("--seeds", type=int, default=3,
                       help="number of seeds to sweep (0..N-1)")
    chaos.add_argument("--runtime-records", type=int, default=10_000,
                       help="record count of the sharded-pruning tier the "
                            "process-fault matrix (worker kills, delays, "
                            "poison chunks) runs at")
    chaos.add_argument("--no-runtime", action="store_true",
                       help="skip the process-fault matrix and the "
                            "checkpoint kill-resume checks (crowd-side "
                            "faults only)")
    chaos.add_argument("--output", default=None, metavar="PATH",
                       help="write the JSON summary to a file "
                            "(default: stdout)")

    report = commands.add_parser(
        "report", help="full markdown report for one dataset"
    )
    report.add_argument("dataset", choices=dataset_names())
    report.add_argument("--repetitions", type=int, default=3)
    report.add_argument("--no-sweeps", action="store_true",
                        help="skip the ε and T sweeps (faster)")
    report.add_argument("--output", default=None,
                        help="write to a file instead of stdout")
    _add_setting(report)
    _add_common(report)

    replicate = commands.add_parser(
        "replicate",
        help="run the paper's entire evaluation and emit one report",
    )
    replicate.add_argument("--repetitions", type=int, default=3)
    replicate.add_argument("--no-sweeps", action="store_true")
    replicate.add_argument("--output", default=None,
                           help="write to a file instead of stdout")
    _add_common(replicate)

    return parser


def _cmd_datasets(args: argparse.Namespace) -> None:
    rows = []
    for name in dataset_names():
        row = table3_row(name, scale=args.scale, seed=args.seed)
        rows.append([
            name,
            f"{row['records']:.0f}",
            f"{row['entities']:.0f}",
            f"{row['candidate_pairs']:.0f}",
            f"{row['error_3w']:.1%}",
            f"{row['error_5w']:.1%}",
        ])
    print(format_table(
        ["dataset", "records", "entities", "candidate pairs",
         "error 3w", "error 5w"],
        rows,
    ))


def _cmd_compare(args: argparse.Namespace) -> None:
    instance = _prepare(args)
    results = run_comparison(instance, repetitions=args.repetitions)
    print(format_comparison(results))


def _cmd_sweep_epsilon(args: argparse.Namespace) -> None:
    instance = _prepare(args)
    print(format_epsilon_sweep(
        epsilon_sweep(instance, repetitions=args.repetitions)
    ))


def _cmd_sweep_threshold(args: argparse.Namespace) -> None:
    instance = _prepare(args)
    print(format_threshold_sweep(
        threshold_sweep(instance, repetitions=args.repetitions)
    ))


def _check_run_paths(args: argparse.Namespace) -> Optional[Path]:
    """Fail fast on invalid --journal/--trace/--manifest/--output combos.

    Returns the resolved manifest path (``None`` when not tracing).  Every
    artifact must land in a distinct file — a journal silently overwritten
    by the trace stream (or vice versa) is unrecoverable.
    """
    if args.resume and not (args.journal or args.checkpoint_dir):
        raise SystemExit(
            "--resume requires --journal PATH and/or --checkpoint-dir DIR"
        )
    if args.manifest and not args.trace:
        raise SystemExit("--manifest requires --trace PATH")
    manifest_path: Optional[Path] = None
    if args.trace:
        from repro.obs import default_manifest_path
        manifest_path = (Path(args.manifest) if args.manifest
                         else default_manifest_path(args.trace))
    claimed = {}
    for flag, value in (
        ("--journal", args.journal),
        ("--trace", args.trace),
        ("--manifest", manifest_path),
        ("--output", args.output),
    ):
        if value is None:
            continue
        resolved = Path(value).resolve()
        if resolved in claimed:
            raise SystemExit(
                f"{claimed[resolved]} and {flag} point at the same file "
                f"({value}); every artifact needs its own path"
            )
        claimed[resolved] = flag
    return manifest_path


def _result_rollup(result) -> dict:
    return {
        "method": result.method,
        "f1": result.f1,
        "precision": result.precision,
        "recall": result.recall,
        "pairs_issued": result.pairs_issued,
        "iterations": result.iterations,
        "hits": result.hits,
        "num_clusters": result.num_clusters,
    }


def _finalize_cli_manifest(obs, run_config: dict, seeds: dict,
                           result) -> None:
    """Write (or amend) the run manifest with the measured result.

    ACD / PC-Pivot runs already wrote a manifest from inside ``run_acd``;
    this reloads it and adds the F1 rollup.  Baseline methods never enter
    ``run_acd``, so their manifest is assembled here from the same
    observability state.
    """
    from repro.obs import build_manifest, load_manifest, write_manifest
    obs.flush()
    rollup = _result_rollup(result)
    if obs.manifest_path.exists():
        manifest = load_manifest(obs.manifest_path)
        manifest["result"] = rollup
        manifest["metrics"] = obs.metrics.as_dict()
        manifest["spans"] = obs.tracer.span_summaries()
    else:
        manifest = build_manifest(
            command="run",
            config=run_config,
            seeds=seeds,
            stats={"pairs_issued": result.pairs_issued,
                   "iterations": result.iterations,
                   "hits": result.hits},
            metrics=obs.metrics.as_dict(),
            spans=obs.tracer.span_summaries(),
            dataset=obs.manifest_extra.get("dataset"),
            result=rollup,
            trace_path=obs.trace_path,
        )
    write_manifest(obs.manifest_path, manifest)


def _cmd_run(args: argparse.Namespace) -> None:
    manifest_path = _check_run_paths(args)
    run_config = {
        "dataset": args.dataset,
        "setting": args.setting,
        "scale": args.scale,
        "seed": args.seed,
        "method": args.method,
        "method_seed": args.method_seed,
        "refine_engine": args.refine_engine,
        "pivot_engine": args.pivot_engine,
        "pivot_shards": args.pivot_shards,
        "pivot_processes": args.pivot_processes,
        "refine_shards": args.refine_shards,
        "refine_processes": args.refine_processes,
        "pipeline": args.pipeline,
        "pipeline_workers": args.pipeline_workers,
        "engine": args.engine,
        "parallel": args.parallel,
        "shards": args.shards,
        "kernel_backend": args.kernel_backend,
    }
    seeds = {"dataset_seed": args.seed, "method_seed": args.method_seed}

    obs = None
    if args.trace:
        from repro.obs import ObsContext, dataset_fingerprint
        obs = ObsContext.to_path(args.trace, manifest_path=manifest_path)

    checkpoints = None
    restored_candidates = None
    if args.checkpoint_dir:
        from repro.runtime.checkpoint import (
            CheckpointStore,
            candidate_state,
            restore_candidates,
        )
        try:
            checkpoints = CheckpointStore(args.checkpoint_dir,
                                          config=run_config)
            if args.resume:
                payload = checkpoints.load("pruning")
                if payload is not None:
                    restored_candidates = restore_candidates(payload)
        except ValueError as error:
            raise SystemExit(str(error))

    instance = _prepare(args, obs=obs, candidates=restored_candidates)
    if checkpoints is not None:
        if restored_candidates is not None:
            print(f"resumed pruning checkpoint: "
                  f"{len(restored_candidates)} candidate pairs "
                  f"(pruning not re-executed)")
        else:
            checkpoints.save("pruning",
                             candidate_state(instance.candidates))
    if obs is not None:
        obs.manifest_extra.update(
            command="run", config=run_config, seeds=seeds,
            dataset=dataset_fingerprint(instance.dataset),
        )

    journaled = None
    if args.journal:
        from repro.crowd.persistence import JournalingAnswerFile
        journal_path = Path(args.journal)
        if (journal_path.exists() and journal_path.stat().st_size > 0
                and not args.resume):
            raise SystemExit(
                f"journal {journal_path} already exists; pass --resume to "
                "continue it or choose a fresh path"
            )
        try:
            journaled = JournalingAnswerFile(instance.answers, journal_path,
                                             config=run_config)
        except ValueError as error:
            raise SystemExit(str(error))
        if args.resume:
            print(f"resuming from {journal_path}: "
                  f"{journaled.resumed_answers} answers on record")
        instance = dataclasses.replace(instance, answers=journaled)
    gcer_budget = None
    if args.method == "GCER":
        # Budget probe: untraced on purpose, so the trace and manifest
        # describe only the GCER run itself.
        acd = run_method("ACD", instance, seed=args.method_seed)
        gcer_budget = int(acd.pairs_issued)
    try:
        result = run_method(args.method, instance, seed=args.method_seed,
                            gcer_budget=gcer_budget, obs=obs,
                            refine_engine=args.refine_engine,
                            pivot_engine=args.pivot_engine,
                            pivot_shards=args.pivot_shards,
                            pivot_processes=args.pivot_processes,
                            refine_shards=args.refine_shards,
                            refine_processes=args.refine_processes,
                            checkpoints=checkpoints, resume=args.resume,
                            pipeline=args.pipeline,
                            pipeline_workers=args.pipeline_workers)
    finally:
        if journaled is not None:
            journaled.close()
    if obs is not None:
        _finalize_cli_manifest(obs, run_config, seeds, result)
        obs.close()
        print(f"trace: {obs.trace_path}\nmanifest: {obs.manifest_path}")
    if args.output:
        payload = {"config": run_config, "result": _result_rollup(result)}
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    print(format_table(
        ["metric", "value"],
        [
            ["method", result.method],
            ["F1", f"{result.f1:.3f}"],
            ["precision", f"{result.precision:.3f}"],
            ["recall", f"{result.recall:.3f}"],
            ["pairs crowdsourced", f"{result.pairs_issued:.0f}"],
            ["crowd iterations", f"{result.iterations:.0f}"],
            ["HITs", f"{result.hits:.0f}"],
            ["clusters", f"{result.num_clusters:.0f}"],
        ],
    ))


def _cmd_trace(args: argparse.Namespace) -> None:
    if args.trace_command == "summarize":
        from repro.obs import format_trace_summary, summarize_trace
        try:
            summary = summarize_trace(args.path)
        except (OSError, ValueError) as error:
            raise SystemExit(str(error))
        print(format_trace_summary(summary))
    else:  # validate
        from repro.obs import load_manifest
        try:
            manifest = load_manifest(args.path)
        except OSError as error:
            raise SystemExit(str(error))
        except ValueError as error:
            raise SystemExit(str(error))
        print(f"{args.path}: valid manifest "
              f"(schema v{manifest['schema_version']}, "
              f"command {manifest['command']!r})")


def _cmd_report(args: argparse.Namespace) -> None:
    from repro.experiments.report import full_report_for_instance
    instance = _prepare(args)
    text = full_report_for_instance(
        instance, repetitions=args.repetitions,
        include_sweeps=not args.no_sweeps,
    )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)


def _cmd_replicate(args: argparse.Namespace) -> None:
    import sys as _sys
    from repro.experiments.replication import replicate
    text = replicate(
        scale=args.scale, seed=args.seed, repetitions=args.repetitions,
        include_sweeps=not args.no_sweeps,
        progress=lambda line: print(f"  ... {line}", file=_sys.stderr),
    )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)


def _cmd_chaos(args: argparse.Namespace) -> None:
    from repro.experiments.chaos import run_chaos_suite
    summary = run_chaos_suite(
        dataset_name=args.dataset, scale=args.scale,
        seeds=range(args.seeds),
        include_runtime=not args.no_runtime,
        runtime_records=args.runtime_records,
    )
    text = json.dumps(summary, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    if not summary["all_completed"]:
        raise SystemExit("chaos suite: not every pipeline completed")


_COMMANDS = {
    "datasets": _cmd_datasets,
    "compare": _cmd_compare,
    "sweep-epsilon": _cmd_sweep_epsilon,
    "sweep-threshold": _cmd_sweep_threshold,
    "run": _cmd_run,
    "trace": _cmd_trace,
    "chaos": _cmd_chaos,
    "report": _cmd_report,
    "replicate": _cmd_replicate,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    _COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
