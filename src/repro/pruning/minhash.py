"""MinHash + LSH blocking: sub-quadratic candidate generation.

Token blocking (the default) is exact for Jaccard but can be slow when a
frequent token creates a huge block.  MinHash locality-sensitive hashing
trades a controlled amount of recall for near-linear candidate generation:
records whose token-set Jaccard exceeds the LSH threshold collide in some
band with high probability.

The implementation is self-contained: universal hashing over a Mersenne
prime, banding with configurable (bands, rows), and a convenience
``minhash_blocking_pairs`` that plugs into
:func:`repro.pruning.candidate.build_candidate_set` via its
``candidate_pairs`` argument.
"""

from __future__ import annotations

import random
import zlib
from collections import defaultdict
from typing import Dict, FrozenSet, Iterator, List, Sequence, Set, Tuple

from repro.datasets.schema import Record
from repro.similarity.tokenize import token_set

Pair = Tuple[int, int]

_MERSENNE_PRIME = (1 << 61) - 1
_MAX_HASH = (1 << 32) - 1


class MinHasher:
    """MinHash signatures over token sets.

    Args:
        num_hashes: Signature length (= bands * rows when used with LSH).
        seed: Seed for the universal hash coefficients.
    """

    def __init__(self, num_hashes: int = 64, seed: int = 0):
        if num_hashes < 1:
            raise ValueError(f"num_hashes must be >= 1, got {num_hashes}")
        self.num_hashes = num_hashes
        rng = random.Random(seed)
        self._coefficients = [
            (rng.randrange(1, _MERSENNE_PRIME), rng.randrange(_MERSENNE_PRIME))
            for _ in range(num_hashes)
        ]

    def signature(self, tokens: FrozenSet[str]) -> Tuple[int, ...]:
        """The MinHash signature of a token set.

        An empty set gets the all-max signature (it collides only with
        other empty sets).
        """
        if not tokens:
            return tuple([_MAX_HASH] * self.num_hashes)
        # crc32, not built-in hash(): the latter is salted per process and
        # would break cross-process reproducibility.
        hashed = [zlib.crc32(token.encode("utf-8")) & _MAX_HASH
                  for token in tokens]
        signature = []
        for a, b in self._coefficients:
            signature.append(
                min(((a * h + b) % _MERSENNE_PRIME) & _MAX_HASH for h in hashed)
            )
        return tuple(signature)

    @staticmethod
    def estimate_jaccard(sig_a: Sequence[int], sig_b: Sequence[int]) -> float:
        """Estimated Jaccard: fraction of agreeing signature positions."""
        if len(sig_a) != len(sig_b):
            raise ValueError("signatures must have equal length")
        if not sig_a:
            return 0.0
        agreements = sum(1 for x, y in zip(sig_a, sig_b) if x == y)
        return agreements / len(sig_a)


def lsh_candidate_pairs(
    signatures: Dict[int, Tuple[int, ...]],
    bands: int = 16,
    rows: int = 4,
) -> Iterator[Pair]:
    """Banded LSH: yield record pairs colliding in at least one band.

    With ``bands * rows`` hash functions, the collision probability of a
    pair with Jaccard ``s`` is ``1 - (1 - s^rows)^bands`` — an S-curve with
    threshold around ``(1/bands)^(1/rows)``.
    """
    if not signatures:
        return
    signature_length = len(next(iter(signatures.values())))
    if bands * rows > signature_length:
        raise ValueError(
            f"bands * rows ({bands * rows}) exceeds signature length "
            f"({signature_length})"
        )
    emitted: Set[Pair] = set()
    for band in range(bands):
        lo = band * rows
        hi = lo + rows
        buckets: Dict[Tuple[int, ...], List[int]] = defaultdict(list)
        for record_id, signature in signatures.items():
            buckets[tuple(signature[lo:hi])].append(record_id)
        for bucket in buckets.values():
            if len(bucket) < 2:
                continue
            bucket.sort()
            for i, a in enumerate(bucket):
                for b in bucket[i + 1:]:
                    pair = (a, b)
                    if pair not in emitted:
                        emitted.add(pair)
                        yield pair


def minhash_blocking_pairs(
    records: Sequence[Record],
    bands: int = 16,
    rows: int = 4,
    seed: int = 0,
) -> Iterator[Pair]:
    """End-to-end MinHash LSH blocking over record texts.

    Drop-in alternative to
    :func:`repro.pruning.blocking.token_blocking_pairs`; pass the result as
    ``candidate_pairs`` to :func:`~repro.pruning.candidate.build_candidate_set`
    (exact machine scores are still computed for surviving pairs — LSH only
    decides which pairs get scored).
    """
    hasher = MinHasher(num_hashes=bands * rows, seed=seed)
    signatures = {
        record.record_id: hasher.signature(token_set(record.text))
        for record in records
    }
    return lsh_candidate_pairs(signatures, bands=bands, rows=rows)
