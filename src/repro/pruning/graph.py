"""The candidate graph ``G = (V_R, E_S)``.

Every clustering algorithm in the paper operates on the undirected graph
whose vertices are records and whose edges are candidate pairs (Table 1).
:class:`CandidateGraph` provides the mutable view the pivot algorithms need
(vertex removal as clusters form) without copying adjacency sets.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Set, Tuple

from repro.datasets.schema import canonical_pair

Pair = Tuple[int, int]


class CandidateGraph:
    """Undirected graph over record ids with O(1) amortized vertex removal.

    Removal marks vertices dead and filters them lazily from neighbor
    queries — the access pattern of Crowd-Pivot/Partial-Pivot, which remove
    whole clusters per iteration, never re-inserting.
    """

    def __init__(self, vertices: Iterable[int], edges: Iterable[Pair]):
        self._adjacency: Dict[int, Set[int]] = {v: set() for v in vertices}
        for raw in edges:
            a, b = canonical_pair(*raw)
            if a not in self._adjacency or b not in self._adjacency:
                raise ValueError(f"edge ({a}, {b}) references unknown vertex")
            self._adjacency[a].add(b)
            self._adjacency[b].add(a)
        self._alive: Set[int] = set(self._adjacency)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._alive)

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._alive

    @property
    def vertices(self) -> Set[int]:
        """The set of live vertices (a copy)."""
        return set(self._alive)

    def is_empty(self) -> bool:
        return not self._alive

    def neighbors(self, vertex: int) -> Tuple[int, ...]:
        """Live neighbors of a live vertex, sorted for determinism.

        Returned as an immutable tuple so callers can never corrupt the
        graph's internal state through the result.
        """
        if vertex not in self._alive:
            raise KeyError(f"vertex {vertex} is not in the graph")
        return tuple(
            sorted(n for n in self._adjacency[vertex] if n in self._alive)
        )

    def degree(self, vertex: int) -> int:
        """Number of live neighbors, in O(deg) without sorting."""
        if vertex not in self._alive:
            raise KeyError(f"vertex {vertex} is not in the graph")
        alive = self._alive
        return sum(1 for n in self._adjacency[vertex] if n in alive)

    def has_edge(self, a: int, b: int) -> bool:
        """True iff both endpoints are live and adjacent."""
        return (
            a in self._alive and b in self._alive and b in self._adjacency.get(a, ())
        )

    def edges(self) -> Iterator[Pair]:
        """All live edges, canonical and sorted."""
        for a in sorted(self._alive):
            for b in self._adjacency[a]:
                if b in self._alive and a < b:
                    yield (a, b)

    def num_edges(self) -> int:
        """Number of live edges, counted without materializing them."""
        alive = self._alive
        return sum(
            sum(1 for n in self._adjacency[v] if n in alive)
            for v in alive
        ) // 2

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def remove_vertices(self, vertices: Iterable[int]) -> None:
        """Remove a set of vertices (and implicitly their incident edges)."""
        for vertex in vertices:
            self._alive.discard(vertex)

    def copy(self) -> "CandidateGraph":
        """An independent copy with the same live vertices and edges."""
        clone = CandidateGraph.__new__(CandidateGraph)
        clone._adjacency = {v: set(ns) for v, ns in self._adjacency.items()}
        clone._alive = set(self._alive)
        return clone


class EagerCandidateGraph(CandidateGraph):
    """Fast-path candidate graph: eager edge cleanup and cached queries.

    The lazy base class filters dead vertices out of the *full* adjacency
    set (and re-sorts the survivors) on every ``neighbors()`` call — fine
    for a handful of queries, quadratic in spirit for the pivot engines,
    which walk every live vertex's neighborhood every round.  This variant
    removes edges eagerly when a vertex dies, so a live vertex's adjacency
    set contains live neighbors only: ``degree`` is O(1), ``num_edges`` is
    a cached counter, and ``neighbors()`` serves a memoized sorted tuple
    that is invalidated only when an incident vertex is removed.

    Query results are identical to the base class for the same sequence of
    operations (property-tested in ``tests/pruning/test_graph.py``); only
    the cost model changes.
    """

    def __init__(self, vertices: Iterable[int], edges: Iterable[Pair]):
        super().__init__(vertices, edges)
        self._sorted: Dict[int, Tuple[int, ...]] = {}
        self._num_edges = sum(
            len(ns) for ns in self._adjacency.values()
        ) // 2

    def neighbors(self, vertex: int) -> Tuple[int, ...]:
        """Live neighbors, sorted; the memoized entry is an immutable
        tuple, so sharing it with callers is safe."""
        if vertex not in self._alive:
            raise KeyError(f"vertex {vertex} is not in the graph")
        cached = self._sorted.get(vertex)
        if cached is None:
            cached = tuple(sorted(self._adjacency[vertex]))
            self._sorted[vertex] = cached
        return cached

    def degree(self, vertex: int) -> int:
        """Number of live neighbors, in O(1)."""
        if vertex not in self._alive:
            raise KeyError(f"vertex {vertex} is not in the graph")
        return len(self._adjacency[vertex])

    def num_edges(self) -> int:
        """Number of live edges, in O(1)."""
        return self._num_edges

    def remove_vertices(self, vertices: Iterable[int]) -> None:
        """Remove vertices and eagerly drop their incident edges."""
        removed = {v for v in vertices if v in self._alive}
        if not removed:
            return
        self._alive -= removed
        adjacency = self._adjacency
        for vertex in removed:
            neighbors = adjacency.pop(vertex)
            self._sorted.pop(vertex, None)
            # Each edge is decremented exactly once: an edge between two
            # removed vertices disappears from the second endpoint's set
            # when the first is processed.
            self._num_edges -= len(neighbors)
            for neighbor in neighbors:
                peer = adjacency.get(neighbor)
                if peer is not None:
                    peer.discard(vertex)
                    self._sorted.pop(neighbor, None)

    def copy(self) -> "EagerCandidateGraph":
        clone = EagerCandidateGraph.__new__(EagerCandidateGraph)
        clone._adjacency = {v: set(ns) for v, ns in self._adjacency.items()}
        clone._alive = set(self._alive)
        clone._sorted = {}
        clone._num_edges = self._num_edges
        return clone


def graph_from_candidates(record_ids: Iterable[int],
                          pairs: Iterable[Pair]) -> CandidateGraph:
    """Build ``G = (V_R, E_S)`` from the record set and candidate set."""
    return CandidateGraph(record_ids, pairs)
