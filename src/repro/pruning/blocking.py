"""Blocking strategies: cheap pre-filters that avoid scoring all O(n^2) pairs.

The paper's pruning phase conceptually evaluates the similarity of *every*
pair and keeps those above τ.  For token-overlap metrics such as Jaccard a
pair with zero shared tokens scores 0 < τ, so an inverted-index block over
tokens yields exactly the same candidate set at a fraction of the cost.
Sorted-neighborhood blocking is also provided; it is the clustering substrate
of the CrowdER+ baseline and a classic technique in its own right.  The
blocking-key -> shard assignment used by the sharded scale-out join also
lives here (:func:`shard_of_token`).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Iterator, List, Sequence, Set, Tuple

from repro.datasets.schema import Record, canonical_pair
from repro.similarity.tokenize import word_tokens

Pair = Tuple[int, int]


def token_blocking_pairs(records: Sequence[Record],
                         max_block_size: int = 0) -> Iterator[Pair]:
    """Yield every pair of records sharing at least one word token.

    For set-overlap similarities (Jaccard, cosine) this loses no pair with a
    nonzero score.  Each pair is yielded exactly once, in canonical order.

    Deduplication uses the *least-common-token* rule instead of an
    O(#pairs) ``seen`` set: a pair is emitted only from the
    lexicographically smallest token the two records share (among tokens
    whose block survives ``max_block_size``).  Peak memory is then bounded
    by the record token sets, not by the emitted pair count.

    Args:
        records: Records to block.
        max_block_size: If > 0, skip blocks (tokens) whose posting list is
            longer than this — standard stop-word suppression that trades a
            little recall for a lot of speed.  0 disables the cap.
    """
    postings: Dict[str, List[int]] = defaultdict(list)
    token_sets: Dict[int, Set[str]] = {}
    for record in records:
        tokens = set(word_tokens(record.text))
        token_sets[record.record_id] = tokens
        for token in tokens:
            postings[token].append(record.record_id)

    skipped: Set[str] = set()
    if max_block_size:
        skipped = {
            token for token, posting in postings.items()
            if len(posting) > max_block_size
        }

    def smallest_shared(a: int, b: int) -> str:
        small, large = token_sets[a], token_sets[b]
        if len(small) > len(large):
            small, large = large, small
        return min(
            token for token in small
            if token in large and token not in skipped
        )

    for token in sorted(postings):
        if token in skipped:
            continue
        posting = postings[token]
        posting.sort()
        for i, a in enumerate(posting):
            for b in posting[i + 1:]:
                if smallest_shared(a, b) == token:
                    yield (a, b)


def sorted_neighborhood_pairs(records: Sequence[Record],
                              key: Callable[[Record], str],
                              window: int = 3) -> Iterator[Pair]:
    """Classic sorted-neighborhood blocking.

    Records are sorted by ``key``; every pair within a sliding window of
    ``window`` records is emitted.  Used by the CrowdER+ baseline's
    clustering step and available as a general blocking strategy.
    """
    if window < 2:
        raise ValueError(f"window must be >= 2, got {window}")
    ordered = sorted(records, key=key)
    emitted: Set[Pair] = set()
    for i, record in enumerate(ordered):
        for j in range(i + 1, min(i + window, len(ordered))):
            pair = canonical_pair(record.record_id, ordered[j].record_id)
            if pair not in emitted:
                emitted.add(pair)
                yield pair


def shard_of_token(token_rank: int, num_shards: int) -> int:
    """Deterministic blocking-key -> shard assignment.

    The sharded similarity join (:mod:`repro.pruning.shard`) partitions
    work by *blocking key* — the canonical token rank that generated a
    candidate — not by record: a record participates in every shard owning
    one of its prefix tokens, which is exactly what makes the per-shard
    joins collectively exhaustive.  Round-robin over the canonical rank is
    used instead of a string hash so the assignment is identical across
    Python processes and runs (``hash(str)`` is salted per process).

    >>> [shard_of_token(rank, 4) for rank in range(6)]
    [0, 1, 2, 3, 0, 1]
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    return token_rank % num_shards


def all_pairs(records: Sequence[Record]) -> Iterator[Pair]:
    """Every unordered pair of record ids — the naive O(n^2) enumeration."""
    ids = sorted(record.record_id for record in records)
    for i, a in enumerate(ids):
        for b in ids[i + 1:]:
            yield (a, b)
