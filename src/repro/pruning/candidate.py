"""The pruning phase: build the candidate set ``S``.

Phase 1 of ACD (Section 3): score record pairs with a machine similarity
``f`` and keep pairs with ``f > τ`` (paper: Jaccard, τ = 0.3).  The result is
a :class:`CandidateSet` carrying both the surviving pairs and their machine
scores — the scores feed the refinement phase's histogram estimator and
several baselines' pair orderings.

Engines
-------
``build_candidate_set`` picks among three ways of producing ``S``:

* ``reference`` — the seed implementation: enumerate candidate pairs
  (token blocking / all pairs / caller-supplied) and score each one.
* ``prefix`` — the length- and prefix-filtered set-similarity join
  (:mod:`repro.pruning.prefix_join`); only valid for set-overlap metrics,
  for which it provably produces the identical :class:`CandidateSet`.
* ``auto`` (default) — ``prefix`` whenever it is provably equivalent to
  what ``reference`` would compute, else ``reference``; the opt-in
  ``parallel=N`` knob fans the reference scoring loop out to worker
  processes for expensive non-set metrics.

Orthogonally to the engine, the prefix join itself dispatches between two
*kernel backends* (:data:`~repro.similarity.kernels.KERNEL_BACKENDS`): the
``scalar`` per-pair reference and the ``vectorized`` numpy batch path of
:mod:`repro.pruning.shard`, which also accepts a ``shards`` count for
blocking-key partitioned (optionally multi-process) execution.  All
combinations produce byte-identical candidate sets; backends and shard
counts only move wall-clock and memory.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.datasets.schema import Record, canonical_pair
from repro.obs import maybe_span
from repro.perf.timing import StageTimings
from repro.pruning.blocking import all_pairs, token_blocking_pairs
from repro.similarity.composite import SET_METRIC_FUNCTIONS, SimilarityFunction
from repro.similarity.kernels import numpy_available, resolve_kernel_backend

Pair = Tuple[int, int]

DEFAULT_THRESHOLD = 0.3

ENGINES = ("auto", "reference", "prefix")


@dataclass(frozen=True)
class CandidateSet:
    """The pruning phase's output: pairs with machine score above τ.

    Attributes:
        pairs: Canonical pairs, sorted for determinism.
        machine_scores: Machine similarity ``f`` for every pair in ``pairs``.
        threshold: The τ used to build this set.
    """

    pairs: Tuple[Pair, ...]
    machine_scores: Dict[Pair, float]
    threshold: float

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[Pair]:
        return iter(self.pairs)

    def __contains__(self, pair: Pair) -> bool:
        return canonical_pair(*pair) in self.machine_scores

    def score(self, record_a: int, record_b: int) -> float:
        """Machine score of a pair; 0.0 if the pair was pruned.

        The paper defines ``f_c = 0`` for pruned pairs; returning 0 for the
        machine score mirrors that convention for estimation purposes.
        """
        return self.machine_scores.get(canonical_pair(record_a, record_b), 0.0)

    def sorted_by_score(self, descending: bool = True) -> List[Pair]:
        """Pairs ordered by machine score (TransM issues pairs this way)."""
        return sorted(
            self.pairs,
            key=lambda pair: (self.machine_scores[pair], pair),
            reverse=descending,
        )


def _prefix_join_eligible(
    similarity: SimilarityFunction,
    candidate_pairs: Optional[Iterable[Pair]],
    use_token_blocking: bool,
) -> bool:
    """Whether the prefix join provably reproduces the reference output.

    Caller-supplied pairs restrict scoring arbitrarily — never joinable.
    With token blocking on, the join is equivalent only when the metric
    compares *word-token* sets (the blocking domain); with blocking off the
    join matches all-pairs on any set domain once empty-set pairs are added.
    """
    if candidate_pairs is not None or similarity.set_metric is None:
        return False
    if use_token_blocking:
        return similarity.set_domain == "word"
    return True


def build_candidate_set(
    records: Sequence[Record],
    similarity: SimilarityFunction,
    threshold: float = DEFAULT_THRESHOLD,
    candidate_pairs: Optional[Iterable[Pair]] = None,
    use_token_blocking: bool = True,
    engine: str = "auto",
    parallel: int = 0,
    shards: int = 0,
    kernel_backend: str = "auto",
    timings: Optional[StageTimings] = None,
    obs=None,
    supervisor_policy=None,
    fault_plan=None,
) -> CandidateSet:
    """Run the pruning phase.

    Args:
        records: The record set ``R``.
        similarity: Machine similarity function ``f``.
        threshold: τ; pairs with ``f > τ`` survive.
        candidate_pairs: Optionally restrict scoring to these pairs
            (e.g. from a custom blocker).  When ``None``, uses token
            blocking (exact for token-overlap metrics) or all pairs.
        use_token_blocking: Whether to use the token-blocking pre-filter when
            ``candidate_pairs`` is not given.  Disable for similarity metrics
            that can score > τ with zero shared word tokens (e.g. q-gram or
            edit-distance metrics).
        engine: ``auto`` | ``reference`` | ``prefix`` (see module docstring).
        parallel: Worker processes; for the reference engine this fans out
            the scoring loop, for the sharded prefix join it runs shards in
            parallel (needs ``shards`` > 1 to matter there).
        shards: Blocking-key shards for the prefix join (0/1 = unsharded).
            Any value yields byte-identical output; > 1 is a scale knob.
        kernel_backend: ``auto`` | ``vectorized`` | ``scalar`` — how prefix
            join candidates are verified (see
            :mod:`repro.similarity.kernels`).  ``auto`` uses the vectorized
            kernel whenever numpy is importable.
        timings: Optional :class:`~repro.perf.timing.StageTimings`; records
            ``blocking`` and ``scoring`` stage wall-clock.
        obs: Optional :class:`~repro.obs.ObsContext`; the phase runs inside
            a ``pruning`` span and reports record / survivor gauges.
        supervisor_policy: Optional
            :class:`~repro.runtime.supervisor.SupervisorPolicy` tuning the
            fault handling of parallel execution (both the chunked
            reference scorer and the sharded join).
        fault_plan: Optional
            :class:`~repro.runtime.faults.ProcessFaultPlan` injecting
            deterministic process faults into the worker pool (chaos
            testing only; output stays byte-identical).

    Returns:
        The :class:`CandidateSet` ``S``.
    """
    if not 0.0 <= threshold < 1.0:
        raise ValueError(f"threshold must be in [0, 1), got {threshold}")
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    if isinstance(shards, str):
        from repro.runtime.autoshard import resolve_auto_shards

        shards = resolve_auto_shards("pruning", records=len(records),
                                     requested=shards, obs=obs)
        if shards > 1 and (engine == "reference" or not _prefix_join_eligible(
                similarity, candidate_pairs, use_token_blocking)):
            # The heuristic never forces sharding onto the reference path.
            shards = 0
    if shards < 0:
        raise ValueError(f"shards must be >= 0, got {shards}")
    resolved_backend = resolve_kernel_backend(kernel_backend)

    eligible = _prefix_join_eligible(similarity, candidate_pairs,
                                     use_token_blocking)
    if engine == "prefix" and not eligible:
        raise ValueError(
            "the prefix engine needs a set-overlap similarity, no external "
            "candidate_pairs, and a blocking domain matching the metric "
            f"(similarity={similarity.name!r})"
        )
    chosen = ("prefix" if engine == "prefix" or (engine == "auto" and eligible)
              else "reference")
    if chosen == "reference":
        if shards > 1:
            raise ValueError(
                "shards > 1 applies only to the prefix join; the chosen "
                f"engine here is 'reference' (engine={engine!r}, "
                f"similarity={similarity.name!r})"
            )
        if kernel_backend == "vectorized":
            raise ValueError(
                "kernel_backend='vectorized' applies only to the prefix "
                "join; the chosen engine here is 'reference' "
                f"(engine={engine!r}, similarity={similarity.name!r})"
            )
    use_sharded = (chosen == "prefix"
                   and (shards > 1 or resolved_backend == "vectorized"))
    if use_sharded and not numpy_available():
        # shards > 1 with an auto/scalar backend and no numpy: the sharded
        # join is array-based, so degrade to the (identical) scalar join.
        warnings.warn(
            f"shards={shards} requested but numpy is not importable; "
            "running the unsharded scalar prefix join (identical output)",
            RuntimeWarning, stacklevel=2,
        )
        use_sharded = False
    with maybe_span(obs, "pruning", engine=chosen,
                    records=len(records), threshold=threshold,
                    kernel_backend=resolved_backend,
                    shards=max(shards, 1) if chosen == "prefix" else 0) as span:
        if use_sharded:
            surviving, scores = _run_sharded_join(
                records, similarity, threshold,
                include_empty_pairs=not use_token_blocking,
                num_shards=max(shards, 1),
                processes=parallel,
                kernel_backend=resolved_backend,
                timings=timings,
                obs=obs,
                supervisor_policy=supervisor_policy,
                fault_plan=fault_plan,
            )
        elif chosen == "prefix":
            surviving, scores = _run_prefix_join(
                records, similarity, threshold,
                include_empty_pairs=not use_token_blocking,
                timings=timings,
            )
        else:
            surviving, scores = _run_reference(
                records, similarity, threshold, candidate_pairs,
                use_token_blocking, parallel, timings, obs,
                supervisor_policy, fault_plan,
            )
        if obs is not None:
            span.set_attr("candidate_pairs", len(surviving))
            obs.metrics.gauge(
                "pruning_records", help="Records entering the pruning phase"
            ).set(len(records))
            obs.metrics.gauge(
                "pruning_candidate_pairs",
                help="Pairs surviving the machine-similarity threshold",
            ).set(len(surviving))
    return CandidateSet(pairs=tuple(surviving), machine_scores=scores,
                        threshold=threshold)


@contextmanager
def _stage(timings: Optional[StageTimings], name: str) -> Iterator[None]:
    """Record a stage when a timer is attached; free otherwise."""
    if timings is None:
        yield
    else:
        with timings.stage(name):
            yield


def _run_prefix_join(
    records: Sequence[Record],
    similarity: SimilarityFunction,
    threshold: float,
    include_empty_pairs: bool,
    timings: Optional[StageTimings],
) -> Tuple[List[Pair], Dict[Pair, float]]:
    from repro.pruning.prefix_join import prefix_filtered_candidates

    assert similarity.set_metric is not None
    surviving, scores = prefix_filtered_candidates(
        records,
        set_of=similarity.set_of,
        set_function=SET_METRIC_FUNCTIONS[similarity.set_metric],
        metric=similarity.set_metric,
        threshold=threshold,
        include_empty_pairs=include_empty_pairs,
        timings=timings,
    )
    # Keep later phases' memoized reads warm, as the reference loop would.
    similarity.seed_cache(scores)
    return surviving, scores


def _run_sharded_join(
    records: Sequence[Record],
    similarity: SimilarityFunction,
    threshold: float,
    include_empty_pairs: bool,
    num_shards: int,
    processes: int,
    kernel_backend: str,
    timings: Optional[StageTimings],
    obs,
    supervisor_policy=None,
    fault_plan=None,
) -> Tuple[List[Pair], Dict[Pair, float]]:
    from repro.pruning.shard import sharded_prefix_filtered_candidates

    assert similarity.set_metric is not None
    surviving, scores = sharded_prefix_filtered_candidates(
        records,
        set_of=similarity.set_of,
        set_function=SET_METRIC_FUNCTIONS[similarity.set_metric],
        metric=similarity.set_metric,
        threshold=threshold,
        num_shards=num_shards,
        processes=processes,
        kernel_backend=kernel_backend,
        include_empty_pairs=include_empty_pairs,
        timings=timings,
        obs=obs,
        supervisor_policy=supervisor_policy,
        fault_plan=fault_plan,
    )
    # Keep later phases' memoized reads warm, as the reference loop would.
    similarity.seed_cache(scores)
    return surviving, scores


def _run_reference(
    records: Sequence[Record],
    similarity: SimilarityFunction,
    threshold: float,
    candidate_pairs: Optional[Iterable[Pair]],
    use_token_blocking: bool,
    parallel: int,
    timings: Optional[StageTimings],
    obs=None,
    supervisor_policy=None,
    fault_plan=None,
) -> Tuple[List[Pair], Dict[Pair, float]]:
    by_id = {record.record_id: record for record in records}
    # Caller-supplied pair streams may repeat pairs (in either order); the
    # internal blockers already emit each pair exactly once.
    needs_dedupe = candidate_pairs is not None
    if candidate_pairs is None:
        if use_token_blocking:
            candidate_pairs = token_blocking_pairs(records)
        else:
            candidate_pairs = all_pairs(records)

    if parallel > 1 or timings is not None:
        # Materialize the pair stream so blocking and scoring time apart
        # (and so chunks can be fanned out to workers).
        with _stage(timings, "blocking"):
            unique = _canonical_unique(candidate_pairs, needs_dedupe)
        with _stage(timings, "scoring"):
            if parallel > 1:
                from repro.pruning.parallel import score_pairs_parallel

                scores = score_pairs_parallel(
                    unique,
                    texts={rid: record.text for rid, record in by_id.items()},
                    metric=similarity.text_similarity,
                    threshold=threshold,
                    processes=parallel,
                    obs=obs,
                    policy=supervisor_policy,
                    fault_plan=fault_plan,
                )
                similarity.seed_cache(scores)
            else:
                scores = {}
                for pair in unique:
                    score = similarity(by_id[pair[0]], by_id[pair[1]])
                    if score > threshold:
                        scores[pair] = score
            surviving = sorted(scores)
        return surviving, scores

    surviving = []
    scores: Dict[Pair, float] = {}
    # Track *all* scored pairs, not just survivors: a duplicate of a
    # sub-threshold pair must not be scored twice.
    scored: Set[Pair] = set()
    for raw_pair in candidate_pairs:
        pair = canonical_pair(*raw_pair) if needs_dedupe else raw_pair
        if needs_dedupe:
            if pair in scored:
                continue
            scored.add(pair)
        score = similarity(by_id[pair[0]], by_id[pair[1]])
        if score > threshold:
            surviving.append(pair)
            scores[pair] = score
    surviving.sort()
    return surviving, scores


def _canonical_unique(pairs: Iterable[Pair], needs_dedupe: bool) -> List[Pair]:
    """Canonicalize and (when necessary) deduplicate a pair stream,
    preserving first-seen order."""
    if not needs_dedupe:
        return list(pairs)
    seen: Set[Pair] = set()
    unique: List[Pair] = []
    for raw_pair in pairs:
        pair = canonical_pair(*raw_pair)
        if pair not in seen:
            seen.add(pair)
            unique.append(pair)
    return unique
