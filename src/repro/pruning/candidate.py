"""The pruning phase: build the candidate set ``S``.

Phase 1 of ACD (Section 3): score record pairs with a machine similarity
``f`` and keep pairs with ``f > τ`` (paper: Jaccard, τ = 0.3).  The result is
a :class:`CandidateSet` carrying both the surviving pairs and their machine
scores — the scores feed the refinement phase's histogram estimator and
several baselines' pair orderings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.datasets.schema import Record, canonical_pair
from repro.pruning.blocking import all_pairs, token_blocking_pairs
from repro.similarity.composite import SimilarityFunction

Pair = Tuple[int, int]

DEFAULT_THRESHOLD = 0.3


@dataclass(frozen=True)
class CandidateSet:
    """The pruning phase's output: pairs with machine score above τ.

    Attributes:
        pairs: Canonical pairs, sorted for determinism.
        machine_scores: Machine similarity ``f`` for every pair in ``pairs``.
        threshold: The τ used to build this set.
    """

    pairs: Tuple[Pair, ...]
    machine_scores: Dict[Pair, float]
    threshold: float

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[Pair]:
        return iter(self.pairs)

    def __contains__(self, pair: Pair) -> bool:
        return canonical_pair(*pair) in self.machine_scores

    def score(self, record_a: int, record_b: int) -> float:
        """Machine score of a pair; 0.0 if the pair was pruned.

        The paper defines ``f_c = 0`` for pruned pairs; returning 0 for the
        machine score mirrors that convention for estimation purposes.
        """
        return self.machine_scores.get(canonical_pair(record_a, record_b), 0.0)

    def sorted_by_score(self, descending: bool = True) -> List[Pair]:
        """Pairs ordered by machine score (TransM issues pairs this way)."""
        return sorted(
            self.pairs,
            key=lambda pair: (self.machine_scores[pair], pair),
            reverse=descending,
        )


def build_candidate_set(
    records: Sequence[Record],
    similarity: SimilarityFunction,
    threshold: float = DEFAULT_THRESHOLD,
    candidate_pairs: Optional[Iterable[Pair]] = None,
    use_token_blocking: bool = True,
) -> CandidateSet:
    """Run the pruning phase.

    Args:
        records: The record set ``R``.
        similarity: Machine similarity function ``f``.
        threshold: τ; pairs with ``f > τ`` survive.
        candidate_pairs: Optionally restrict scoring to these pairs
            (e.g. from a custom blocker).  When ``None``, uses token
            blocking (exact for token-overlap metrics) or all pairs.
        use_token_blocking: Whether to use the token-blocking pre-filter when
            ``candidate_pairs`` is not given.  Disable for similarity metrics
            that can score > τ with zero shared word tokens (e.g. q-gram or
            edit-distance metrics).

    Returns:
        The :class:`CandidateSet` ``S``.
    """
    if not 0.0 <= threshold < 1.0:
        raise ValueError(f"threshold must be in [0, 1), got {threshold}")
    by_id = {record.record_id: record for record in records}
    if candidate_pairs is None:
        if use_token_blocking:
            candidate_pairs = token_blocking_pairs(records)
        else:
            candidate_pairs = all_pairs(records)

    surviving: List[Pair] = []
    scores: Dict[Pair, float] = {}
    for raw_pair in candidate_pairs:
        pair = canonical_pair(*raw_pair)
        if pair in scores:
            continue
        score = similarity(by_id[pair[0]], by_id[pair[1]])
        if score > threshold:
            surviving.append(pair)
            scores[pair] = score
    surviving.sort()
    # Drop scores of pairs that did not survive: keep the mapping minimal.
    scores = {pair: scores[pair] for pair in surviving}
    return CandidateSet(pairs=tuple(surviving), machine_scores=scores,
                        threshold=threshold)
