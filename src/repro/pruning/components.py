"""Connected components of the candidate graph, and shard packing.

Cluster generation decomposes exactly along connected components of
``G = (V_R, E_S)``: Crowd-Pivot only ever issues pivot-incident edges,
and removing a cluster in one component never changes the live
neighborhood of another.  The sharded pivot engine therefore uses the
component — not the record — as its unit of distribution: this module
finds the components (a ``scipy.sparse.csgraph`` label pass when scipy
is importable, a pure-Python union-find otherwise — identical canonical
output either way) and packs them into shard tasks largest-first (LPT
scheduling), so the biggest components land in different shards and
worker wall-clock stays balanced.

Everything here is deterministic: components come out sorted by their
smallest vertex (members ascending), and the packing breaks ties by
component order and bin index.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Sequence, Tuple

Pair = Tuple[int, int]


def connected_components(
    vertices: Iterable[int],
    pairs: Iterable[Pair],
) -> List[Tuple[int, ...]]:
    """Connected components of the graph over ``vertices`` and ``pairs``.

    Isolated vertices form singleton components.  Returns every component
    as a sorted tuple of members, the component list itself sorted by
    smallest member — a canonical order independent of input order and
    of which backend computed it.
    """
    vertices = list(vertices)
    pairs = list(pairs)
    try:
        return _components_sparse(vertices, pairs)
    except ImportError:
        return _components_python(vertices, pairs)


def _components_python(
    vertices: Sequence[int],
    pairs: Sequence[Pair],
) -> List[Tuple[int, ...]]:
    """Union-find fallback (no third-party dependencies)."""
    parent: Dict[int, int] = {v: v for v in vertices}

    def find(v: int) -> int:
        root = v
        while parent[root] != root:
            root = parent[root]
        while parent[v] != root:  # path compression
            parent[v], v = root, parent[v]
        return root

    for a, b in pairs:
        if a not in parent or b not in parent:
            raise ValueError(f"pair ({a}, {b}) references unknown vertex")
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            # Union by smaller root id keeps the forest deterministic.
            if root_b < root_a:
                root_a, root_b = root_b, root_a
            parent[root_b] = root_a

    members: Dict[int, List[int]] = {}
    for v in parent:
        members.setdefault(find(v), []).append(v)
    return [tuple(sorted(group))
            for _, group in sorted(members.items())]


def _components_sparse(
    vertices: Sequence[int],
    pairs: Sequence[Pair],
) -> List[Tuple[int, ...]]:
    """Vectorized component labelling via ``scipy.sparse.csgraph``.

    At the 100k-record bench tier the union-find loop costs more than
    half the sharded engine's parent-side budget; the sparse label pass
    plus one ``lexsort`` does the same work in a few tens of
    milliseconds.
    """
    import numpy as np
    from scipy.sparse import coo_matrix
    from scipy.sparse.csgraph import connected_components as sparse_cc

    verts = np.unique(np.fromiter(vertices, dtype=np.int64))
    n = int(verts.size)
    edges = np.array(pairs, dtype=np.int64).reshape(-1, 2)
    if edges.size:
        if n:
            index = np.searchsorted(verts, edges)
            known = verts[np.minimum(index, n - 1)] == edges
        else:
            index = edges
            known = np.zeros(edges.shape, dtype=bool)
        rows = known.all(axis=1)
        if not rows.all():
            a, b = edges[int(np.flatnonzero(~rows)[0])]
            raise ValueError(
                f"pair ({int(a)}, {int(b)}) references unknown vertex")
        graph = coo_matrix(
            (np.ones(len(index), dtype=np.int8),
             (index[:, 0], index[:, 1])),
            shape=(n, n))
        _, labels = sparse_cc(graph, directed=False)
    else:
        labels = np.arange(n)
    if not n:
        return []
    # Sort by (label, vertex): members come out ascending within each
    # label run, and slicing at label boundaries yields the components.
    order = np.lexsort((verts, labels))
    ordered = verts[order].tolist()
    bounds = (np.flatnonzero(np.diff(labels[order])) + 1).tolist()
    groups = [tuple(ordered[i:j])
              for i, j in zip([0, *bounds], [*bounds, len(ordered)])]
    groups.sort(key=lambda group: group[0])
    return groups


def pack_components(
    components: Iterable[Tuple[int, ...]],
    num_shards: int,
) -> List[List[int]]:
    """Pack component indices into ``num_shards`` bins, largest first.

    Classic LPT scheduling: components are taken in decreasing size and
    each goes to the currently lightest bin (ties: the earlier component,
    the lower bin index), bounding imbalance while staying deterministic.
    A ``(load, bin)`` heap serves the lightest bin in O(log shards) per
    component instead of a linear scan.  Returns one list of component
    indices per shard; bins may be empty when there are fewer components
    than shards.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    sized = sorted(
        ((len(component), index) for index, component in
         enumerate(components)),
        key=lambda item: (-item[0], item[1]),
    )
    bins: List[List[int]] = [[] for _ in range(num_shards)]
    # Already heap-ordered: loads all zero, bin indices ascending.
    heap: List[Tuple[int, int]] = [(0, shard) for shard in range(num_shards)]
    for size, index in sized:
        load, target = heapq.heappop(heap)
        bins[target].append(index)
        heapq.heappush(heap, (load + size, target))
    return bins
