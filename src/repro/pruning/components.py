"""Connected components of the candidate graph, and shard packing.

Cluster generation decomposes exactly along connected components of
``G = (V_R, E_S)``: Crowd-Pivot only ever issues pivot-incident edges,
and removing a cluster in one component never changes the live
neighborhood of another.  The sharded pivot engine therefore uses the
component — not the record — as its unit of distribution: this module
finds the components (a ``scipy.sparse.csgraph`` label pass when scipy
is importable, a pure-Python union-find otherwise — identical canonical
output either way) and packs them into shard tasks largest-first (LPT
scheduling), so the biggest components land in different shards and
worker wall-clock stays balanced.

Everything here is deterministic: components come out sorted by their
smallest vertex (members ascending), and the packing breaks ties by
component order and bin index.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Sequence, Tuple

Pair = Tuple[int, int]


def connected_components(
    vertices: Iterable[int],
    pairs: Iterable[Pair],
) -> List[Tuple[int, ...]]:
    """Connected components of the graph over ``vertices`` and ``pairs``.

    Isolated vertices form singleton components.  Returns every component
    as a sorted tuple of members, the component list itself sorted by
    smallest member — a canonical order independent of input order and
    of which backend computed it.
    """
    vertices = list(vertices)
    pairs = list(pairs)
    try:
        return _components_sparse(vertices, pairs)
    except ImportError:
        return _components_python(vertices, pairs)


def _components_python(
    vertices: Sequence[int],
    pairs: Sequence[Pair],
) -> List[Tuple[int, ...]]:
    """Union-find fallback (no third-party dependencies)."""
    parent: Dict[int, int] = {v: v for v in vertices}

    def find(v: int) -> int:
        root = v
        while parent[root] != root:
            root = parent[root]
        while parent[v] != root:  # path compression
            parent[v], v = root, parent[v]
        return root

    for a, b in pairs:
        if a not in parent or b not in parent:
            raise ValueError(f"pair ({a}, {b}) references unknown vertex")
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            # Union by smaller root id keeps the forest deterministic.
            if root_b < root_a:
                root_a, root_b = root_b, root_a
            parent[root_b] = root_a

    members: Dict[int, List[int]] = {}
    for v in parent:
        members.setdefault(find(v), []).append(v)
    return [tuple(sorted(group))
            for _, group in sorted(members.items())]


def _components_sparse(
    vertices: Sequence[int],
    pairs: Sequence[Pair],
) -> List[Tuple[int, ...]]:
    """Vectorized component labelling via ``scipy.sparse.csgraph``.

    At the 100k-record bench tier the union-find loop costs more than
    half the sharded engine's parent-side budget; the sparse label pass
    plus one ``lexsort`` does the same work in a few tens of
    milliseconds.
    """
    import numpy as np
    from scipy.sparse import coo_matrix
    from scipy.sparse.csgraph import connected_components as sparse_cc

    verts = np.unique(np.fromiter(vertices, dtype=np.int64))
    n = int(verts.size)
    edges = np.array(pairs, dtype=np.int64).reshape(-1, 2)
    if edges.size:
        if n:
            index = np.searchsorted(verts, edges)
            known = verts[np.minimum(index, n - 1)] == edges
        else:
            index = edges
            known = np.zeros(edges.shape, dtype=bool)
        rows = known.all(axis=1)
        if not rows.all():
            a, b = edges[int(np.flatnonzero(~rows)[0])]
            raise ValueError(
                f"pair ({int(a)}, {int(b)}) references unknown vertex")
        graph = coo_matrix(
            (np.ones(len(index), dtype=np.int8),
             (index[:, 0], index[:, 1])),
            shape=(n, n))
        _, labels = sparse_cc(graph, directed=False)
    else:
        labels = np.arange(n)
    if not n:
        return []
    # Sort by (label, vertex): members come out ascending within each
    # label run, and slicing at label boundaries yields the components.
    order = np.lexsort((verts, labels))
    ordered = verts[order].tolist()
    bounds = (np.flatnonzero(np.diff(labels[order])) + 1).tolist()
    groups = [tuple(ordered[i:j])
              for i, j in zip([0, *bounds], [*bounds, len(ordered)])]
    groups.sort(key=lambda group: group[0])
    return groups


class IncrementalComponents:
    """Streamed union-find with blocking-key *sealing* for the pipeline.

    The pipelined executor feeds each pruning shard's surviving edges in
    as the shard finishes.  Every record carries a *touch mask* — the set
    of pruning shards whose blocking-key range can emit an edge incident
    to it (a bit per shard).  Because the sharded prefix join generates a
    pair only from a prefix token present in *both* records, any future
    edge incident to a component member must come from a shard in the
    component's combined mask; once all those shards are done, the
    component is **sealed** — it can neither gain edges nor merge with
    another component — and is safe to dispatch downstream while the
    remaining shards still run.

    ``finish_shard`` returns the newly sealed components (sorted member
    tuple plus the surviving edges among them, in canonical order) so the
    caller can stream them straight into per-component workers.  Only
    vertices incident to at least one edge are tracked (``touched``);
    the rest are trivially sealed singletons the caller appends itself.
    Sealing order depends on shard completion order, but the sealed
    components plus the untouched singletons always equal
    :func:`connected_components` over the full edge set —
    property-tested in ``tests/runtime/test_pipeline.py``.
    """

    def __init__(self, vertices: Iterable[int],
                 touch_masks: Dict[int, int], num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self._universe = set(vertices)
        self._touch = touch_masks
        self._num_shards = num_shards
        self._done_mask = 0
        # Vertices are *admitted* lazily on their first incident edge:
        # the overwhelming majority of records never appear in a
        # surviving pair, and building per-vertex union-find state for
        # all of them costs more than the entire streamed merge.  An
        # untouched vertex is trivially its own sealed singleton — the
        # caller reconstructs those from ``touched`` at the end.
        self._parent: Dict[int, int] = {}
        self._members: Dict[int, List[int]] = {}
        self._edges: Dict[int, List[Pair]] = {}
        self._masks: Dict[int, int] = {}
        self._sealed: Dict[int, bool] = {}
        # Lazy seal schedule: bucket ``k`` holds roots to recheck when
        # shard ``k`` finishes (each root parked on its lowest undone
        # mask bit — it cannot seal before that shard completes, so no
        # earlier recheck is needed).  Roots whose whole mask is already
        # done wait in ``_ripe`` and seal at the next completion.  This
        # replaces a full scan of every open root per shard: each root
        # is rechecked at most once per mask bit.
        self._waiting: List[List[int]] = [[] for _ in range(num_shards)]
        self._ripe: List[int] = []

    @property
    def touched(self):
        """Vertices admitted so far (incident to at least one edge)."""
        return self._parent.keys()

    def _admit(self, v: int) -> int:
        if v not in self._universe:
            raise ValueError(f"vertex {v} is unknown")
        self._parent[v] = v
        self._members[v] = [v]
        self._edges[v] = []
        mask = self._touch.get(v, 0)
        self._masks[v] = mask
        remaining = mask & ~self._done_mask
        if remaining:
            self._waiting[(remaining & -remaining).bit_length()
                          - 1].append(v)
        else:
            self._ripe.append(v)
        return v

    def _find(self, v: int) -> int:
        parent = self._parent
        root = v
        while parent[root] != root:
            root = parent[root]
        while parent[v] != root:  # path compression
            parent[v], v = root, parent[v]
        return root

    def add_edge(self, a: int, b: int) -> None:
        """Union the endpoints' components and record the edge."""
        try:
            root_a = (self._find(a) if a in self._parent
                      else self._admit(a))
            root_b = (self._find(b) if b in self._parent
                      else self._admit(b))
        except ValueError:
            raise ValueError(
                f"pair ({a}, {b}) references unknown vertex") from None
        if self._sealed.get(root_a) or self._sealed.get(root_b):
            raise RuntimeError(
                f"edge ({a}, {b}) touches an already-sealed component — "
                "the touch-mask sealing invariant is violated")
        if root_a == root_b:
            self._edges[root_a].append((a, b))
            return
        # Union by smaller root id keeps the forest deterministic.
        if root_b < root_a:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._members[root_a].extend(self._members.pop(root_b))
        self._edges[root_a].extend(self._edges.pop(root_b))
        self._masks[root_a] |= self._masks.pop(root_b)
        self._edges[root_a].append((a, b))

    def finish_shard(
        self, shard_index: int,
    ) -> List[Tuple[Tuple[int, ...], Tuple[Pair, ...]]]:
        """Mark a pruning shard done; return the newly sealed components.

        Each sealed component comes back as ``(members, edges)`` with
        members ascending and edges deduplicated in sorted order; the
        list itself is ordered by smallest member.
        """
        if not 0 <= shard_index < self._num_shards:
            raise ValueError(
                f"shard_index must be in [0, {self._num_shards}), "
                f"got {shard_index}")
        self._done_mask |= 1 << shard_index
        done = self._done_mask
        candidates = self._waiting[shard_index]
        self._waiting[shard_index] = []
        if self._ripe:
            candidates = self._ripe + candidates
            self._ripe = []
        newly_sealed = []
        parent = self._parent
        for root in candidates:
            if parent.get(root) != root or self._sealed.get(root):
                continue  # merged away, or sealed via an earlier bucket
            remaining = self._masks[root] & ~done
            if remaining:
                self._waiting[(remaining & -remaining).bit_length()
                              - 1].append(root)
                continue
            self._sealed[root] = True
            members = tuple(sorted(self._members[root]))
            edges = tuple(sorted(set(self._edges[root])))
            newly_sealed.append((members, edges))
        newly_sealed.sort(key=lambda item: item[0][0])
        return newly_sealed

    @property
    def all_sealed(self) -> bool:
        """Every admitted component sealed (untouched vertices are
        trivially sealed singletons and are not counted here)."""
        parent = self._parent
        return all(self._sealed.get(v)
                   for v in parent if parent[v] == v)


def pack_components(
    components: Iterable[Tuple[int, ...]],
    num_shards: int,
) -> List[List[int]]:
    """Pack component indices into ``num_shards`` bins, largest first.

    Classic LPT scheduling: components are taken in decreasing size and
    each goes to the currently lightest bin (ties: the earlier component,
    the lower bin index), bounding imbalance while staying deterministic.
    A ``(load, bin)`` heap serves the lightest bin in O(log shards) per
    component instead of a linear scan.  Returns one list of component
    indices per shard; bins may be empty when there are fewer components
    than shards.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    sized = sorted(
        ((len(component), index) for index, component in
         enumerate(components)),
        key=lambda item: (-item[0], item[1]),
    )
    bins: List[List[int]] = [[] for _ in range(num_shards)]
    # Already heap-ordered: loads all zero, bin indices ascending.
    heap: List[Tuple[int, int]] = [(0, shard) for shard in range(num_shards)]
    for size, index in sized:
        load, target = heapq.heappop(heap)
        bins[target].append(index)
        heapq.heappush(heap, (load + size, target))
    return bins
