"""Length- and prefix-filtered set-similarity join (PPJoin/AllPairs style).

The reference pruning path *emits everything*: token blocking yields every
pair sharing at least one token, and the score loop evaluates each one.  For
a τ-thresholded set metric almost all of those evaluations are wasted — the
classic prefix-filter family (Chaudhuri et al. 2006; Bayardo et al. 2007;
Xiao et al. 2008) proves that a pair can pass the threshold only if the two
records share a token inside a short *prefix* of their canonically-ordered
token lists, and only if their set sizes are compatible.

This module implements that join for the four plain set-overlap metrics the
library ships (Jaccard, set cosine/Ochiai, Dice, overlap coefficient) and
guarantees **bit-identical output** to the reference path:

* candidate *generation* uses conservative filters (never drops a pair whose
  true score can exceed τ; float bounds are relaxed by an epsilon), and
* candidate *verification* calls the exact same set function on the exact
  same frozensets the reference metric compares, with the same clamping —
  so surviving pairs and their scores match the reference float-for-float.

Records whose set is empty never share a token, mirroring token blocking
(which never pairs them).  The all-pairs reference, by contrast, scores
empty-vs-empty as 1.0; ``include_empty_pairs=True`` reproduces that.

This module is the *scalar reference* of the join family: one record at a
time, Python frozensets, exact per-pair verification.  Its scale-out twin —
the same candidate rule run over interned int-id arrays, in parallel
shards, with numpy batch verification — lives in :mod:`repro.pruning.shard`
and is candidate- and survivor-identical by construction.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.datasets.schema import Record, canonical_pair
from repro.perf.timing import StageTimings

Pair = Tuple[int, int]
SetFunction = Callable[[FrozenSet[str], FrozenSet[str]], float]

#: Float-safety slack: all generation bounds are relaxed by this much, so a
#: borderline pair is verified (cheap) rather than wrongly filtered.
EPS = 1e-9

#: Metrics with real prefix/length filters.  The overlap coefficient is
#: join-able but admits no prefix shortening (a one-token partner can satisfy
#: any τ), so it degrades to a full-index scan with exact verification.
PREFIX_METRICS = ("jaccard", "cosine", "dice", "overlap")


def _prefix_need(metric: str, threshold: float, size: int) -> float:
    """Lower bound on the overlap any τ-passing partner must share with a
    record of ``size`` tokens (minimized over all eligible partner sizes).

    Derivations (strict score > τ throughout):
      jaccard: i > τ(l_a+l_b)/(1+τ) >= τ·l   (partner no smaller than τ·l)
      cosine:  i > τ·sqrt(l_a·l_b)   >= τ²·l
      dice:    i > τ(l_a+l_b)/2      >= τ/(2-τ)·l
      overlap: i > τ·min(l_a,l_b)    >= τ·1   (no useful bound)
    """
    if metric == "jaccard":
        return threshold * size
    if metric == "cosine":
        return threshold * threshold * size
    if metric == "dice":
        return threshold / (2.0 - threshold) * size
    if metric == "overlap":
        return 0.0
    raise ValueError(f"unknown prefix-join metric {metric!r}")


def partner_size_need(metric: str, threshold: float, size: int) -> float:
    """Lower bound on an eligible partner's set size (partner must be
    strictly larger than this in exact arithmetic).

    Shared with the sharded vectorized join (:mod:`repro.pruning.shard`),
    which must apply the *same* float bound to stay candidate-identical.
    """
    if metric == "jaccard":
        return threshold * size
    if metric == "cosine":
        return threshold * threshold * size
    if metric == "dice":
        return threshold / (2.0 - threshold) * size
    if metric == "overlap":
        return 0.0
    raise ValueError(f"unknown prefix-join metric {metric!r}")


def prefix_length(metric: str, threshold: float, size: int) -> int:
    """Number of leading (canonically ordered) tokens that must be indexed
    so that no τ-passing pair is missed.  Always in [1, size] for size >= 1.
    """
    if size == 0:
        return 0
    # Smallest integer overlap strictly above the bound; the epsilon only
    # ever lengthens the prefix (safe direction).
    required = math.floor(_prefix_need(metric, threshold, size) - EPS) + 1
    return max(1, min(size, size - required + 1))


def canonical_token_order(
    sets: Sequence[FrozenSet[str]],
) -> Dict[str, Tuple[int, str]]:
    """A global total order over tokens: ascending document frequency, ties
    broken lexicographically.  Rare-first ordering keeps prefixes selective
    and posting lists short."""
    frequency: Counter = Counter()
    for token_set in sets:
        frequency.update(token_set)
    return {token: (count, token) for token, count in frequency.items()}


def prefix_filtered_candidates(
    records: Sequence[Record],
    set_of: Callable[[Record], FrozenSet[str]],
    set_function: SetFunction,
    metric: str,
    threshold: float,
    include_empty_pairs: bool = False,
    timings: Optional[StageTimings] = None,
) -> Tuple[List[Pair], Dict[Pair, float]]:
    """Run the join; returns ``(sorted surviving pairs, pair -> score)``.

    Args:
        records: The record set ``R``.
        set_of: Maps a record to the frozenset the metric compares (cached
            word tokens or q-grams — see ``SimilarityFunction.set_of``).
        set_function: The exact set metric (e.g. ``jaccard``); used verbatim
            for verification so scores match the reference bit-for-bit.
        metric: One of :data:`PREFIX_METRICS` (selects the filter algebra).
        threshold: τ; pairs with score strictly above τ survive.
        include_empty_pairs: Also emit pairs of records with *empty* sets
            (scored by ``set_function(∅, ∅)``) — matches the all-pairs
            reference instead of the token-blocking reference.
        timings: Optional stage timer; records ``blocking`` (ordering,
            prefix index, candidate generation) and ``scoring``
            (exact verification).
    """
    if metric not in PREFIX_METRICS:
        raise ValueError(f"unknown prefix-join metric {metric!r}")
    if not 0.0 <= threshold < 1.0:
        raise ValueError(f"threshold must be in [0, 1), got {threshold}")
    timings = timings if timings is not None else StageTimings()

    with timings.stage("blocking"):
        sets: Dict[int, FrozenSet[str]] = {
            record.record_id: set_of(record) for record in records
        }
        nonempty = [record_id for record_id, s in sets.items() if s]
        empty = [record_id for record_id, s in sets.items() if not s]

        order = canonical_token_order([sets[record_id] for record_id in nonempty])
        sorted_tokens: Dict[int, List[str]] = {
            record_id: sorted(sets[record_id], key=order.__getitem__)
            for record_id in nonempty
        }
        # Process records in ascending set size (ties by id) so each probe
        # only ever meets partners that are no larger than itself.
        by_size = sorted(nonempty, key=lambda rid: (len(sets[rid]), rid))

        index: Dict[str, List[int]] = {}
        candidate_pairs: List[Pair] = []
        for record_id in by_size:
            tokens = sorted_tokens[record_id]
            size = len(tokens)
            size_need = partner_size_need(metric, threshold, size) - EPS
            probed: Dict[int, None] = {}
            prefix = tokens[:prefix_length(metric, threshold, size)]
            for token in prefix:
                for other_id in index.get(token, ()):
                    if other_id in probed:
                        continue
                    probed[other_id] = None
                    if len(sets[other_id]) < size_need:
                        continue  # too small for any τ-passing overlap
                    candidate_pairs.append(canonical_pair(other_id, record_id))
            for token in prefix:
                index.setdefault(token, []).append(record_id)

    surviving: List[Pair] = []
    scores: Dict[Pair, float] = {}
    with timings.stage("scoring"):
        for pair in candidate_pairs:
            score = set_function(sets[pair[0]], sets[pair[1]])
            score = min(1.0, max(0.0, score))
            if score > threshold:
                surviving.append(pair)
                scores[pair] = score
        if include_empty_pairs and len(empty) >= 2:
            empty_score = min(1.0, max(0.0, set_function(frozenset(),
                                                         frozenset())))
            if empty_score > threshold:
                ordered = sorted(empty)
                for i, a in enumerate(ordered):
                    for b in ordered[i + 1:]:
                        pair = (a, b)
                        surviving.append(pair)
                        scores[pair] = empty_score
        surviving.sort()
    return surviving, scores
