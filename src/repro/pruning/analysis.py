"""Pruning-phase analysis: what a threshold τ costs and buys.

The candidate set bounds every downstream method's recall: a duplicate pair
pruned away can never be recovered.  These utilities measure a candidate
set against the gold standard (recall / precision / reduction ratio) and
sweep τ to expose the trade-off the paper resolves at τ = 0.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.datasets.schema import Dataset
from repro.pruning.candidate import CandidateSet, build_candidate_set
from repro.similarity.composite import SimilarityFunction


@dataclass(frozen=True)
class PruningQuality:
    """How a candidate set relates to the gold duplicates.

    Attributes:
        threshold: The τ that produced the set.
        num_pairs: Candidate pairs retained.
        recall: Fraction of gold duplicate pairs present in the set (the
            ceiling on any downstream method's recall).
        precision: Fraction of candidate pairs that are true duplicates.
        reduction_ratio: 1 - |S| / C(n, 2): how much work pruning saved.
    """

    threshold: float
    num_pairs: int
    recall: float
    precision: float
    reduction_ratio: float


def evaluate_candidates(candidates: CandidateSet,
                        dataset: Dataset) -> PruningQuality:
    """Measure one candidate set against the dataset's gold standard."""
    gold_pairs = set(dataset.gold.duplicate_pairs())
    retained_duplicates = sum(
        1 for pair in candidates.pairs if pair in gold_pairs
    )
    recall = retained_duplicates / len(gold_pairs) if gold_pairs else 1.0
    precision = (retained_duplicates / len(candidates)
                 if len(candidates) else 1.0)
    total_pairs = len(dataset) * (len(dataset) - 1) // 2
    reduction = 1.0 - (len(candidates) / total_pairs if total_pairs else 0.0)
    return PruningQuality(
        threshold=candidates.threshold,
        num_pairs=len(candidates),
        recall=recall,
        precision=precision,
        reduction_ratio=reduction,
    )


def threshold_tradeoff(
    dataset: Dataset,
    similarity: SimilarityFunction,
    thresholds: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5),
) -> List[PruningQuality]:
    """Sweep τ and measure the recall/size trade-off at each point.

    The similarity function's memoization makes the sweep cheap: pairs are
    scored once and re-thresholded.
    """
    results = []
    for threshold in sorted(thresholds):
        candidates = build_candidate_set(
            dataset.records, similarity, threshold=threshold
        )
        results.append(evaluate_candidates(candidates, dataset))
    return results
