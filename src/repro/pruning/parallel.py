"""Opt-in multiprocessing pair scoring for non-set similarity metrics.

Set-overlap metrics go through the prefix-filtered join; everything else
(edit distance, Jaro-Winkler, Soft TF-IDF, weighted hybrids) must score each
candidate pair individually.  That loop is embarrassingly parallel, so
``build_candidate_set(..., parallel=N)`` fans the pair list out to ``N``
worker processes in deterministic chunks and merges the survivors.

The pool uses the ``fork`` start method and passes the metric to workers via
a module-global captured at fork time — this supports lambdas and closures
(which cannot be pickled).  On platforms without ``fork`` (e.g. Windows, or
macOS with the spawn default and no fork method) the scorer falls back to
the serial loop, so results are identical everywhere; parallelism is purely
a wall-clock optimization.  The fallback is *not* silent: it raises a
:class:`ParallelFallbackWarning` and, when an observability context is
attached, emits a ``pruning.parallel_fallback`` warning event so traces
record that a requested parallel run executed serially.

Fault tolerance: chunks run under the supervised pool of
:mod:`repro.runtime.supervisor` — a crashed (OOM-killed, segfaulted)
worker is detected and its chunk retried with backoff; chunks whose
retries exhaust degrade to in-process scoring in the parent.  Either way
the run completes with the same output.

Determinism: chunks are formed from the (deduplicated, ordered) pair list,
workers are pure functions, and results are merged in submission order, so
the surviving ``{pair: score}`` mapping is byte-identical to the serial loop
— for every schedule of worker crashes and retries.
"""

from __future__ import annotations

import multiprocessing
import warnings
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.runtime.faults import ProcessFaultPlan
from repro.runtime.supervisor import SupervisorPolicy, supervised_map

Pair = Tuple[int, int]
TextSimilarity = Callable[[str, str], float]

#: Worker payload captured at fork time (start method "fork" only).
_FORK_STATE: Dict[str, object] = {}

DEFAULT_CHUNK_SIZE = 2048


class ParallelFallbackWarning(RuntimeWarning):
    """A requested parallel pruning run fell back to the serial path."""


def fork_available() -> bool:
    """Whether the fork start method (required for the pool) exists."""
    return "fork" in multiprocessing.get_all_start_methods()


def notify_parallel_fallback(obs, *, requested: int, context: str) -> None:
    """Record that a ``parallel``/``processes`` request ran serially.

    Raises a :class:`ParallelFallbackWarning` (always) and emits a
    ``pruning.parallel_fallback`` warning event on ``obs`` (when attached)
    with the requested worker count and the call site — results are still
    byte-identical, only the wall-clock expectation is not met.
    """
    message = (
        f"{context}: {requested} worker processes requested but the 'fork' "
        "start method is unavailable on this platform; running serially "
        "(results are identical, only slower)"
    )
    warnings.warn(message, ParallelFallbackWarning, stacklevel=3)
    if obs is not None:
        obs.event(
            "pruning.parallel_fallback",
            requested=requested,
            context=context,
            reason="fork-unavailable",
        )


def _score_chunk(chunk: Sequence[Pair]) -> List[Tuple[Pair, float]]:
    """Score one chunk of canonical pairs; returns threshold survivors.

    Runs inside a forked worker: reads the texts/metric/threshold snapshot
    the parent published in :data:`_FORK_STATE` before creating the pool.
    """
    texts: Mapping[int, str] = _FORK_STATE["texts"]  # type: ignore[assignment]
    metric: TextSimilarity = _FORK_STATE["metric"]  # type: ignore[assignment]
    threshold: float = _FORK_STATE["threshold"]  # type: ignore[assignment]
    survivors: List[Tuple[Pair, float]] = []
    for pair in chunk:
        score = metric(texts[pair[0]], texts[pair[1]])
        score = min(1.0, max(0.0, score))
        if score > threshold:
            survivors.append((pair, score))
    return survivors


def _chunks(pairs: Sequence[Pair], chunk_size: int) -> List[Sequence[Pair]]:
    return [pairs[i:i + chunk_size] for i in range(0, len(pairs), chunk_size)]


def score_pairs_parallel(
    pairs: Sequence[Pair],
    texts: Mapping[int, str],
    metric: TextSimilarity,
    threshold: float,
    processes: int,
    chunk_size: Optional[int] = None,
    obs=None,
    policy: Optional[SupervisorPolicy] = None,
    fault_plan: Optional[ProcessFaultPlan] = None,
) -> Dict[Pair, float]:
    """Score canonical, deduplicated pairs; return ``{pair: score}`` for
    pairs with score strictly above ``threshold``.

    Args:
        pairs: Canonical unique pairs to score (any order; output is a dict).
        texts: ``record_id -> text`` for every id referenced by ``pairs``.
        metric: The raw text similarity (closures are fine — fork, not
            pickle, carries it to the workers).
        threshold: τ; survivors have score > τ after [0, 1] clamping.
        processes: Worker count; values <= 1 run the serial loop.
        chunk_size: Pairs per task (default ``DEFAULT_CHUNK_SIZE``, capped
            so every worker gets work).
        obs: Optional :class:`~repro.obs.ObsContext`; receives the
            ``pruning.parallel_fallback`` warning event if the pool cannot
            be created on this platform, plus the supervisor's
            ``runtime.*`` fault events.
        policy: Supervised-pool fault-handling knobs (retries, backoff,
            deadlines); defaults to
            :class:`~repro.runtime.supervisor.SupervisorPolicy`.
        fault_plan: Deterministic process-fault injection (chaos testing
            only).
    """
    if processes > 1 and len(pairs) > 0 and not fork_available():
        notify_parallel_fallback(obs, requested=processes,
                                 context="score_pairs_parallel")
    if processes <= 1 or len(pairs) == 0 or not fork_available():
        return _score_serial(pairs, texts, metric, threshold)

    size = chunk_size or min(
        DEFAULT_CHUNK_SIZE, max(1, (len(pairs) + processes - 1) // processes)
    )
    _FORK_STATE["texts"] = dict(texts)
    _FORK_STATE["metric"] = metric
    _FORK_STATE["threshold"] = threshold
    try:
        chunk_results, _ = supervised_map(
            _score_chunk, _chunks(pairs, size), processes,
            policy=policy, obs=obs, fault_plan=fault_plan,
            label="pruning.score_pairs",
        )
    finally:
        _FORK_STATE.clear()
    scores: Dict[Pair, float] = {}
    for chunk in chunk_results:
        scores.update(chunk)
    return scores


def _score_serial(
    pairs: Sequence[Pair],
    texts: Mapping[int, str],
    metric: TextSimilarity,
    threshold: float,
) -> Dict[Pair, float]:
    """The serial twin of the pool path (also its fallback)."""
    scores: Dict[Pair, float] = {}
    for pair in pairs:
        score = metric(texts[pair[0]], texts[pair[1]])
        score = min(1.0, max(0.0, score))
        if score > threshold:
            scores[pair] = score
    return scores
