"""Pruning phase: machine-based candidate generation (phase 1 of ACD).

Builds the candidate set ``S`` (pairs with machine similarity above τ) and
the candidate graph ``G = (V_R, E_S)`` all clustering algorithms run on.
"""

from repro.pruning.blocking import (
    all_pairs,
    sorted_neighborhood_pairs,
    token_blocking_pairs,
)
from repro.pruning.analysis import (
    PruningQuality,
    evaluate_candidates,
    threshold_tradeoff,
)
from repro.pruning.candidate import (
    DEFAULT_THRESHOLD,
    ENGINES,
    CandidateSet,
    build_candidate_set,
)
from repro.pruning.graph import CandidateGraph, graph_from_candidates
from repro.pruning.parallel import score_pairs_parallel
from repro.pruning.prefix_join import (
    prefix_filtered_candidates,
    prefix_length,
)
from repro.pruning.minhash import (
    MinHasher,
    lsh_candidate_pairs,
    minhash_blocking_pairs,
)

__all__ = [
    "DEFAULT_THRESHOLD",
    "ENGINES",
    "CandidateGraph",
    "CandidateSet",
    "MinHasher",
    "PruningQuality",
    "all_pairs",
    "build_candidate_set",
    "evaluate_candidates",
    "graph_from_candidates",
    "lsh_candidate_pairs",
    "minhash_blocking_pairs",
    "prefix_filtered_candidates",
    "prefix_length",
    "score_pairs_parallel",
    "sorted_neighborhood_pairs",
    "threshold_tradeoff",
    "token_blocking_pairs",
]
