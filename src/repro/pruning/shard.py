"""Sharded, vectorized prefix-filtered similarity join — the scale-out path.

The scalar join (:mod:`repro.pruning.prefix_join`) processes one record at a
time over Python frozensets; at 100k-1M records both its candidate-generation
probe loop and its per-pair verification are interpreter-bound.  This module
runs the *same* join — same canonical token order, same prefix lengths, same
partner-size bound, same exact verification — over interned int-rank arrays
(:mod:`repro.similarity.kernels`), partitioned into **shards by blocking
key** and verified in numpy blocks.

Algorithm
---------
1. Token sets are interned into a :class:`~repro.similarity.kernels.TokenVocabulary`
   whose dense ranks follow the canonical (document frequency, token) order,
   and flattened into one CSR :class:`~repro.similarity.kernels.EncodedRecords`
   store, rows sorted by the scalar join's processing order (set size, id).
2. The *prefix incidence* list — one ``(token rank, row)`` entry per prefix
   token per record — is built and sorted token-major.  Every entry whose
   group (posting list of one token) has at least one earlier entry is an
   *element*: it will pair with each of its predecessors, which is precisely
   the scalar join's probe/index rule (a pair is generated iff the two
   prefixes share a token).
3. Elements are partitioned into shards with
   :func:`repro.pruning.blocking.shard_of_token` (round-robin over the
   canonical rank).  Each shard generates its pair blocks with numpy
   (predecessor expansion), applies the partner-size filter, deduplicates,
   and verifies the survivors — vectorized batch scoring or the scalar set
   function, per the kernel backend.
4. The cross-shard merge unions the per-shard ``{pair: score}`` survivor
   maps.  A pair straddling shards (shared prefix tokens assigned to
   different shards) is verified in each, with bit-identical scores, so the
   union is order-independent; the merged map is emitted in sorted pair
   order, making the output deterministic for every shard count.

Shards run either in-process (deterministic loop) or in parallel worker
processes using the same ``fork``-pool pattern as
:mod:`repro.pruning.parallel` — state is published in a module global
captured at fork time, workers are pure, results are merged in shard order.
The worker pool is the supervised pool of
:mod:`repro.runtime.supervisor`: a crashed shard worker is detected and
its shard retried with backoff, and shards whose retries exhaust degrade
to in-process execution — the join completes with identical output under
any schedule of worker failures.  On platforms without ``fork`` the join
falls back to the in-process loop and reports it via
:func:`repro.pruning.parallel.notify_parallel_fallback`
(``pruning.parallel_fallback`` event + ``ParallelFallbackWarning``).

Equivalence contract: for every shard count and either kernel backend, the
surviving pair list and ``{pair: score}`` map are byte-identical to
:func:`repro.pruning.prefix_join.prefix_filtered_candidates` — the
candidate *sets* coincide by the argument above, and verification computes
the same IEEE-754 doubles (see :mod:`repro.similarity.kernels`).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.datasets.schema import Record
from repro.perf.timing import StageTimings
from repro.pruning.blocking import shard_of_token
from repro.pruning.parallel import fork_available, notify_parallel_fallback
from repro.runtime.faults import ProcessFaultPlan
from repro.runtime.supervisor import SupervisorPolicy, supervised_map
from repro.pruning.prefix_join import (
    EPS,
    PREFIX_METRICS,
    partner_size_need,
    prefix_length,
)
from repro.similarity.kernels import (
    EncodedRecords,
    TokenVocabulary,
    numpy_available,
    resolve_kernel_backend,
    score_encoded_pairs,
)

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None  # type: ignore[assignment]

Pair = Tuple[int, int]
SetFunction = Callable[[FrozenSet[str], FrozenSet[str]], float]

#: Upper bound on generated (pre-filter) pairs materialized per numpy block.
#: Bounds peak memory at roughly ``block * avg_tokens_per_pair * 8`` bytes
#: during verification, independent of the total candidate volume.
DEFAULT_PAIR_BLOCK_SIZE = 1 << 19

#: Worker payload captured at fork time (start method "fork" only).
_SHARD_STATE: Dict[str, object] = {}


class _JoinPlan:
    """Everything a shard worker needs, built once in the parent.

    All arrays index *rows* (positions in the size-ordered record list),
    not record ids; ``ids[row]`` maps back at emission time.
    """

    def __init__(self, encoded: EncodedRecords, rows_sorted, elem_row,
                 elem_k, elem_grp_start, elem_token, need,
                 sets_in_order: List[FrozenSet[str]]):
        self.encoded = encoded
        self.rows_sorted = rows_sorted
        self.elem_row = elem_row
        self.elem_k = elem_k
        self.elem_grp_start = elem_grp_start
        self.elem_token = elem_token
        self.need = need
        self.sets_in_order = sets_in_order


def _build_plan(
    sets: Dict[int, FrozenSet[str]],
    nonempty: List[int],
    metric: str,
    threshold: float,
) -> _JoinPlan:
    """Intern, encode, and lay out the prefix incidence for the join."""
    ordered_ids = sorted(nonempty, key=lambda rid: (len(sets[rid]), rid))
    vocab = TokenVocabulary.build([sets[rid] for rid in ordered_ids])
    encoded = EncodedRecords.from_sets(sets, ordered_ids, vocab)
    sets_in_order = [sets[rid] for rid in ordered_ids]

    sizes = encoded.counts
    # Per-size memos keep the float bounds literally identical to the
    # scalar join's per-record computations.
    prefix_of_size: Dict[int, int] = {}
    need_of_size: Dict[int, float] = {}
    for size in set(sizes.tolist()):
        prefix_of_size[size] = prefix_length(metric, threshold, size)
        need_of_size[size] = partner_size_need(metric, threshold, size) - EPS
    size_list = sizes.tolist()
    pcounts = _np.fromiter((prefix_of_size[size] for size in size_list),
                           dtype=_np.int64, count=len(size_list))
    need = _np.fromiter((need_of_size[size] for size in size_list),
                        dtype=_np.float64, count=len(size_list))

    # Prefix incidence: the first prefix_len ranks of each row (rows are
    # stored canonically sorted, so slicing the head IS the prefix).
    total = int(pcounts.sum())
    nrows = len(encoded)
    first_out = _np.repeat(_np.cumsum(pcounts) - pcounts, pcounts)
    within = _np.arange(total, dtype=_np.int64) - first_out
    src = _np.repeat(encoded.starts, pcounts) + within
    inc_tokens = encoded.flat[src]
    inc_rows = _np.repeat(_np.arange(nrows, dtype=_np.int64), pcounts)

    # Token-major, row-minor order: stable sort preserves the ascending
    # row (= processing) order inside each posting list.
    order = _np.argsort(inc_tokens, kind="stable")
    tokens_sorted = inc_tokens[order]
    rows_sorted = inc_rows[order]

    # Each incidence entry with k predecessors in its posting contributes
    # k candidate pairs; k == 0 entries (posting heads) contribute none.
    if total:
        new_group = _np.empty(total, dtype=bool)
        new_group[0] = True
        _np.not_equal(tokens_sorted[1:], tokens_sorted[:-1], out=new_group[1:])
        group_index = _np.cumsum(new_group) - 1
        group_start = _np.flatnonzero(new_group)
        elem_grp_start = group_start[group_index]
        elem_k = _np.arange(total, dtype=_np.int64) - elem_grp_start
    else:
        elem_grp_start = _np.zeros(0, dtype=_np.int64)
        elem_k = _np.zeros(0, dtype=_np.int64)
    active = elem_k > 0
    return _JoinPlan(
        encoded=encoded,
        rows_sorted=rows_sorted,
        elem_row=rows_sorted[active],
        elem_k=elem_k[active],
        elem_grp_start=elem_grp_start[active],
        elem_token=tokens_sorted[active],
        need=need,
        sets_in_order=sets_in_order,
    )


def record_shard_touch_masks(
    plan: _JoinPlan,
    metric: str,
    threshold: float,
    num_shards: int,
) -> Dict[int, int]:
    """Per-record bitmask of pruning shards that can emit incident pairs.

    The join generates a pair only from a prefix token present in *both*
    records' prefixes, and :func:`_join_shard` assigns that token's pairs
    to shard ``token % num_shards``.  Record ``r``'s touch set is
    therefore ``{token % num_shards for token in prefix(r) if token's
    prefix posting has >= 2 records}``: a token appearing in only one
    record's prefix can never pair it with anything, so it is dropped —
    in practice most prefix tokens are such singletons (prefix filtering
    deliberately picks the rarest tokens), and dropping them is what
    makes the masks narrow enough for components to seal while later
    shards still run.  (The partner-size filter only *removes* pairs, so
    the mask stays a safe over-approximation.)  Records with empty token
    sets — or whose prefix tokens are all singletons — are absent from
    the result; callers treat them as mask ``0`` (sealed immediately,
    which is exact: no future edge can touch them).

    The pipelined executor ORs these masks over union-find components to
    decide when a component is *sealed* (see
    :class:`repro.pruning.components.IncrementalComponents`).
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    sizes = plan.encoded.counts
    prefix_of_size = {size: prefix_length(metric, threshold, size)
                      for size in set(sizes.tolist())}
    size_list = sizes.tolist()
    pcounts = _np.fromiter((prefix_of_size[size] for size in size_list),
                           dtype=_np.int64, count=len(size_list))
    total = int(pcounts.sum())
    nrows = len(plan.encoded)
    first_out = _np.repeat(_np.cumsum(pcounts) - pcounts, pcounts)
    within = _np.arange(total, dtype=_np.int64) - first_out
    src = _np.repeat(plan.encoded.starts, pcounts) + within
    tokens = plan.encoded.flat[src]
    rows = _np.repeat(_np.arange(nrows, dtype=_np.int64), pcounts)
    # Keep only tokens shared by at least two prefixes: singletons can
    # never emit a pair, and they are the majority of prefix tokens.
    _, inverse, counts = _np.unique(tokens, return_inverse=True,
                                    return_counts=True)
    shared = counts[inverse] >= 2
    shards = tokens[shared] % num_shards
    packed = _np.unique(rows[shared] * num_shards + shards)
    ids = plan.encoded.ids.tolist()
    masks: Dict[int, int] = {}
    for key in packed.tolist():
        row, shard = divmod(key, num_shards)
        record_id = ids[row]
        masks[record_id] = masks.get(record_id, 0) | (1 << shard)
    return masks


def _process_element_batch(
    plan: _JoinPlan,
    element_indices,
    metric: str,
    threshold: float,
    kernel: str,
    set_function: SetFunction,
    survivors: Dict[Pair, float],
) -> int:
    """Expand one element batch into pairs, filter, verify, accumulate.

    Returns the number of (deduplicated, size-eligible) pairs verified.
    """
    k = plan.elem_k[element_indices]
    total = int(k.sum())
    if total == 0:
        return 0
    # Predecessor expansion: element e (row r at posting offset k_e) pairs
    # with the k_e earlier entries of its posting list.
    right_row = _np.repeat(plan.elem_row[element_indices], k)
    first = _np.cumsum(k) - k
    within = _np.arange(total, dtype=_np.int64) - _np.repeat(first, k)
    left_pos = _np.repeat(plan.elem_grp_start[element_indices], k) + within
    left_row = plan.rows_sorted[left_pos]

    # Partner-size filter — the probing (later, right) record's bound
    # applied to the indexed (earlier, left) record, as in the scalar join.
    keep = plan.encoded.counts[left_row] >= plan.need[right_row]
    left_row = left_row[keep]
    right_row = right_row[keep]
    if len(left_row) == 0:
        return 0

    # Deduplicate pairs generated from several shared prefix tokens.
    nrows = _np.int64(len(plan.encoded))
    packed = _np.unique(left_row * nrows + right_row)
    left_row = packed // nrows
    right_row = packed % nrows

    ids = plan.encoded.ids
    if kernel == "vectorized":
        scores = score_encoded_pairs(metric, plan.encoded, left_row, right_row)
        passing = scores > threshold
        left_ids = ids[left_row[passing]]
        right_ids = ids[right_row[passing]]
        low = _np.minimum(left_ids, right_ids)
        high = _np.maximum(left_ids, right_ids)
        survivors.update(zip(
            zip(low.tolist(), high.tolist()),
            scores[passing].tolist(),
        ))
    else:
        sets_in_order = plan.sets_in_order
        id_list = ids.tolist()
        for row_a, row_b in zip(left_row.tolist(), right_row.tolist()):
            score = set_function(sets_in_order[row_a], sets_in_order[row_b])
            score = min(1.0, max(0.0, score))
            if score > threshold:
                id_a, id_b = id_list[row_a], id_list[row_b]
                pair = (id_a, id_b) if id_a < id_b else (id_b, id_a)
                survivors[pair] = score
    return len(packed)


def _join_shard(
    plan: _JoinPlan,
    shard_index: int,
    num_shards: int,
    metric: str,
    threshold: float,
    kernel: str,
    set_function: SetFunction,
    pair_block_size: int,
) -> Dict[Pair, float]:
    """Run one shard's generation + verification; returns its survivors."""
    if num_shards > 1:
        # Vectorized form of blocking.shard_of_token over the element list.
        mine = _np.flatnonzero(plan.elem_token % num_shards == shard_index)
    else:
        mine = _np.arange(len(plan.elem_k), dtype=_np.int64)
    survivors: Dict[Pair, float] = {}
    if len(mine) == 0:
        return survivors
    pair_counts = _np.cumsum(plan.elem_k[mine])
    start = 0
    while start < len(mine):
        consumed = pair_counts[start - 1] if start else 0
        stop = int(_np.searchsorted(pair_counts, consumed + pair_block_size,
                                    side="left")) + 1
        stop = min(max(stop, start + 1), len(mine))
        _process_element_batch(
            plan, mine[start:stop], metric, threshold, kernel,
            set_function, survivors,
        )
        start = stop
    return survivors


def _run_shard_worker(shard_index: int) -> Dict[Pair, float]:
    """Pool entry point: reads the fork-time snapshot in _SHARD_STATE."""
    return _join_shard(
        _SHARD_STATE["plan"],  # type: ignore[arg-type]
        shard_index,
        _SHARD_STATE["num_shards"],  # type: ignore[arg-type]
        _SHARD_STATE["metric"],  # type: ignore[arg-type]
        _SHARD_STATE["threshold"],  # type: ignore[arg-type]
        _SHARD_STATE["kernel"],  # type: ignore[arg-type]
        _SHARD_STATE["set_function"],  # type: ignore[arg-type]
        _SHARD_STATE["pair_block_size"],  # type: ignore[arg-type]
    )


def sharded_prefix_filtered_candidates(
    records: Sequence[Record],
    set_of: Callable[[Record], FrozenSet[str]],
    set_function: SetFunction,
    metric: str,
    threshold: float,
    num_shards: int = 1,
    processes: int = 0,
    kernel_backend: str = "auto",
    include_empty_pairs: bool = False,
    timings: Optional[StageTimings] = None,
    obs=None,
    pair_block_size: int = DEFAULT_PAIR_BLOCK_SIZE,
    supervisor_policy: Optional[SupervisorPolicy] = None,
    fault_plan: Optional[ProcessFaultPlan] = None,
) -> Tuple[List[Pair], Dict[Pair, float]]:
    """Run the sharded vectorized join; same contract (and output, byte for
    byte) as :func:`repro.pruning.prefix_join.prefix_filtered_candidates`.

    Args:
        records: The record set ``R``.
        set_of: Maps a record to the frozenset the metric compares.
        set_function: The exact scalar set metric — used verbatim for
            verification under the ``scalar`` kernel, and as the equivalence
            reference of the ``vectorized`` kernel.
        metric: One of :data:`~repro.pruning.prefix_join.PREFIX_METRICS`.
        threshold: τ; pairs with score strictly above τ survive.
        num_shards: Blocking-key shards (>= 1).  Output is identical for
            every value; larger counts bound per-task memory and enable
            process parallelism.
        processes: Worker processes for the shard loop; <= 1 (or a single
            shard) runs in-process.  Requires the ``fork`` start method —
            without it the join falls back to the in-process loop and
            emits the ``pruning.parallel_fallback`` warning event.
        kernel_backend: ``auto`` | ``vectorized`` | ``scalar`` —
            verification kernel (see :mod:`repro.similarity.kernels`).
        include_empty_pairs: Also emit pairs of records with empty sets,
            matching the all-pairs reference (same as the scalar join).
        timings: Optional stage timer; ``blocking`` covers interning,
            encoding, and incidence layout, ``scoring`` covers shard
            execution, verification, and the cross-shard merge.
        obs: Optional :class:`~repro.obs.ObsContext` (fallback events and
            the supervised pool's ``runtime.*`` fault events).
        pair_block_size: Generated pairs per numpy block (memory bound).
        supervisor_policy: Fault-handling knobs of the shard worker pool
            (retries, backoff, straggler deadline); defaults to
            :class:`~repro.runtime.supervisor.SupervisorPolicy`.
        fault_plan: Deterministic process-fault injection (chaos testing
            only); task index = shard index.

    Raises:
        RuntimeError: When numpy is unavailable (the sharded join is
            inherently array-based; callers should degrade to the scalar
            join instead — ``build_candidate_set`` does).
    """
    if metric not in PREFIX_METRICS:
        raise ValueError(f"unknown prefix-join metric {metric!r}")
    if not 0.0 <= threshold < 1.0:
        raise ValueError(f"threshold must be in [0, 1), got {threshold}")
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if pair_block_size < 1:
        raise ValueError(f"pair_block_size must be >= 1, got {pair_block_size}")
    if not numpy_available():
        raise RuntimeError(
            "the sharded join requires numpy; use the scalar prefix join "
            "(repro.pruning.prefix_join) on numpy-free platforms"
        )
    kernel = resolve_kernel_backend(kernel_backend)
    timings = timings if timings is not None else StageTimings()

    with timings.stage("blocking"):
        sets: Dict[int, FrozenSet[str]] = {
            record.record_id: set_of(record) for record in records
        }
        nonempty = [record_id for record_id, s in sets.items() if s]
        empty = [record_id for record_id, s in sets.items() if not s]
        plan = _build_plan(sets, nonempty, metric, threshold)

    with timings.stage("scoring"):
        merged: Dict[Pair, float] = {}
        shard_results = _execute_shards(
            plan, num_shards, processes, metric, threshold, kernel,
            set_function, pair_block_size, obs,
            supervisor_policy, fault_plan,
        )
        for shard_survivors in shard_results:
            merged.update(shard_survivors)

        if include_empty_pairs and len(empty) >= 2:
            empty_score = min(1.0, max(0.0, set_function(frozenset(),
                                                         frozenset())))
            if empty_score > threshold:
                ordered = sorted(empty)
                for i, a in enumerate(ordered):
                    for b in ordered[i + 1:]:
                        merged[(a, b)] = empty_score

        surviving = sorted(merged)
        scores = {pair: merged[pair] for pair in surviving}
    return surviving, scores


def _execute_shards(
    plan: _JoinPlan,
    num_shards: int,
    processes: int,
    metric: str,
    threshold: float,
    kernel: str,
    set_function: SetFunction,
    pair_block_size: int,
    obs,
    supervisor_policy: Optional[SupervisorPolicy] = None,
    fault_plan: Optional[ProcessFaultPlan] = None,
) -> List[Dict[Pair, float]]:
    """All shards' survivor maps, in shard order (parallel when asked)."""
    want_parallel = processes > 1 and num_shards > 1 and len(plan.elem_k) > 0
    if want_parallel and not fork_available():
        notify_parallel_fallback(obs, requested=processes,
                                 context="sharded_prefix_filtered_candidates")
        want_parallel = False
    if not want_parallel:
        return [
            _join_shard(plan, shard, num_shards, metric, threshold, kernel,
                        set_function, pair_block_size)
            for shard in range(num_shards)
        ]

    _SHARD_STATE.update(
        plan=plan, num_shards=num_shards, metric=metric, threshold=threshold,
        kernel=kernel, set_function=set_function,
        pair_block_size=pair_block_size,
    )
    try:
        shard_results, _ = supervised_map(
            _run_shard_worker, range(num_shards),
            min(processes, num_shards),
            policy=supervisor_policy, obs=obs, fault_plan=fault_plan,
            label="pruning.shard_join",
        )
        return shard_results
    finally:
        _SHARD_STATE.clear()
