"""PC-Refine (Algorithm 5): parallel crowd-based cluster refinement.

Like Crowd-Refine, but when no free (known positive benefit) operation
exists, it packs a set ``O^i`` of mutually *independent* operations — chosen
greedily by descending benefit-cost ratio, since maximizing the overall ratio
Ψ is NP-hard (Lemma 5) — up to a total crowdsourcing budget ``T``, resolves
all their unknown pairs in a single crowd batch, and applies every operation
whose confirmed benefit is positive.  ``T = N_m / x`` where
``N_m = min(|R|^2 / (2|C|), N_u)`` (Section 5.4; the paper picks x = 8).
"""

from __future__ import annotations

import heapq

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.clustering import Clustering
from repro.core.estimator import DEFAULT_NUM_BUCKETS
from repro.core.evaluation_cache import EvaluationCache
from repro.core.operations import (
    Operation,
    OperationEvaluator,
    apply_operation,
)
from repro.core.refine import (
    BENEFIT_TOLERANCE,
    REFINE_ENGINES,
    OperationCache,
    apply_free_operations,
    build_estimator,
    enumerate_operations,
)
from repro.crowd.oracle import CrowdOracle
from repro.pruning.candidate import CandidateSet

DEFAULT_THRESHOLD_DIVISOR = 8.0

Pair = Tuple[int, int]


def _stage(timings, name: str):
    """Accumulating stage timer; no-op without a ``StageTimings`` sink."""
    return timings.stage(name) if timings is not None else nullcontext()


@dataclass
class PCRefineDiagnostics:
    """Per-run measurements for the T experiments (Figure 10).

    Attributes:
        batch_sizes: Fresh pairs crowdsourced in each parallel round.
        operations_packed: Size of ``O^i`` per round.
        operations_applied: Confirmed-positive operations applied per round.
        free_operations_applied: Zero-cost operations applied in total.
        operation_evaluations: Benefit/cost derivations the run performed —
            from-scratch evaluator walks on the reference engine; cache
            builds + refreshes on the fast engine.  The refine benchmark
            compares the two.
        evaluation_cache: Fast-engine :class:`~repro.core.evaluation_cache.
            EvaluationStats` snapshot (``None`` on the reference engine).
    """

    batch_sizes: List[int] = field(default_factory=list)
    operations_packed: List[int] = field(default_factory=list)
    operations_applied: List[int] = field(default_factory=list)
    free_operations_applied: int = 0
    operation_evaluations: int = 0
    evaluation_cache: Optional[Dict[str, float]] = None

    @property
    def rounds(self) -> int:
        return len(self.batch_sizes)


def refinement_budget(
    num_records: int,
    num_clusters: int,
    num_unknown_pairs: int,
    threshold_divisor: float = DEFAULT_THRESHOLD_DIVISOR,
) -> float:
    """The per-round crowdsourcing budget ``T`` of Section 5.4.

    ``|R|^2 / (2|C|)`` bounds the pairs needed to run all operations in one
    batch; ``N_u`` bounds what is still askable.  ``T`` is the smaller of the
    two divided by ``x`` (``threshold_divisor``).
    """
    if num_clusters < 1:
        raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
    if threshold_divisor <= 0:
        raise ValueError(
            f"threshold_divisor must be > 0, got {threshold_divisor}"
        )
    one_batch_maximum = num_records * num_records / (2.0 * num_clusters)
    return min(one_batch_maximum, float(num_unknown_pairs)) / threshold_divisor


def _pack_independent_operations(
    clustering: Clustering,
    candidates: CandidateSet,
    evaluator: OperationEvaluator,
    budget: float,
    ranking: str = "ratio",
    hard_budget: bool = False,
    timings=None,
) -> List[Operation]:
    """Greedy O^i construction (Algorithm 5 lines 9-14): scan operations by
    descending benefit-cost ratio; keep those with positive ratio that are
    independent of everything already packed; stop once the packed cost
    reaches the budget.

    ``ranking="benefit"`` ranks by estimated benefit alone instead — the
    cost-blind alternative the paper argues against (Section 5.2), kept as
    an ablation knob.

    ``hard_budget=True`` changes the stopping rule from Algorithm 5's
    ``Σc ≥ T`` (which lets the last packed operation overshoot) to a strict
    knapsack-style filter: an operation is only packed if its cost still
    fits.  Used to honor an exact caller-imposed pair cap.
    """
    if ranking not in ("ratio", "benefit"):
        raise ValueError(f"ranking must be 'ratio' or 'benefit', got {ranking!r}")
    scored: List[Tuple[float, int, Operation]] = []
    with _stage(timings, "refine.evaluate"):
        for operation in enumerate_operations(clustering, candidates):
            cost = evaluator.cost(operation)
            if cost <= 0:
                continue  # known benefit; handled by the free path
            benefit = evaluator.estimated_benefit(operation)
            key = benefit / cost if ranking == "ratio" else benefit
            if key > 0.0:
                scored.append((key, cost, operation))
    with _stage(timings, "refine.pack"):
        # Deterministic order: ratio desc, then a stable textual tiebreak.
        scored.sort(key=lambda item: (-item[0], repr(item[2])))

        packed: List[Operation] = []
        touched: Set[int] = set()
        total_cost = 0
        for ratio, cost, operation in scored:
            if total_cost >= budget:
                break
            if hard_budget and total_cost + cost > budget:
                continue
            if set(operation.touched_clusters) & touched:
                continue
            packed.append(operation)
            touched.update(operation.touched_clusters)
            total_cost += cost
    return packed


def _pack_independent_operations_fast(
    cache: OperationCache,
    evaluations: EvaluationCache,
    budget: float,
    ranking: str = "ratio",
    hard_budget: bool = False,
    timings=None,
) -> List[Operation]:
    """Fast-engine packer: identical packing decisions to
    :func:`_pack_independent_operations`, lazily ordered.

    Scores come from the shared :class:`EvaluationCache` instead of fresh
    evaluator walks, and the full ``sort`` is replaced by a heapified
    candidate list popped in exactly the reference's sorted order
    ``(-key, repr(op))`` — the budget usually exhausts long before the
    tail, so most of the ordering work is never paid.
    """
    if ranking not in ("ratio", "benefit"):
        raise ValueError(f"ranking must be 'ratio' or 'benefit', got {ranking!r}")
    by_ratio = ranking == "ratio"
    scored: List[Tuple[float, str, int, Operation]] = []
    with _stage(timings, "refine.evaluate"):
        for operation in cache.operations():
            if by_ratio:
                ratio, cost = evaluations.ratio_and_cost(operation)
                if cost <= 0:
                    continue  # known benefit; handled by the free path
                key = ratio
            else:
                cost = evaluations.cost(operation)
                if cost <= 0:
                    continue
                key = evaluations.estimated_benefit(operation)
            if key > 0.0:
                scored.append((-key, repr(operation), cost, operation))
    with _stage(timings, "refine.pack"):
        heapq.heapify(scored)

        packed: List[Operation] = []
        touched: Set[int] = set()
        total_cost = 0
        while scored:
            if total_cost >= budget:
                break
            _, _, cost, operation = heapq.heappop(scored)
            if hard_budget and total_cost + cost > budget:
                continue
            if set(operation.touched_clusters) & touched:
                continue
            packed.append(operation)
            touched.update(operation.touched_clusters)
            total_cost += cost
    return packed


def _pc_refine_reference(
    clustering: Clustering,
    candidates: CandidateSet,
    oracle: CrowdOracle,
    num_records: int,
    threshold_divisor: float,
    num_buckets: int,
    diagnostics: Optional[PCRefineDiagnostics],
    ranking: str,
    max_refinement_pairs: Optional[int],
    obs,
    timings=None,
) -> Clustering:
    """Reference engine: fresh evaluator walks, full re-enumeration and
    re-sort per round, per-round unknown-pair sweep.  The literal reading
    of Algorithm 5; kept for equivalence tests and as the benchmark
    baseline."""
    pairs_at_start = oracle.stats.pairs_issued
    estimator = build_estimator(candidates, oracle, num_buckets=num_buckets)
    evaluator = OperationEvaluator(clustering, candidates, oracle, estimator)

    def finish() -> Clustering:
        if diagnostics is not None:
            diagnostics.operation_evaluations = evaluator.evaluations
        return clustering.canonicalize()

    round_index = 0
    while True:
        with _stage(timings, "refine.free"):
            freed = apply_free_operations(clustering, candidates, oracle,
                                          estimator, evaluator=evaluator)
        if diagnostics is not None:
            diagnostics.free_operations_applied += freed
        if obs is not None and freed:
            obs.metrics.counter(
                "refine_free_operations_total",
                help="Zero-cost refinement operations applied",
            ).inc(freed)

        spent = oracle.stats.pairs_issued - pairs_at_start
        if max_refinement_pairs is not None and spent >= max_refinement_pairs:
            return finish()

        num_unknown = sum(
            1 for pair in candidates.pairs if not oracle.knows(*pair)
        )
        budget = refinement_budget(
            num_records, max(1, len(clustering)), num_unknown,
            threshold_divisor=threshold_divisor,
        )
        if max_refinement_pairs is not None:
            budget = min(budget, float(max_refinement_pairs - spent))
        packed = _pack_independent_operations(
            clustering, candidates, evaluator, budget, ranking=ranking,
            hard_budget=max_refinement_pairs is not None, timings=timings,
        )
        if not packed:
            return finish()

        # One crowd batch resolves every packed operation's unknown pairs.
        with _stage(timings, "refine.crowd"):
            needed: Set[Pair] = set()
            for operation in packed:
                needed.update(evaluator.unknown_pairs(operation))
            answers = oracle.ask_batch(sorted(needed))
            for pair, crowd_score in answers.items():
                if pair in candidates:
                    estimator.add_sample(
                        pair, candidates.machine_scores[pair], crowd_score
                    )

        with _stage(timings, "refine.apply"):
            applied = 0
            for operation in packed:
                benefit = evaluator.exact_benefit(operation)
                if benefit is not None and benefit > BENEFIT_TOLERANCE:
                    apply_operation(clustering, operation)
                    applied += 1
        if diagnostics is not None:
            diagnostics.batch_sizes.append(len(needed))
            diagnostics.operations_packed.append(len(packed))
            diagnostics.operations_applied.append(applied)
        round_index += 1
        if obs is not None:
            obs.metrics.counter(
                "refine_rounds_total",
                help="PC-Refine parallel rounds executed",
            ).inc()
            obs.event(
                "refine.round",
                round=round_index,
                budget=budget,
                batch_pairs=len(needed),
                packed=len(packed),
                applied=applied,
                clusters=len(clustering),
                histogram_samples=len(estimator),
                histogram_buckets=estimator.num_buckets,
            )
        if applied == 0:
            return finish()


def _pc_refine_fast(
    clustering: Clustering,
    candidates: CandidateSet,
    oracle: CrowdOracle,
    num_records: int,
    threshold_divisor: float,
    num_buckets: int,
    diagnostics: Optional[PCRefineDiagnostics],
    ranking: str,
    max_refinement_pairs: Optional[int],
    obs,
    timings=None,
) -> Clustering:
    """Fast engine: one :class:`OperationCache` + :class:`EvaluationCache`
    shared across rounds (free path included), an incrementally maintained
    unknown-pair count, and the lazily ordered packer.  Byte-identical to
    :func:`_pc_refine_reference` — property-tested in
    ``tests/core/test_refine_engines.py``."""
    pairs_at_start = oracle.stats.pairs_issued
    estimator = build_estimator(candidates, oracle, num_buckets=num_buckets)
    cache = OperationCache(clustering, candidates)
    evaluations = EvaluationCache(clustering, candidates, oracle, estimator,
                                  cache.tracker)

    # ``N_u``, seeded with one sweep and then maintained from the oracle's
    # answer log: every pair that transitions unknown -> known inside this
    # run's batches decrements it (the reference re-sweeps per round).
    num_unknown = sum(1 for pair in candidates.pairs
                      if not oracle.knows(*pair))
    answer_cursor = oracle.answer_epoch

    def finish() -> Clustering:
        if diagnostics is not None:
            stats = evaluations.stats
            diagnostics.operation_evaluations = (stats.evaluations
                                                 + stats.refreshes)
            diagnostics.evaluation_cache = stats.as_dict()
        return clustering.canonicalize()

    round_index = 0
    while True:
        with _stage(timings, "refine.free"):
            freed = apply_free_operations(clustering, candidates, oracle,
                                          estimator, cache=cache,
                                          evaluations=evaluations)
        if diagnostics is not None:
            diagnostics.free_operations_applied += freed
        if obs is not None and freed:
            obs.metrics.counter(
                "refine_free_operations_total",
                help="Zero-cost refinement operations applied",
            ).inc(freed)

        spent = oracle.stats.pairs_issued - pairs_at_start
        if max_refinement_pairs is not None and spent >= max_refinement_pairs:
            return finish()

        budget = refinement_budget(
            num_records, max(1, len(clustering)), num_unknown,
            threshold_divisor=threshold_divisor,
        )
        if max_refinement_pairs is not None:
            budget = min(budget, float(max_refinement_pairs - spent))
        packed = _pack_independent_operations_fast(
            cache, evaluations, budget, ranking=ranking,
            hard_budget=max_refinement_pairs is not None, timings=timings,
        )
        if not packed:
            return finish()

        # One crowd batch resolves every packed operation's unknown pairs.
        with _stage(timings, "refine.crowd"):
            needed: Set[Pair] = set()
            for operation in packed:
                needed.update(evaluations.unknown_pairs(operation))
            answers = oracle.ask_batch(sorted(needed))
            for pair in oracle.answers_since(answer_cursor):
                if pair in candidates:
                    num_unknown -= 1
            answer_cursor = oracle.answer_epoch
            for pair, crowd_score in answers.items():
                if pair in candidates:
                    estimator.add_sample(
                        pair, candidates.machine_scores[pair], crowd_score
                    )

        with _stage(timings, "refine.apply"):
            applied = 0
            for operation in packed:
                benefit = evaluations.exact_benefit(operation)
                if benefit is not None and benefit > BENEFIT_TOLERANCE:
                    cache.apply(operation)
                    applied += 1
        if diagnostics is not None:
            diagnostics.batch_sizes.append(len(needed))
            diagnostics.operations_packed.append(len(packed))
            diagnostics.operations_applied.append(applied)
        round_index += 1
        if obs is not None:
            obs.metrics.counter(
                "refine_rounds_total",
                help="PC-Refine parallel rounds executed",
            ).inc()
            obs.event(
                "refine.round",
                round=round_index,
                budget=budget,
                batch_pairs=len(needed),
                packed=len(packed),
                applied=applied,
                clusters=len(clustering),
                histogram_samples=len(estimator),
                histogram_buckets=estimator.num_buckets,
            )
        if applied == 0:
            return finish()


def pc_refine(
    clustering: Clustering,
    candidates: CandidateSet,
    oracle: CrowdOracle,
    num_records: Optional[int] = None,
    threshold_divisor: float = DEFAULT_THRESHOLD_DIVISOR,
    num_buckets: int = DEFAULT_NUM_BUCKETS,
    diagnostics: Optional[PCRefineDiagnostics] = None,
    ranking: str = "ratio",
    max_refinement_pairs: Optional[int] = None,
    obs=None,
    engine: str = "fast",
    shards: int = 0,
    processes: int = 0,
    supervisor_policy=None,
    fault_plan=None,
    timings=None,
) -> Clustering:
    """Run PC-Refine; refines ``clustering`` in place and returns it.

    The returned clustering is *canonicalized*: cluster ids are
    renumbered ``0..n-1`` ascending by smallest member (see
    :meth:`~repro.core.clustering.Clustering.canonicalize`), so any two
    engine configurations that produce the same partition also produce
    byte-identical ids.

    Args:
        clustering: Phase-2 output ``C`` (mutated).
        candidates: The candidate set ``S`` with machine scores.
        oracle: Crowd access carrying the phase-2 answer set ``A``.
        num_records: ``|R|`` for the budget formula; defaults to the number
            of records in the clustering.
        threshold_divisor: The ``x`` in ``T = N_m / x`` (paper: 8).
        num_buckets: Histogram granularity ``m`` (paper: 20).
        diagnostics: Optional sink for per-round measurements.
        ranking: Operation ranking — "ratio" (the paper's benefit-cost
            ratio) or "benefit" (cost-blind ablation).
        max_refinement_pairs: Optional hard cap on the pairs this phase may
            crowdsource (beyond the paper: a practical total-budget knob).
            With a cap in place the packer only admits operations whose
            costs still fit; free operations keep applying after the cap
            is exhausted.
        obs: Optional :class:`~repro.obs.ObsContext`; each parallel round
            emits a ``refine.round`` event (budget ``T``, packed batch,
            applied count, histogram state) and bumps the round / free
            counters.
        engine: One of :data:`~repro.core.refine.REFINE_ENGINES` — "fast"
            (incremental, default) or "reference" (full re-evaluation);
            outputs are byte-identical.
        shards: When >= 1, run the sharded engine of
            :mod:`repro.core.refine_shard`: the clustering partitions
            along connected components of the candidate graph (plus
            within-cluster edges), components pack into this many shard
            tasks, and a cross-shard coordinator replays per-component
            rounds through the caller's oracle under one frozen global
            budget ``T`` and one frozen global histogram.  The final
            clustering (ids included), stats, diagnostics, and events
            are byte-identical for every shard count, process count, and
            fault plan; round accounting follows the merged
            component-round schedule (round ``r`` batches every
            component's local round ``r`` at once).  Requires
            ``engine="fast"``, a pair-deterministic answer source, and
            no ``max_refinement_pairs`` cap.  ``0`` (default) keeps the
            classic single-clustering loop.
        processes: Worker processes for the shard tasks (``<= 1`` runs
            them in-process; ignored without ``shards``).
        supervisor_policy: Fault-handling knobs forwarded to the
            supervised worker pool (sharded mode only).
        fault_plan: Deterministic process-fault injection for chaos
            testing (sharded mode only).
        timings: Optional :class:`~repro.perf.timing.StageTimings`;
            accumulates per-stage wall time under ``refine.evaluate``
            (benefit/cost scoring), ``refine.pack`` (greedy packing),
            ``refine.crowd`` (batch + histogram), ``refine.apply``
            (confirmed application), and ``refine.free`` (zero-cost
            path) — the breakdown ``bench_refine`` reports.
    """
    if engine not in REFINE_ENGINES:
        raise ValueError(
            f"engine must be one of {REFINE_ENGINES}, got {engine!r}"
        )
    if num_records is None:
        num_records = clustering.num_records
    if isinstance(shards, str):
        from repro.runtime.autoshard import resolve_auto_shards

        shards = resolve_auto_shards("refine", records=num_records,
                                     requested=shards, obs=obs)
        if engine != "fast" or max_refinement_pairs is not None:
            # The heuristic never picks a config the sharded engine
            # rejects; explicit shard counts still fail fast below.
            shards = 0
        if shards == 0:
            processes = 0  # classic engine: no pool to feed
    if shards < 0:
        raise ValueError(f"shards must be >= 0, got {shards}")
    if processes > 1 and shards == 0:
        raise ValueError(
            "refine processes require refine shards (pass shards >= 1)"
        )
    if max_refinement_pairs is not None and max_refinement_pairs < 0:
        raise ValueError(
            f"max_refinement_pairs must be >= 0, got {max_refinement_pairs}"
        )
    if shards:
        if engine != "fast":
            raise ValueError(
                f"sharded refinement requires the 'fast' engine, "
                f"got {engine!r}"
            )
        if max_refinement_pairs is not None:
            raise ValueError(
                "sharded refinement does not support max_refinement_pairs "
                "(a global sequential pair cap cannot decompose across "
                "shards) — run with refine shards disabled"
            )
        from repro.core.refine_shard import pc_refine_sharded
        return pc_refine_sharded(
            clustering, candidates, oracle, num_records, threshold_divisor,
            num_buckets, diagnostics, ranking, obs, shards=shards,
            processes=processes, supervisor_policy=supervisor_policy,
            fault_plan=fault_plan, timings=timings,
        )
    refine = _pc_refine_fast if engine == "fast" else _pc_refine_reference
    return refine(clustering, candidates, oracle, num_records,
                  threshold_divisor, num_buckets, diagnostics, ranking,
                  max_refinement_pairs, obs, timings=timings)
