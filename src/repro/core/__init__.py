"""The ACD algorithm family (the paper's contribution).

- :func:`crowd_pivot` — Algorithm 1, sequential crowd-based Pivot;
- :func:`partial_pivot` / :func:`pc_pivot` — Algorithms 2-3, the batched
  cluster-generation phase with the Equation-4 wasted-pair budget ε;
- :func:`crowd_refine` / :func:`pc_refine` — Algorithms 4-5, the cluster
  refinement phase with split/merger operations, the equi-depth histogram
  estimator, and the per-round budget T;
- :func:`run_acd` — the end-to-end three-phase pipeline.
"""

from repro.core.acd import ACDResult, run_acd
from repro.core.clustering import Clustering
from repro.core.estimator import DEFAULT_NUM_BUCKETS, HistogramEstimator
from repro.core.evaluation_cache import EvaluationCache, EvaluationStats
from repro.core.lowerbound import lp_lower_bound, optimality_gap
from repro.core.objective import (
    lambda_objective,
    merge_benefit,
    pairwise_cost,
    split_benefit,
)
from repro.core.operations import (
    Merge,
    Operation,
    OperationEvaluator,
    Split,
    apply_operation,
    independent,
)
from repro.core.partial_pivot import (
    PartialPivotResult,
    partial_pivot,
    waste_estimates,
)
from repro.core.pc_pivot import (
    DEFAULT_EPSILON,
    PCPivotDiagnostics,
    choose_k,
    pc_pivot,
)
from repro.core.pivot_engine import (
    PIVOT_ENGINES,
    LiveVertexOrder,
    choose_pivots,
)
from repro.core.pc_refine import (
    DEFAULT_THRESHOLD_DIVISOR,
    PCRefineDiagnostics,
    pc_refine,
    refinement_budget,
)
from repro.core.permutation import Permutation
from repro.core.pivot import crowd_pivot
from repro.core.refine import (
    BENEFIT_TOLERANCE,
    REFINE_ENGINES,
    build_estimator,
    crowd_refine,
    enumerate_operations,
)

__all__ = [
    "ACDResult",
    "BENEFIT_TOLERANCE",
    "Clustering",
    "DEFAULT_EPSILON",
    "DEFAULT_NUM_BUCKETS",
    "DEFAULT_THRESHOLD_DIVISOR",
    "EvaluationCache",
    "EvaluationStats",
    "HistogramEstimator",
    "LiveVertexOrder",
    "Merge",
    "Operation",
    "OperationEvaluator",
    "PCPivotDiagnostics",
    "PCRefineDiagnostics",
    "PIVOT_ENGINES",
    "PartialPivotResult",
    "Permutation",
    "REFINE_ENGINES",
    "Split",
    "apply_operation",
    "build_estimator",
    "choose_k",
    "choose_pivots",
    "crowd_pivot",
    "crowd_refine",
    "enumerate_operations",
    "independent",
    "lambda_objective",
    "lp_lower_bound",
    "merge_benefit",
    "optimality_gap",
    "pairwise_cost",
    "partial_pivot",
    "pc_pivot",
    "pc_refine",
    "refinement_budget",
    "run_acd",
    "split_benefit",
    "waste_estimates",
]
