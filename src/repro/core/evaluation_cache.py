"""Incremental benefit/cost evaluation for the refinement phase.

:class:`~repro.core.operations.OperationEvaluator` re-derives an
operation's relevant pairs, cost, and benefits from scratch on every call —
correct, but the refinement loops (Algorithms 4-5) ask for the same values
thousands of times while only a handful of clusters change per iteration.
:class:`EvaluationCache` memoizes the full evaluation of each operation and
invalidates *only* what actually changed, keyed on three signals:

* **Cluster versions** — an entry snapshots its touched clusters'
  :class:`~repro.core.refine.ClusterVersionTracker` versions; any applied
  operation bumps only the changed clusters, so only entries touching them
  rebuild.
* **Oracle answer epoch** — the oracle keeps an append-only log of pairs
  transitioning unknown -> known; the cache consumes the log through a
  cursor and marks dirty exactly the entries whose unknown-pair sets the
  fresh answers intersect (a reverse pair -> operations index).
* **Estimator epoch** — new histogram samples bump the estimator's epoch;
  the cache re-queries its per-score estimate memo and marks dirty only
  entries holding unknown pairs whose machine-score estimate *actually
  changed* (a reverse score -> operations index), so a rebuild that lands
  on identical bucket means invalidates nothing.

Everything the cache serves is byte-identical to a fresh
``OperationEvaluator`` derivation: per-pair confidences are stored in
``relevant_pairs`` order and benefits are recomputed as the same ordered
sums (:func:`~repro.core.objective.split_benefit` /
:func:`~repro.core.objective.merge_benefit`), so float summation order — and
therefore every downstream comparison and tie-break — is preserved.

Assumptions (all hold within a run): crowd answers are append-only (a
known pair's confidence never changes), pruned pairs stay pruned, and all
clustering mutations flow through the shared version tracker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.core.clustering import Clustering
from repro.core.estimator import HistogramEstimator
from repro.core.objective import merge_benefit, split_benefit
from repro.core.operations import Operation, Split
from repro.crowd.oracle import CrowdOracle
from repro.datasets.schema import canonical_pair
from repro.pruning.candidate import CandidateSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (refine imports us)
    from repro.core.refine import ClusterVersionTracker

Pair = Tuple[int, int]


@dataclass
class EvaluationStats:
    """Work accounting for the cache (read by the refine benchmark).

    Attributes:
        lookups: Public value requests served.
        hits: Lookups answered entirely from a current entry.
        refreshes: Lookups that reused the entry's pair structure but
            re-resolved answers / re-summed benefits (answer or estimate
            delta touched the entry).
        evaluations: Full from-scratch derivations (entry missing or its
            cluster snapshot stale) — the unit the reference engine pays
            on *every* request.
    """

    lookups: int = 0
    hits: int = 0
    refreshes: int = 0
    evaluations: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "refreshes": self.refreshes,
            "evaluations": self.evaluations,
            "hit_rate": round(self.hit_rate, 4),
        }


class _Entry:
    """One operation's memoized evaluation (see module docstring)."""

    __slots__ = (
        "snapshot", "is_split", "pairs", "confidences", "unknown_indices",
        "unknown_scores", "registered_pairs", "registered_scores",
        "estimated", "exact", "answer_dirty", "estimate_dirty",
    )

    def __init__(self) -> None:
        self.snapshot: Tuple[Tuple[int, int], ...] = ()
        self.is_split = False
        self.pairs: List[Pair] = []
        # One slot per relevant pair, in order: the known f_c (answered or
        # pruned-0.0) or None while the pair is still unknown.
        self.confidences: List[Optional[float]] = []
        self.unknown_indices: List[int] = []
        self.unknown_scores: List[float] = []
        # Index registrations at build time (kept until rebuild so stale
        # registrations can be dropped; a spurious dirty mark only costs a
        # refresh, never correctness).
        self.registered_pairs: Tuple[Pair, ...] = ()
        self.registered_scores: Tuple[float, ...] = ()
        self.estimated: float = 0.0
        self.exact: Optional[float] = None
        self.answer_dirty = False
        self.estimate_dirty = False


class EvaluationCache:
    """Version/epoch-invalidated memo of operation evaluations.

    Serves the same values as an
    :class:`~repro.core.operations.OperationEvaluator` over the same state,
    byte-for-byte, while recomputing only entries invalidated by cluster
    changes, fresh crowd answers, or changed histogram estimates.
    """

    def __init__(
        self,
        clustering: Clustering,
        candidates: CandidateSet,
        oracle: CrowdOracle,
        estimator: HistogramEstimator,
        tracker: "ClusterVersionTracker",
    ):
        self._clustering = clustering
        self._candidates = candidates
        self._oracle = oracle
        self._estimator = estimator
        self._tracker = tracker
        self._entries: Dict[Operation, _Entry] = {}
        # Reverse indexes: which entries a fresh answer / changed estimate
        # can affect.
        self._pair_index: Dict[Pair, Set[Operation]] = {}
        self._score_index: Dict[float, Set[Operation]] = {}
        # Per-machine-score estimate memo, refreshed (and diffed) when the
        # estimator epoch moves.
        self._estimates: Dict[float, float] = {}
        self._answer_cursor = oracle.answer_epoch
        self._estimator_epoch = estimator.epoch
        # Operations whose cached values changed since the last drain
        # (answer/estimate deltas only; cluster staleness is reported by
        # the tracker, not here).
        self._dirty_ops: Set[Operation] = set()
        self.stats = EvaluationStats()

    # ------------------------------------------------------------------
    # Public accessors (OperationEvaluator-compatible values)
    # ------------------------------------------------------------------

    def relevant_pairs(self, operation: Operation) -> List[Pair]:
        """The record pairs whose ``f_c`` the operation's benefit needs."""
        return list(self._entry(operation, exact_only=True).pairs)

    def cost(self, operation: Operation) -> int:
        """Crowdsourcing cost ``c(o)``."""
        return len(self._entry(operation, exact_only=True).unknown_indices)

    def unknown_pairs(self, operation: Operation) -> List[Pair]:
        """Still-unknown relevant pairs, in ``relevant_pairs`` order."""
        entry = self._entry(operation, exact_only=True)
        return [entry.pairs[index] for index in entry.unknown_indices]

    def exact_benefit(self, operation: Operation) -> Optional[float]:
        """``b(o)`` when every relevant ``f_c`` is known; else ``None``."""
        return self._entry(operation, exact_only=True).exact

    def estimated_benefit(self, operation: Operation) -> float:
        """``b*(o)``: known contributions exact, the rest estimated."""
        return self._entry(operation).estimated

    def ratio_and_cost(self, operation: Operation) -> Tuple[Optional[float], int]:
        """``(b*(o)/c(o), c(o))`` for costly operations; ``(None, cost)``
        when ``c(o) <= 0`` (the refinement loops route those through the
        free path and never rank them)."""
        entry = self._entry(operation)
        cost = len(entry.unknown_indices)
        if cost <= 0:
            return None, cost
        return entry.estimated / cost, cost

    def drain_dirty_operations(self) -> Set[Operation]:
        """Operations whose cached values changed since the last drain due
        to fresh answers or changed estimates.  Cluster-version staleness is
        *not* reported here — callers learn about it from the operations
        they applied through the shared tracker."""
        self._sync()
        dirty = self._dirty_ops
        self._dirty_ops = set()
        return dirty

    # ------------------------------------------------------------------
    # Entry lifecycle
    # ------------------------------------------------------------------

    def _entry(self, operation: Operation,
               exact_only: bool = False) -> _Entry:
        """Resolve a current entry for ``operation``.

        ``exact_only`` marks accessors whose values don't depend on the
        histogram (pairs / cost / exact benefit): for them an
        estimate-stale entry is still a hit — the free path re-scans every
        operation per pass, and would otherwise pay a refresh per
        histogram change for values the estimator can't move.
        """
        self._sync()
        self.stats.lookups += 1
        entry = self._entries.get(operation)
        if entry is None or not self._tracker.is_current(entry.snapshot):
            self.stats.evaluations += 1
            return self._build(operation)
        if entry.answer_dirty or (entry.estimate_dirty and not exact_only):
            self.stats.refreshes += 1
            self._refresh(entry)
            return entry
        self.stats.hits += 1
        return entry

    def _known_confidence(self, pair: Pair) -> Optional[float]:
        answered = self._oracle.known_confidence(*pair)
        if answered is not None:
            return answered
        if pair not in self._candidates:
            return 0.0
        return None

    def _estimate(self, machine_score: float) -> float:
        value = self._estimates.get(machine_score)
        if value is None:
            value = self._estimator.estimate(machine_score)
            self._estimates[machine_score] = value
        return value

    def _build(self, operation: Operation) -> _Entry:
        old = self._entries.get(operation)
        if old is not None:
            self._deregister(operation, old)

        entry = _Entry()
        entry.snapshot = self._tracker.snapshot(operation.touched_clusters)
        entry.is_split = isinstance(operation, Split)
        if isinstance(operation, Split):
            others = self._clustering.members(operation.cluster_id)
            others.discard(operation.record_id)
            pairs = [canonical_pair(operation.record_id, other)
                     for other in sorted(others)]
        else:
            members_a = sorted(self._clustering.members(operation.cluster_a))
            members_b = sorted(self._clustering.members(operation.cluster_b))
            pairs = [canonical_pair(a, b) for a in members_a for b in members_b]
        entry.pairs = pairs

        scores = self._candidates.machine_scores
        for index, pair in enumerate(pairs):
            confidence = self._known_confidence(pair)
            entry.confidences.append(confidence)
            if confidence is None:
                entry.unknown_indices.append(index)
                entry.unknown_scores.append(scores[pair])

        entry.registered_pairs = tuple(
            entry.pairs[index] for index in entry.unknown_indices
        )
        entry.registered_scores = tuple(entry.unknown_scores)
        for pair in entry.registered_pairs:
            self._pair_index.setdefault(pair, set()).add(operation)
        for score in entry.registered_scores:
            self._estimate(score)  # memo must cover every registered score
            self._score_index.setdefault(score, set()).add(operation)

        self._recompute_benefits(entry)
        self._entries[operation] = entry
        return entry

    def _refresh(self, entry: _Entry) -> None:
        """Re-resolve answers / re-sum benefits without re-deriving the
        pair structure (cluster snapshot is still current)."""
        if entry.answer_dirty:
            still_indices: List[int] = []
            still_scores: List[float] = []
            for position, index in enumerate(entry.unknown_indices):
                confidence = self._oracle.known_confidence(*entry.pairs[index])
                if confidence is None:
                    still_indices.append(index)
                    still_scores.append(entry.unknown_scores[position])
                else:
                    entry.confidences[index] = confidence
            entry.unknown_indices = still_indices
            entry.unknown_scores = still_scores
            entry.answer_dirty = False
        # The estimate memo is always current after _sync, so recomputing
        # clears estimate staleness no matter which flag triggered us.
        entry.estimate_dirty = False
        self._recompute_benefits(entry)

    def _recompute_benefits(self, entry: _Entry) -> None:
        # Ordered sums over the relevant pairs — the exact arithmetic of
        # OperationEvaluator.{exact,estimated}_benefit.
        if entry.unknown_indices:
            values: List[float] = list(entry.confidences)  # type: ignore[arg-type]
            for position, index in enumerate(entry.unknown_indices):
                values[index] = self._estimate(entry.unknown_scores[position])
            entry.exact = None
        else:
            values = entry.confidences  # type: ignore[assignment]
            entry.exact = (split_benefit(values) if entry.is_split
                           else merge_benefit(values))
        entry.estimated = (split_benefit(values) if entry.is_split
                           else merge_benefit(values))

    def _deregister(self, operation: Operation, entry: _Entry) -> None:
        for pair in entry.registered_pairs:
            ops = self._pair_index.get(pair)
            if ops is not None:
                ops.discard(operation)
                if not ops:
                    del self._pair_index[pair]
        for score in entry.registered_scores:
            ops = self._score_index.get(score)
            if ops is not None:
                ops.discard(operation)
                if not ops:
                    del self._score_index[score]
                    self._estimates.pop(score, None)

    # ------------------------------------------------------------------
    # Delta ingestion
    # ------------------------------------------------------------------

    def _sync(self) -> None:
        oracle_epoch = self._oracle.answer_epoch
        if oracle_epoch != self._answer_cursor:
            fresh = self._oracle.answers_since(self._answer_cursor)
            self._answer_cursor = oracle_epoch
            for pair in fresh:
                ops = self._pair_index.pop(pair, None)
                if not ops:
                    continue
                for operation in ops:
                    entry = self._entries.get(operation)
                    if entry is not None:
                        entry.answer_dirty = True
                self._dirty_ops.update(ops)

        estimator_epoch = self._estimator.epoch
        if estimator_epoch != self._estimator_epoch:
            self._estimator_epoch = estimator_epoch
            changed: List[float] = []
            for score, old_value in self._estimates.items():
                new_value = self._estimator.estimate(score)
                if new_value != old_value:
                    self._estimates[score] = new_value
                    changed.append(score)
            for score in changed:
                ops = self._score_index.get(score)
                if not ops:
                    continue
                for operation in ops:
                    entry = self._entries.get(operation)
                    if entry is not None:
                        entry.estimate_dirty = True
                self._dirty_ops.update(ops)
