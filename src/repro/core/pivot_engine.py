"""Fast-path machinery for the cluster-generation phase (Algorithms 2-3).

The pivot loops come in two interchangeable engines, mirroring
:data:`~repro.core.refine.REFINE_ENGINES`:

- **reference** — the literal reading of the paper: every round copies the
  live-vertex set, sorts it by permutation rank (twice: once in ``choose_k``
  and again in ``partial_pivot``), and re-derives the Equation-3 waste
  estimates from scratch.
- **fast** — incremental.  The permutation order over the record set is
  materialized once; clustered vertices are lazily deleted and the order
  compacts itself on access (:class:`LiveVertexOrder`), so each round's
  ordered live-vertex view costs O(live) instead of O(n log n).  The
  Equation-4 prefix scan (:func:`choose_pivots`) fuses the waste estimates
  with the fresh-edge count in a single pass and stops early once the
  accumulated waste bound provably exceeds what any longer prefix could
  justify.  The chosen pivots and their waste bound are handed to
  ``partial_pivot`` instead of being recomputed there.

Both engines produce byte-identical clusterings, issued-pair sequences,
diagnostics, and observability event streams — property-tested in
``tests/core/test_pivot_engines.py``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from repro.core.permutation import Permutation
from repro.pruning.graph import CandidateGraph

#: Cluster-generation engines: "fast" (incremental order + fused scan,
#: the default) and "reference" (per-round whole-graph re-derivation, the
#: literal reading of Algorithms 2-3).  Outputs are byte-identical.
PIVOT_ENGINES = ("fast", "reference")


def require_pivot_engine(engine: str) -> None:
    """Raise ``ValueError`` unless ``engine`` is a known pivot engine."""
    if engine not in PIVOT_ENGINES:
        raise ValueError(
            f"engine must be one of {PIVOT_ENGINES}, got {engine!r}"
        )


class LiveVertexOrder:
    """Live vertices in permutation order, with lazy-deletion compaction.

    Built once from the permutation (an O(n) filter — the permutation *is*
    the sorted order), then kept current by :meth:`discard` as clusters
    remove vertices.  :meth:`live` compacts the tombstoned entries out and
    returns the remaining vertices in ascending permutation rank;
    :meth:`first` serves the sequential Crowd-Pivot access pattern (next
    live pivot) in amortized O(1) by advancing a head cursor.
    """

    def __init__(self, permutation: Permutation, vertices: Iterable[int]):
        alive = set(vertices)
        self._order: List[int] = [v for v in permutation if v in alive]
        if len(self._order) != len(alive):
            missing = alive - set(self._order)
            raise ValueError(
                f"vertices missing from the permutation: {sorted(missing)}"
            )
        self._dead: Set[int] = set()
        self._head = 0

    @classmethod
    def from_ranked(cls, ordered: Iterable[int]) -> "LiveVertexOrder":
        """Build from vertices already sorted by ascending permutation
        rank, skipping the O(n) permutation filter of the constructor.

        The sharded engine runs thousands of component-sized loops
        against one global permutation; filtering the full permutation
        per component would be quadratic in the record count, while the
        caller can rank-sort each component in O(c log c).
        """
        self = cls.__new__(cls)
        self._order = list(ordered)
        self._dead = set()
        self._head = 0
        return self

    def __len__(self) -> int:
        return len(self._order) - self._head - len(self._dead)

    def discard(self, vertices: Iterable[int]) -> None:
        """Tombstone vertices (clustered this round); O(1) each."""
        self._dead.update(vertices)

    def live(self) -> List[int]:
        """The live vertices in permutation order (compacting in place).

        The returned list is the internal buffer — callers must treat it
        as read-only and must not hold it across a :meth:`discard`.
        """
        if self._head or self._dead:
            dead = self._dead
            self._order = [v for v in self._order[self._head:]
                           if v not in dead]
            self._head = 0
            dead.clear()
        return self._order

    def first(self) -> Optional[int]:
        """The live vertex with the smallest rank; ``None`` when empty."""
        order, dead = self._order, self._dead
        head = self._head
        while head < len(order) and order[head] in dead:
            dead.discard(order[head])
            head += 1
        self._head = head
        return order[head] if head < len(order) else None


def choose_pivots(graph: CandidateGraph, ordered: List[int],
                  epsilon: float) -> Tuple[int, List[int]]:
    """Fused Equation-4 scan: the largest admissible ``k`` and the
    Equation-3 waste estimates of the chosen prefix.

    Single pass over ``ordered`` (the live vertices in permutation order):
    each vertex's waste bound ``w_j`` and its fresh-edge contribution to
    ``|P_j|`` are derived from one ``neighbors()`` call, where the
    reference path (:func:`~repro.core.pc_pivot.choose_k` +
    :func:`~repro.core.partial_pivot.waste_estimates`) walks the
    neighborhood three times.  The scan stops early once ``sum w_j``
    exceeds ``epsilon`` times the *total* live edge count: ``|P_j|`` can
    never grow past that, and ``sum w_j`` never shrinks, so no longer
    prefix can satisfy Equation 4 — the early exit drops work without
    changing the answer.

    Returns:
        ``(k, estimates)`` with ``len(estimates) == k``; ``(0, [])`` on an
        empty vertex list.  ``sum(estimates)`` is exactly the
        ``predicted_waste`` the reference engine would compute for the
        same prefix.
    """
    if epsilon < 0:
        raise ValueError(f"epsilon must be >= 0, got {epsilon}")
    if not ordered:
        return 0, []

    best_k = 1
    cumulative_waste = 0
    issued_edges = 0
    waste_ceiling = epsilon * graph.num_edges()
    earlier_pivots: Set[int] = set()
    pivot_neighborhood: Set[int] = set()
    estimates: List[int] = []
    for j, pivot in enumerate(ordered, start=1):
        neighbors = graph.neighbors(pivot)
        fresh = 0
        common = 0
        for neighbor in neighbors:
            if neighbor not in earlier_pivots:
                fresh += 1
            if neighbor in pivot_neighborhood:
                common += 1
        # Equation 3: an absorbable pivot may waste every non-pivot edge;
        # a surviving pivot only the edges earlier pivots can steal.
        waste = fresh if pivot in pivot_neighborhood else common
        estimates.append(waste)
        cumulative_waste += waste
        issued_edges += fresh
        if cumulative_waste <= epsilon * issued_edges:
            best_k = j
        elif cumulative_waste > waste_ceiling:
            break
        earlier_pivots.add(pivot)
        pivot_neighborhood.update(neighbors)
    return best_k, estimates[:best_k]
