"""Sharded parallel PC-Refine: per-component engines, coordinated budget.

Refinement decomposes along connected components of the graph whose edges
are the candidate pairs *plus* the current clustering's within-cluster
links: a split's relevant pairs stay inside its record's cluster, and a
merge is only ever enumerated for clusters joined by a candidate edge
(:func:`~repro.core.refine.enumerate_operations`), so no operation — and
no pair any operation needs — crosses a component boundary.  This module
exploits that:

1. **Partition** — :func:`~repro.pruning.components.connected_components`
   splits the record set over candidate pairs + per-cluster chain edges;
   each cluster therefore lands wholly inside one component.
   Multi-vertex components pack into shard tasks largest-first
   (:func:`~repro.pruning.components.pack_components`).
2. **Coordinate** — the parent builds the global histogram estimator
   *once* from the machine scores and the shared phase-2 answer set, and
   computes the single global budget ``T = N_m / x`` once from the
   entry-state record, cluster, and unknown-pair counts.  The budget is
   frozen and shipped to every worker: all shards pack against the same
   ``T``, so no shard's progress can skew another's packing room (and no
   configuration of shards can skew the outcome).  Each worker seeds a
   *private copy* of the global histogram and evolves it with its own
   component's fresh answers — estimates sharpen round over round as in
   the classic engine, but as a pure function of the component.  This
   deliberately deviates from the classic engine, which re-derives ``T``
   per round and grows one shared histogram across all components — the
   classic coupling is inherently sequential.  In practice the
   coordination converges to the same partition: confirmed benefits are
   exact (estimates only order the packing), which the byte-identity
   suites verify against the classic engines instance by instance.
3. **Fan out** — each shard runs the fast incremental refine loop per
   component in a worker process under the supervised pool of
   :mod:`repro.runtime.supervisor`, against a forked copy of the
   *pair-deterministic* answer source (as in
   :mod:`repro.core.pivot_shard`).  Workers journal every applied
   operation as an id-independent record reference — ``("s", record)``
   for splits, ``("m", rep_a, rep_b)`` for merges, the representatives
   being each side's smallest member captured just before application —
   and return plain-tuple round logs plus their final local partition.
4. **Replay** — the parent primes its answer source with the worker
   confidences, then replays *merged rounds* through the caller's
   oracle and clustering: round ``r`` of the sharded run is the union
   of every component's local round ``r``, components ordered by their
   smallest member.  One crowd batch, one diagnostics entry, and one
   ``refine.round`` event per merged round — ``CrowdStats.iterations``
   therefore reports the parallel crowd latency (the deepest
   component's round count), typically far below the classic engine's
   sequential round count.  A fidelity guard cross-checks the replayed
   per-component partitions against what the workers computed.

Determinism contract: every sharded configuration ``{shards, processes,
fault plan}`` produces a byte-identical clustering (ids included, via
the terminal :meth:`~repro.core.clustering.Clustering.canonicalize`
shared with the classic engines), stats, diagnostics, and event stream.
Identity *to the classic engines* holds at the partition level (hence,
post-canonicalization, at the id level) and is property-tested rather
than proven — see point 2.

Degradation mirrors the pivot shards: without ``fork`` (or with
``processes <= 1``) the same shard function runs in-process, and the
supervised pool's retry/degrade ladder recovers killed, delayed, or
poisoned shard tasks — the replay consumes identical round logs either
way.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.clustering import Clustering
from repro.core.evaluation_cache import EvaluationCache
from repro.core.operations import Merge, Operation, Split
from repro.core.refine import (
    BENEFIT_TOLERANCE,
    OperationCache,
    apply_free_operations,
    build_estimator,
)
from repro.crowd.oracle import CrowdOracle
from repro.pruning.candidate import CandidateSet
from repro.pruning.components import connected_components, pack_components
from repro.pruning.parallel import fork_available, notify_parallel_fallback
from repro.runtime.supervisor import supervised_map

Pair = Tuple[int, int]

#: An applied operation as an id-independent record reference:
#: ``("s", record_id)`` or ``("m", rep_a, rep_b)``.
_OpRef = Tuple

#: One worker round: (free_op_refs, packed_count, needed_pairs,
#: fresh_answers, applied_op_refs).  The trailing entry of every
#: component log has ``packed_count == 0`` and carries only the final
#: free pass.  Plain tuples so the pipe can pickle them cheaply.
_RoundLog = Tuple[Tuple[_OpRef, ...], int, Tuple[Pair, ...],
                  Tuple[Tuple[int, int, float], ...], Tuple[_OpRef, ...]]

#: Worker state captured at fork time (start method "fork" only) — the
#: same pattern as ``repro.core.pivot_shard._PIVOT_STATE``.
_REFINE_STATE: Dict[str, object] = {}


def require_pair_deterministic(source) -> None:
    """Reject answer sources the sharded engine cannot safely fork.

    Worker processes resolve pairs through forked copies of the source;
    unless every copy maps a pair to the same confidence regardless of
    query order (``pair_deterministic``), sharding could change answers.
    """
    if not getattr(source, "pair_deterministic", False):
        raise ValueError(
            f"sharded refinement requires a pair-deterministic answer "
            f"source; {type(source).__name__} does not declare "
            "pair_deterministic — run with refine shards disabled"
        )


def _op_ref(clustering: Clustering, operation: Operation) -> _OpRef:
    """Reference an operation by records, not cluster ids.

    Captured against the *pre-application* clustering: a merge names
    each side's smallest member, which resolves to the same cluster on
    any clustering with identical membership — regardless of how its
    ids were assigned.
    """
    if isinstance(operation, Split):
        return ("s", operation.record_id)
    assert isinstance(operation, Merge)
    return ("m", min(clustering.members(operation.cluster_a)),
            min(clustering.members(operation.cluster_b)))


def _apply_ref(clustering: Clustering, ref: _OpRef) -> None:
    """Apply a journaled record reference to a clustering."""
    if ref[0] == "s":
        clustering.split(ref[1])
    else:
        clustering.merge(clustering.cluster_of(ref[1]),
                         clustering.cluster_of(ref[2]))


def _run_component(
    cluster_entries: Sequence[Tuple[int, Tuple[int, ...]]],
    pairs: Sequence[Pair],
    scores: Dict[Pair, float],
    known: Sequence[Tuple[Pair, float]],
    next_id: int,
    threshold: float,
    budget: float,
    ranking: str,
    estimator,
    answers,
) -> Tuple[List[_RoundLog], Tuple[Tuple[int, ...], ...],
           Tuple[int, int, int, int]]:
    """Run the fast PC-Refine loop over one connected component.

    The local clustering keeps the caller's global cluster ids (so
    packing tie-breaks are reproducible for every shard layout), the
    local oracle is seeded with the global answer set restricted to the
    component, and the estimator + budget arrive frozen from the
    coordinator.  Returns the round logs, the final local partition
    (for the replay-fidelity guard), and the evaluation-cache counters.
    """
    from repro.core.pc_refine import _pack_independent_operations_fast

    clustering = Clustering.from_state({
        "clusters": [[cid, list(members)] for cid, members in cluster_entries],
        "next_id": next_id,
    })
    candidates = CandidateSet(pairs=tuple(pairs), machine_scores=scores,
                              threshold=threshold)
    oracle = CrowdOracle(answers)
    oracle.seed_known(dict(known))
    # Each worker evolves a private copy of the coordinator's histogram
    # with its own component's fresh answers — the component's estimates
    # sharpen round over round exactly as the classic engine's would,
    # while staying a pure function of the component (so no shard layout
    # or fault schedule can perturb them).  The coordinator pre-builds
    # the shared histogram, so this cheap clone starts clean and only a
    # component that actually crowdsources pays a rebuild.
    estimator = estimator.copy()
    cache = OperationCache(clustering, candidates)
    evaluations = EvaluationCache(clustering, candidates, oracle, estimator,
                                  cache.tracker)

    rounds: List[_RoundLog] = []
    while True:
        free_refs: List[_OpRef] = []
        apply_free_operations(
            clustering, candidates, oracle, estimator, cache=cache,
            evaluations=evaluations,
            on_apply=lambda op: free_refs.append(_op_ref(clustering, op)),
        )
        packed = _pack_independent_operations_fast(cache, evaluations,
                                                   budget, ranking=ranking)
        if not packed:
            rounds.append((tuple(free_refs), 0, (), (), ()))
            break

        needed: Set[Pair] = set()
        for operation in packed:
            needed.update(evaluations.unknown_pairs(operation))
        issued = tuple(sorted(needed))
        epoch = oracle.answer_epoch
        oracle.ask_batch(issued)
        fresh = tuple(
            (a, b, oracle.known_confidence(a, b))
            for a, b in oracle.answers_since(epoch)
        )
        for a, b in oracle.answers_since(epoch):
            if (a, b) in candidates:
                estimator.add_sample((a, b), scores[(a, b)],
                                     oracle.known_confidence(a, b))

        applied_refs: List[_OpRef] = []
        for operation in packed:
            benefit = evaluations.exact_benefit(operation)
            if benefit is not None and benefit > BENEFIT_TOLERANCE:
                applied_refs.append(_op_ref(clustering, operation))
                cache.apply(operation)
        rounds.append((tuple(free_refs), len(packed), issued, fresh,
                       tuple(applied_refs)))
        if not applied_refs:
            break

    final = tuple(tuple(sorted(members)) for members in clustering.as_sets())
    stats = evaluations.stats
    return rounds, final, (stats.lookups, stats.hits, stats.refreshes,
                           stats.evaluations)


def _run_refine_shard(shard_index: int):
    """Worker body: refine every component packed into one shard.

    Reads the parent's published :data:`_REFINE_STATE` (carried by
    fork); also the serial and degraded execution path, where the state
    is simply still visible in-process.
    """
    components = _REFINE_STATE["components"]  # type: ignore[index]
    shards = _REFINE_STATE["shards"]  # type: ignore[index]
    results = []
    for multi_pos in shards[shard_index]:
        cluster_entries, pairs, scores, known = components[multi_pos]
        results.append((multi_pos, _run_component(
            cluster_entries, pairs, scores, known,
            _REFINE_STATE["next_id"], _REFINE_STATE["threshold"],
            _REFINE_STATE["budget"], _REFINE_STATE["ranking"],
            _REFINE_STATE["estimator"], _REFINE_STATE["answers"],
        )))
    return results


def _stage(timings, name: str):
    from repro.core.pc_refine import _stage as stage
    return stage(timings, name)


def build_refine_partition(
    clustering: Clustering,
    candidates: CandidateSet,
    oracle: CrowdOracle,
    num_records: int,
    threshold_divisor: float,
    num_buckets: int,
):
    """Partition the refinement problem into per-component worker inputs.

    The shared coordination prologue of the sharded engine and the
    pipelined executor: splits the record set over candidate pairs plus
    per-cluster chain edges, freezes the global histogram estimator and
    the single budget ``T``, and assembles each multi-vertex component's
    worker payload in global order.  Returns ``(components, multi,
    multi_components, estimator, budget)`` where ``multi`` indexes the
    multi-vertex entries of ``components`` and ``multi_components[i]``
    is the ``(cluster_entries, pairs, scores, known)`` payload for
    component ``multi[i]``.
    """
    ids = sorted(clustering.record_ids())
    # Candidate edges + per-cluster chain edges: components of this
    # graph are exactly the units no refinement operation crosses,
    # and they keep every current cluster in one piece.
    edges: List[Pair] = list(candidates.pairs)
    for cluster_id in clustering.cluster_ids:
        members = sorted(clustering.members(cluster_id))
        edges.extend(zip(members, members[1:]))
    components = connected_components(ids, edges)
    prepared = prepare_refine_partition(components, candidates)
    return finish_refine_partition(prepared, clustering, candidates,
                                   oracle, num_records,
                                   threshold_divisor, num_buckets)


def prepare_refine_partition(components, candidates: CandidateSet):
    """Index a component partition: the clustering-independent prefix.

    Everything here depends only on the candidate set and the component
    list, so a caller that already knows the partition — the pipelined
    executor reuses the candidate-graph components, which equal the
    refine components whenever every cluster sits inside one candidate
    component (always true for pivot-produced clusterings: pivot never
    clusters across candidate edges, and the chain edges above then
    merge nothing) — can run this while the generation phase is still
    draining and pay only :func:`finish_refine_partition` at the
    barrier.
    """
    multi = [index for index, members in enumerate(components)
             if len(members) > 1]
    comp_of: Dict[int, int] = {}
    for index in multi:
        for vertex in components[index]:
            comp_of[vertex] = index
    pairs_of: Dict[int, List[Pair]] = {index: [] for index in multi}
    for pair in candidates.pairs:
        pairs_of[comp_of[pair[0]]].append(pair)
    scores_of = {
        index: {pair: candidates.machine_scores[pair]
                for pair in pairs_of[index]}
        for index in multi
    }
    return components, multi, comp_of, pairs_of, scores_of


def finish_refine_partition(prepared, clustering: Clustering,
                            candidates: CandidateSet, oracle: CrowdOracle,
                            num_records: int, threshold_divisor: float,
                            num_buckets: int):
    """Clustering-dependent suffix of :func:`build_refine_partition`."""
    components, multi, comp_of, pairs_of, scores_of = prepared
    # Frozen global coordination state: one histogram from the shared
    # phase-2 answer set, one budget T from the entry-state counts.
    estimator = build_estimator(candidates, oracle,
                                num_buckets=num_buckets)
    # Force the histogram build now: every per-component clone then
    # starts clean, and only components that crowdsource fresh
    # answers ever pay a rebuild.
    estimator.bucket_table()
    from repro.core.pc_refine import refinement_budget
    num_unknown = sum(1 for pair in candidates.pairs
                      if not oracle.knows(*pair))
    budget = refinement_budget(
        num_records, max(1, len(clustering)), num_unknown,
        threshold_divisor=threshold_divisor,
    )

    # Per-component worker inputs, all in global order: cluster
    # entries ascend by cluster id, pairs keep the candidate-set
    # order, known answers keep the oracle's arrival order.
    entries_of: Dict[int, List[Tuple[int, Tuple[int, ...]]]] = {
        index: [] for index in multi
    }
    for cluster_id in clustering.cluster_ids:
        members = tuple(sorted(clustering.members(cluster_id)))
        index = comp_of.get(members[0])
        if index is not None:
            entries_of[index].append((cluster_id, members))
    known_of: Dict[int, List[Tuple[Pair, float]]] = {
        index: [] for index in multi
    }
    for pair, confidence in oracle.known_in_order():
        index = comp_of.get(pair[0])
        if index is not None and comp_of.get(pair[1]) == index:
            known_of[index].append((pair, confidence))

    multi_components = [
        (tuple(entries_of[index]), tuple(pairs_of[index]),
         scores_of[index], tuple(known_of[index]))
        for index in multi
    ]
    return components, multi, multi_components, estimator, budget


def aggregate_refine_diagnostics(diagnostics, component_runs) -> None:
    """Fold worker evaluation-cache counters into the diagnostics."""
    if diagnostics is None:
        return
    lookups = hits = refreshes = evaluations = 0
    for _, _, counters in component_runs.values():
        lookups += counters[0]
        hits += counters[1]
        refreshes += counters[2]
        evaluations += counters[3]
    diagnostics.operation_evaluations = evaluations + refreshes
    diagnostics.evaluation_cache = {
        "lookups": lookups,
        "hits": hits,
        "refreshes": refreshes,
        "evaluations": evaluations,
        "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
    }


def pc_refine_sharded(
    clustering: Clustering,
    candidates: CandidateSet,
    oracle: CrowdOracle,
    num_records: int,
    threshold_divisor: float,
    num_buckets: int,
    diagnostics,
    ranking: str,
    obs,
    *,
    shards: int,
    processes: int = 0,
    supervisor_policy=None,
    fault_plan=None,
    timings=None,
) -> Clustering:
    """Sharded PC-Refine over the merged clustering (see module docstring).

    Called through :func:`repro.core.pc_refine.pc_refine` with
    ``shards >= 1``; ``processes <= 1`` runs the shard tasks in-process
    (still component-ordered, so the output is identical).  Refines
    ``clustering`` in place and returns it, canonicalized.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if processes < 0:
        raise ValueError(f"processes must be >= 0, got {processes}")
    if ranking not in ("ratio", "benefit"):
        raise ValueError(f"ranking must be 'ratio' or 'benefit', got {ranking!r}")
    source = oracle.source
    require_pair_deterministic(source)
    # Workers must not fork a journaling wrapper (its file handle would
    # be shared across processes); they fork the wrapped source and the
    # parent's replay journals the batches.
    fork_source = getattr(source, "fork_source", source)

    with _stage(timings, "refine.partition"):
        components, multi, multi_components, estimator, budget = (
            build_refine_partition(
                clustering, candidates, oracle, num_records,
                threshold_divisor, num_buckets,
            ))
        num_shards = max(1, min(shards, len(multi)))
        packed = pack_components([components[index] for index in multi],
                                 num_shards)

    want_parallel = processes > 1 and num_shards > 1
    if want_parallel and not fork_available():
        notify_parallel_fallback(obs, requested=processes,
                                 context="pc_refine_sharded")
        want_parallel = False

    _REFINE_STATE["components"] = multi_components
    _REFINE_STATE["shards"] = packed
    _REFINE_STATE["next_id"] = clustering.next_id
    _REFINE_STATE["threshold"] = candidates.threshold
    _REFINE_STATE["budget"] = budget
    _REFINE_STATE["ranking"] = ranking
    _REFINE_STATE["estimator"] = estimator
    _REFINE_STATE["answers"] = fork_source
    try:
        with _stage(timings, "refine.workers"):
            if want_parallel:
                shard_results, _ = supervised_map(
                    _run_refine_shard, list(range(num_shards)),
                    min(processes, num_shards), policy=supervisor_policy,
                    obs=obs, fault_plan=fault_plan, label="refine.shard",
                )
            else:
                shard_results = [_run_refine_shard(index)
                                 for index in range(num_shards)]
    finally:
        _REFINE_STATE.clear()

    component_runs: Dict[int, Tuple[List[_RoundLog], tuple, tuple]] = {}
    for shard_result in shard_results:
        for multi_pos, run in shard_result:
            component_runs[multi[multi_pos]] = run

    with _stage(timings, "refine.replay"):
        _replay_component_runs(
            clustering, components, component_runs, oracle, candidates,
            estimator, budget, diagnostics, obs, source,
        )
    aggregate_refine_diagnostics(diagnostics, component_runs)
    return clustering.canonicalize()


def _replay_component_runs(
    clustering: Clustering,
    components: Sequence[Tuple[int, ...]],
    component_runs: Dict[int, Tuple[List[_RoundLog], tuple, tuple]],
    oracle: CrowdOracle,
    candidates: CandidateSet,
    estimator,
    budget: float,
    diagnostics,
    obs,
    source,
) -> None:
    """Replay worker round logs through the caller's oracle + clustering.

    The replay *is* the authoritative accounting: priming the source
    with the worker-computed confidences makes ``oracle.ask_batch`` a
    cheap memo lookup while still flowing through the known-answer set,
    ``CrowdStats``, journaling, and the ``crowd.batch`` event — exactly
    as a single-process run would.  Rounds merge across components
    (round ``r`` = every component's local round ``r``, components in
    ascending smallest-member order): one crowd batch and one
    diagnostics/obs round each, so the iteration count reports the
    parallel crowd latency instead of a per-component sum.
    """
    prime = getattr(source, "prime", None)
    if prime is not None:
        fresh_map: Dict[Pair, float] = {}
        for rounds, _, _ in component_runs.values():
            for log in rounds:
                for a, b, confidence in log[3]:
                    fresh_map[(a, b)] = confidence
        prime(fresh_map)

    # Components replay in ascending order of their smallest member — a
    # canonical order no shard packing or fault schedule can perturb.
    replay_order = sorted(component_runs,
                          key=lambda index: components[index][0])
    by_round: List[List[_RoundLog]] = []
    for comp_index in replay_order:
        for depth, log in enumerate(component_runs[comp_index][0]):
            if depth == len(by_round):
                by_round.append([])
            by_round[depth].append(log)

    round_index = 0
    for logs in by_round:
        freed = 0
        needed_all: List[Pair] = []
        packed_total = applied_total = 0
        for free_refs, packed, needed, _fresh, applied_refs in logs:
            for ref in free_refs:
                _apply_ref(clustering, ref)
            freed += len(free_refs)
            needed_all.extend(needed)
            packed_total += packed
        if diagnostics is not None:
            diagnostics.free_operations_applied += freed
        if obs is not None and freed:
            obs.metrics.counter(
                "refine_free_operations_total",
                help="Zero-cost refinement operations applied",
            ).inc(freed)
        if not packed_total:
            continue  # pure tail entries: final free passes, no batch

        answers = oracle.ask_batch(needed_all)
        for pair, crowd_score in answers.items():
            if pair in candidates:
                estimator.add_sample(
                    pair, candidates.machine_scores[pair], crowd_score
                )
        for _free_refs, _packed, _needed, _fresh, applied_refs in logs:
            for ref in applied_refs:
                _apply_ref(clustering, ref)
            applied_total += len(applied_refs)
        round_index += 1
        if diagnostics is not None:
            diagnostics.batch_sizes.append(len(needed_all))
            diagnostics.operations_packed.append(packed_total)
            diagnostics.operations_applied.append(applied_total)
        if obs is not None:
            obs.metrics.counter(
                "refine_rounds_total",
                help="PC-Refine parallel rounds executed",
            ).inc()
            obs.event(
                "refine.round",
                round=round_index,
                budget=budget,
                batch_pairs=len(needed_all),
                packed=packed_total,
                applied=applied_total,
                clusters=len(clustering),
                histogram_samples=len(estimator),
                histogram_buckets=estimator.num_buckets,
            )

    # Fidelity guard: the replayed global clustering must restrict to
    # exactly the partition each worker computed.
    for comp_index, (_, final, _) in component_runs.items():
        by_cluster: Dict[int, List[int]] = {}
        for record_id in components[comp_index]:
            by_cluster.setdefault(clustering.cluster_of(record_id),
                                  []).append(record_id)
        replayed = sorted(tuple(sorted(members))
                          for members in by_cluster.values())
        if replayed != sorted(final):
            raise RuntimeError(
                f"cross-shard replay diverged from worker result on "
                f"component with smallest member "
                f"{components[comp_index][0]}"
            )
