"""Partial-Pivot (Algorithm 2) and the wasted-pair bound (Equation 3).

Partial-Pivot batches one crowd iteration: it takes the ``k`` un-clustered
records with the smallest permutation ranks as simultaneous pivots, issues
*all* their incident candidate edges in one batch, and then replays the
sequential Crowd-Pivot cluster formation on the answered subgraph.  Lemma 2:
given the same permutation and the same crowd answers, the clusters produced
are identical to sequential Crowd-Pivot's — parallelism costs only *wasted
pairs* (edges the sequential algorithm would never have asked), and Equation
3 bounds those ahead of time, before any crowdsourcing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.permutation import Permutation
from repro.crowd.oracle import CrowdOracle
from repro.obs import maybe_span
from repro.pruning.graph import CandidateGraph

Pair = Tuple[int, int]


@dataclass(frozen=True)
class PartialPivotResult:
    """Output of one Partial-Pivot invocation.

    Attributes:
        clusters: The clusters formed this round, in pivot order.
        issued_pairs: The candidate pairs sent to the crowd this round.
        predicted_waste: The Equation-3 upper bound ``sum w_j`` computed
            before crowdsourcing.
    """

    clusters: Tuple[FrozenSet[int], ...]
    issued_pairs: Tuple[Pair, ...]
    predicted_waste: int


def waste_estimates(graph: CandidateGraph, pivots: List[int]) -> List[int]:
    """Equation 3: the per-pivot wasted-pair bounds ``w_j``.

    For pivot ``r_j``: if ``r_j`` is adjacent to an earlier pivot, every edge
    from ``r_j`` to a non-pivot may be wasted (``r_j`` may get absorbed);
    otherwise only edges to vertices that some earlier pivot can steal
    (common neighbors) may be wasted.

    Args:
        graph: The current candidate graph ``G_i``.
        pivots: The chosen pivots ``r_1 ... r_k`` in permutation order.

    Returns:
        ``[w_1, ..., w_k]`` (``w_1`` is always 0).
    """
    earlier_pivots: Set[int] = set()
    pivot_neighborhood: Set[int] = set()  # union of N(r_x) over earlier pivots
    estimates: List[int] = []
    for pivot in pivots:
        neighbors = graph.neighbors(pivot)
        if pivot in pivot_neighborhood:
            # r_j can be clustered by an earlier pivot; all its non-pivot
            # edges are then wasted.
            waste = sum(1 for n in neighbors if n not in earlier_pivots)
        else:
            # r_j survives as a pivot, but earlier pivots may steal its
            # common neighbors.
            waste = sum(1 for n in neighbors if n in pivot_neighborhood)
        estimates.append(waste)
        earlier_pivots.add(pivot)
        pivot_neighborhood.update(neighbors)
    return estimates


def partial_pivot(
    graph: CandidateGraph,
    k: int,
    permutation: Permutation,
    oracle: CrowdOracle,
    obs=None,
    *,
    pivots: Optional[List[int]] = None,
    predicted_waste: Optional[int] = None,
) -> PartialPivotResult:
    """Run one Partial-Pivot round, mutating ``graph`` in place.

    Args:
        graph: ``G_i``; clustered vertices are removed from it (it becomes
            ``G_{i+1}`` on return).
        k: Number of simultaneous pivots; clamped to the number of live
            vertices.
        permutation: The shared permutation ``M``.
        oracle: Crowd access; all incident edges go out as one batch.
        obs: Optional :class:`~repro.obs.ObsContext`; the round runs
            inside a ``pivot.partial`` span so its crowd batch nests
            under it in the trace.
        pivots: Fast-engine hand-off: the first ``k`` live vertices in
            permutation order, as already derived by the caller's
            Equation-4 scan.  Must be given together with
            ``predicted_waste``; when omitted, both are derived here (the
            reference path).
        predicted_waste: Fast-engine hand-off: ``sum(waste_estimates(graph,
            pivots))`` for those pivots, computed *before* any mutation.

    Returns:
        The clusters formed and bookkeeping for the waste analysis.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if (pivots is None) != (predicted_waste is None):
        raise ValueError("pivots and predicted_waste must be given together")
    with maybe_span(obs, "pivot.partial", k=k) as span:
        result = _partial_pivot_round(graph, k, permutation, oracle,
                                      pivots, predicted_waste)
        if obs is not None:
            span.set_attr("issued_pairs", len(result.issued_pairs))
            span.set_attr("clusters", len(result.clusters))
            span.set_attr("predicted_waste", result.predicted_waste)
    return result


def _partial_pivot_round(
    graph: CandidateGraph,
    k: int,
    permutation: Permutation,
    oracle: CrowdOracle,
    pivots: Optional[List[int]] = None,
    predicted_waste: Optional[int] = None,
) -> PartialPivotResult:
    if pivots is None:
        alive = graph.vertices
        if not alive:
            return PartialPivotResult(clusters=(), issued_pairs=(),
                                      predicted_waste=0)
        pivots = permutation.ordered(alive)[:k]
        predicted_waste = sum(waste_estimates(graph, pivots))
    elif not pivots:
        return PartialPivotResult(clusters=(), issued_pairs=(),
                                  predicted_waste=0)

    # All candidate edges incident to any pivot, one crowd batch.
    issued: Set[Pair] = set()
    for pivot in pivots:
        for neighbor in graph.neighbors(pivot):
            issued.add((pivot, neighbor) if pivot < neighbor
                       else (neighbor, pivot))
    ordered_pairs = sorted(issued)
    answers = oracle.ask_batch(ordered_pairs)

    # H_i: all live vertices, edges restricted to crowd-confirmed duplicates.
    confirmed: Dict[int, Set[int]] = {}
    for pair, confidence in answers.items():
        if confidence > 0.5:
            a, b = pair
            confirmed.setdefault(a, set()).add(b)
            confirmed.setdefault(b, set()).add(a)

    removed: Set[int] = set()
    clusters: List[FrozenSet[int]] = []
    for pivot in pivots:
        if pivot in removed:
            continue
        cluster = {pivot}
        for neighbor in confirmed.get(pivot, ()):
            if neighbor not in removed:
                cluster.add(neighbor)
        clusters.append(frozenset(cluster))
        removed.update(cluster)
    graph.remove_vertices(removed)

    return PartialPivotResult(
        clusters=tuple(clusters),
        issued_pairs=tuple(ordered_pairs),
        predicted_waste=predicted_waste,
    )
