"""PC-Pivot (Algorithm 3): the parallel cluster-generation phase of ACD.

Each round, PC-Pivot picks the largest pivot count ``k`` whose predicted
wasted pairs stay within an ``ε`` fraction of all pairs issued (Equation 4),
then runs one Partial-Pivot round.  Lemma 4: the clustering equals sequential
Crowd-Pivot's for the same permutation (hence the same expected
5-approximation), and at most an ``ε`` fraction of issued pairs is wasted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.clustering import Clustering
from repro.core.partial_pivot import partial_pivot, waste_estimates
from repro.core.permutation import Permutation
from repro.crowd.oracle import CrowdOracle
from repro.pruning.candidate import CandidateSet
from repro.pruning.graph import CandidateGraph

DEFAULT_EPSILON = 0.1


@dataclass
class PCPivotDiagnostics:
    """Per-run diagnostics of PC-Pivot (used by the ε experiments).

    Attributes:
        ks: The pivot count chosen in each round.
        predicted_waste: Equation-3 waste bound summed per round.
        issued_per_round: Number of candidate pairs issued per round.
    """

    ks: List[int] = field(default_factory=list)
    predicted_waste: List[int] = field(default_factory=list)
    issued_per_round: List[int] = field(default_factory=list)

    @property
    def rounds(self) -> int:
        return len(self.ks)

    @property
    def total_predicted_waste(self) -> int:
        return sum(self.predicted_waste)


def choose_k(graph: CandidateGraph, permutation: Permutation,
             epsilon: float) -> int:
    """The largest ``k`` satisfying Equation 4 on the current graph.

    Scans live vertices in permutation order, accumulating the waste bound
    ``sum w_j`` and the issued-edge count ``|P_j|``; returns the largest
    prefix length where ``sum w_j <= epsilon * |P_k|``.  Always >= 1
    (``w_1 = 0``).
    """
    if epsilon < 0:
        raise ValueError(f"epsilon must be >= 0, got {epsilon}")
    ordered = permutation.ordered(graph.vertices)
    if not ordered:
        return 0
    estimates = waste_estimates(graph, ordered)

    best_k = 1
    cumulative_waste = 0
    issued_edges = 0
    earlier_pivots = set()
    for j, pivot in enumerate(ordered, start=1):
        cumulative_waste += estimates[j - 1]
        # Fresh edges contributed by r_j: all incident edges except those to
        # earlier pivots (already counted from the other endpoint).
        fresh = sum(1 for n in graph.neighbors(pivot) if n not in earlier_pivots)
        issued_edges += fresh
        earlier_pivots.add(pivot)
        if cumulative_waste <= epsilon * issued_edges:
            best_k = j
    return best_k


def pc_pivot(
    record_ids,
    candidates: CandidateSet,
    oracle: CrowdOracle,
    epsilon: float = DEFAULT_EPSILON,
    permutation: Optional[Permutation] = None,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    diagnostics: Optional[PCPivotDiagnostics] = None,
    obs=None,
) -> Clustering:
    """Run PC-Pivot over the candidate graph.

    Args:
        record_ids: The record set ``R`` (ids).
        candidates: The candidate set ``S``.
        oracle: Crowd access (one batch per round).
        epsilon: The wasted-pair budget ε of Equation 4 (paper default 0.1).
        permutation: Explicit permutation ``M``; random when ``None``.
        seed: Seed for the random permutation (ignored if ``permutation``).
        rng: Alternative RNG for the permutation.
        diagnostics: Optional sink for per-round measurements.
        obs: Optional :class:`~repro.obs.ObsContext`; each round emits a
            ``pivot.round`` event (chosen ``k``, predicted waste, issued
            pairs, clusters formed) and bumps the round counter.

    Returns:
        The clustering ``C`` (identical in distribution — in fact identical
        per-permutation — to Crowd-Pivot's).
    """
    ids = list(record_ids)
    if permutation is None:
        permutation = Permutation.random(ids, rng=rng, seed=seed)
    graph = CandidateGraph(ids, candidates.pairs)
    clustering = Clustering()

    round_index = 0
    while not graph.is_empty():
        k = choose_k(graph, permutation, epsilon)
        result = partial_pivot(graph, k, permutation, oracle, obs=obs)
        for cluster in result.clusters:
            clustering.add_cluster(cluster)
        if diagnostics is not None:
            diagnostics.ks.append(k)
            diagnostics.predicted_waste.append(result.predicted_waste)
            diagnostics.issued_per_round.append(len(result.issued_pairs))
        round_index += 1
        if obs is not None:
            obs.metrics.counter(
                "pivot_rounds_total",
                help="PC-Pivot parallel rounds executed",
            ).inc()
            obs.event(
                "pivot.round",
                round=round_index,
                k=k,
                predicted_waste=result.predicted_waste,
                issued_pairs=len(result.issued_pairs),
                clusters=len(result.clusters),
                remaining_records=len(graph.vertices),
            )

    return clustering
