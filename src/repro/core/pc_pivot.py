"""PC-Pivot (Algorithm 3): the parallel cluster-generation phase of ACD.

Each round, PC-Pivot picks the largest pivot count ``k`` whose predicted
wasted pairs stay within an ``ε`` fraction of all pairs issued (Equation 4),
then runs one Partial-Pivot round.  Lemma 4: the clustering equals sequential
Crowd-Pivot's for the same permutation (hence the same expected
5-approximation), and at most an ``ε`` fraction of issued pairs is wasted.

Two engines run the loop (see :data:`~repro.core.pivot_engine.PIVOT_ENGINES`):
``reference`` re-sorts the live vertices and re-derives the waste estimates
from scratch every round (the literal reading above), while ``fast`` keeps
an incremental permutation-ordered live list, fuses the Equation-4 scan into
one early-exiting pass, and hands the chosen pivots to Partial-Pivot instead
of recomputing them.  Outputs are byte-identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.clustering import Clustering
from repro.core.partial_pivot import partial_pivot, waste_estimates
from repro.core.permutation import Permutation
from repro.core.pivot_engine import (
    PIVOT_ENGINES,
    LiveVertexOrder,
    choose_pivots,
    require_pivot_engine,
)
from repro.crowd.oracle import CrowdOracle
from repro.pruning.candidate import CandidateSet
from repro.pruning.graph import CandidateGraph, EagerCandidateGraph

DEFAULT_EPSILON = 0.1

__all__ = [
    "DEFAULT_EPSILON",
    "PIVOT_ENGINES",
    "PCPivotDiagnostics",
    "choose_k",
    "pc_pivot",
]


@dataclass
class PCPivotDiagnostics:
    """Per-run diagnostics of PC-Pivot (used by the ε experiments).

    Attributes:
        ks: The pivot count chosen in each round.
        predicted_waste: Equation-3 waste bound summed per round.
        issued_per_round: Number of candidate pairs issued per round.
    """

    ks: List[int] = field(default_factory=list)
    predicted_waste: List[int] = field(default_factory=list)
    issued_per_round: List[int] = field(default_factory=list)

    @property
    def rounds(self) -> int:
        return len(self.ks)

    @property
    def total_predicted_waste(self) -> int:
        return sum(self.predicted_waste)


def choose_k(graph: CandidateGraph, permutation: Permutation,
             epsilon: float) -> int:
    """The largest ``k`` satisfying Equation 4 on the current graph.

    Scans live vertices in permutation order, accumulating the waste bound
    ``sum w_j`` and the issued-edge count ``|P_j|``; returns the largest
    prefix length where ``sum w_j <= epsilon * |P_k|``.  Always >= 1
    (``w_1 = 0``).

    ``epsilon=0`` contract: the zero budget admits only waste-free
    prefixes, so ``k`` is the longest prefix of pivots that provably
    cannot waste a pair (pairwise distance > 2 in the candidate graph).
    On dense graphs that prefix is usually a single pivot — every round
    then degrades to ``k=1`` and PC-Pivot serializes into Crowd-Pivot.
    The same degradation appears for ``ε > 0`` when the waste bound binds
    immediately; :func:`pc_pivot` flags those rounds with a
    ``pivot.waste_bound_binding`` warning event on the attached obs
    context.
    """
    if epsilon < 0:
        raise ValueError(f"epsilon must be >= 0, got {epsilon}")
    ordered = permutation.ordered(graph.vertices)
    if not ordered:
        return 0
    estimates = waste_estimates(graph, ordered)

    best_k = 1
    cumulative_waste = 0
    issued_edges = 0
    earlier_pivots = set()
    for j, pivot in enumerate(ordered, start=1):
        cumulative_waste += estimates[j - 1]
        # Fresh edges contributed by r_j: all incident edges except those to
        # earlier pivots (already counted from the other endpoint).
        fresh = sum(1 for n in graph.neighbors(pivot) if n not in earlier_pivots)
        issued_edges += fresh
        earlier_pivots.add(pivot)
        if cumulative_waste <= epsilon * issued_edges:
            best_k = j
    return best_k


def pc_pivot(
    record_ids,
    candidates: CandidateSet,
    oracle: CrowdOracle,
    epsilon: float = DEFAULT_EPSILON,
    permutation: Optional[Permutation] = None,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    diagnostics: Optional[PCPivotDiagnostics] = None,
    obs=None,
    engine: str = "fast",
    shards: int = 0,
    processes: int = 0,
    supervisor_policy=None,
    fault_plan=None,
) -> Clustering:
    """Run PC-Pivot over the candidate graph.

    Args:
        record_ids: The record set ``R`` (ids).
        candidates: The candidate set ``S``.
        oracle: Crowd access (one batch per round).
        epsilon: The wasted-pair budget ε of Equation 4 (paper default 0.1).
        permutation: Explicit permutation ``M``; random when ``None``.
        seed: Seed for the random permutation (ignored if ``permutation``).
        rng: Alternative RNG for the permutation.
        diagnostics: Optional sink for per-round measurements.
        obs: Optional :class:`~repro.obs.ObsContext`; each round emits a
            ``pivot.round`` event (chosen ``k``, predicted waste, issued
            pairs, clusters formed) and bumps the round counter.  Rounds
            forced down to ``k=1`` under a positive ε additionally emit a
            ``pivot.waste_bound_binding`` warning event — the waste bound
            is binding and the round runs sequentially.
        engine: One of :data:`~repro.core.pivot_engine.PIVOT_ENGINES` —
            "fast" (incremental order + fused Equation-4 scan, default)
            or "reference" (per-round re-derivation); outputs are
            byte-identical.
        shards: When >= 1, run the sharded engine of
            :mod:`repro.core.pivot_shard`: the candidate graph splits
            into connected components, components pack into this many
            shard tasks, and a cross-shard merge reassembles the result.
            The clustering (including cluster IDs) is byte-identical to
            the unsharded engines; stats/diagnostics/events follow the
            sharded engine's merged component-round accounting (round
            ``r`` batches every component's local round ``r`` at once,
            so the iteration count reports the parallel crowd latency),
            identical for every shard count, process count, and fault
            plan.
            Requires ``engine="fast"`` and a pair-deterministic answer
            source.  ``0`` (default) keeps the classic single-graph loop.
        processes: Worker processes for the shard tasks (``<= 1`` runs
            them in-process; ignored without ``shards``).
        supervisor_policy: Fault-handling knobs forwarded to the
            supervised worker pool (sharded mode only).
        fault_plan: Deterministic process-fault injection for chaos
            testing (sharded mode only).

    Returns:
        The clustering ``C`` (identical in distribution — in fact identical
        per-permutation — to Crowd-Pivot's).
    """
    require_pivot_engine(engine)
    ids = list(record_ids)
    if isinstance(shards, str):
        from repro.runtime.autoshard import resolve_auto_shards

        shards = resolve_auto_shards("pivot", records=len(ids),
                                     requested=shards, obs=obs)
        if engine != "fast":
            # The heuristic never picks a config the sharded engine
            # rejects; explicit shard counts still fail fast below.
            shards = 0
        if shards == 0:
            processes = 0  # classic engine: no pool to feed
    if shards < 0:
        raise ValueError(f"shards must be >= 0, got {shards}")
    if processes > 1 and shards == 0:
        raise ValueError(
            "pivot processes require pivot shards (pass shards >= 1)"
        )
    if permutation is None:
        permutation = Permutation.random(ids, rng=rng, seed=seed)
    if shards:
        if engine != "fast":
            raise ValueError(
                f"sharded generation requires the 'fast' engine, "
                f"got {engine!r}"
            )
        from repro.core.pivot_shard import pc_pivot_sharded
        return pc_pivot_sharded(
            ids, candidates, oracle, epsilon, permutation, diagnostics,
            obs, shards=shards, processes=processes,
            supervisor_policy=supervisor_policy, fault_plan=fault_plan,
        )
    run = _pc_pivot_fast if engine == "fast" else _pc_pivot_reference
    return run(ids, candidates, oracle, epsilon, permutation, diagnostics,
               obs)


def _finish_round(obs, diagnostics, round_index, k, result, epsilon,
                  live_before, remaining) -> None:
    """Per-round bookkeeping shared by both engines (identical streams)."""
    if diagnostics is not None:
        diagnostics.ks.append(k)
        diagnostics.predicted_waste.append(result.predicted_waste)
        diagnostics.issued_per_round.append(len(result.issued_pairs))
    if obs is not None:
        obs.metrics.counter(
            "pivot_rounds_total",
            help="PC-Pivot parallel rounds executed",
        ).inc()
        if k == 1 and epsilon > 0 and live_before > 1:
            obs.event(
                "pivot.waste_bound_binding",
                round=round_index,
                epsilon=epsilon,
                live_records=live_before,
            )
        obs.event(
            "pivot.round",
            round=round_index,
            k=k,
            predicted_waste=result.predicted_waste,
            issued_pairs=len(result.issued_pairs),
            clusters=len(result.clusters),
            remaining_records=remaining,
        )


def _pc_pivot_reference(ids, candidates, oracle, epsilon, permutation,
                        diagnostics, obs) -> Clustering:
    """Reference engine: whole-graph re-derivation every round."""
    graph = CandidateGraph(ids, candidates.pairs)
    clustering = Clustering()

    round_index = 0
    while not graph.is_empty():
        live_before = len(graph)
        k = choose_k(graph, permutation, epsilon)
        result = partial_pivot(graph, k, permutation, oracle, obs=obs)
        for cluster in result.clusters:
            clustering.add_cluster(cluster)
        round_index += 1
        _finish_round(obs, diagnostics, round_index, k, result, epsilon,
                      live_before, remaining=len(graph))

    return clustering


def _pc_pivot_fast(ids, candidates, oracle, epsilon, permutation,
                   diagnostics, obs) -> Clustering:
    """Fast engine: incremental live order, fused scan, shared estimates.

    Byte-identical to :func:`_pc_pivot_reference` (same pivots, same crowd
    batches, same diagnostics and events) — property-tested in
    ``tests/core/test_pivot_engines.py``.
    """
    graph = EagerCandidateGraph(ids, candidates.pairs)
    order = LiveVertexOrder(permutation, graph.vertices)
    clustering = Clustering()

    round_index = 0
    while not graph.is_empty():
        ordered = order.live()
        live_before = len(ordered)
        k, estimates = choose_pivots(graph, ordered, epsilon)
        result = partial_pivot(
            graph, k, permutation, oracle, obs=obs,
            pivots=ordered[:k], predicted_waste=sum(estimates),
        )
        for cluster in result.clusters:
            clustering.add_cluster(cluster)
            order.discard(cluster)
        round_index += 1
        _finish_round(obs, diagnostics, round_index, k, result, epsilon,
                      live_before, remaining=len(graph))

    return clustering
