"""The clustering container shared by all deduplication algorithms.

A :class:`Clustering` is a partition of record ids into disjoint clusters.
It supports the two refinement operations of Section 5.1 — *split* (remove a
record into its own singleton) and *merger* (union two clusters) — plus the
queries the algorithms and metrics need.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple


class Clustering:
    """A mutable partition of record ids.

    Clusters are identified by opaque integer ids that remain stable until
    the cluster is destroyed by a merge or emptied by splits.
    """

    def __init__(self, clusters: Iterable[Iterable[int]] = ()):
        self._members: Dict[int, Set[int]] = {}
        self._cluster_of: Dict[int, int] = {}
        self._next_id = 0
        for cluster in clusters:
            self.add_cluster(cluster)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def singletons(record_ids: Iterable[int]) -> "Clustering":
        """Each record in its own cluster."""
        return Clustering([record_id] for record_id in record_ids)

    def add_cluster(self, members: Iterable[int]) -> int:
        """Add a new cluster; returns its id.

        Raises:
            ValueError: If the cluster is empty or any member is already
                present in the partition.
        """
        member_set = set(members)
        if not member_set:
            raise ValueError("cannot add an empty cluster")
        overlap = member_set & self._cluster_of.keys()
        if overlap:
            raise ValueError(f"records already clustered: {sorted(overlap)[:5]}")
        cluster_id = self._next_id
        self._next_id += 1
        self._members[cluster_id] = member_set
        for record_id in member_set:
            self._cluster_of[record_id] = cluster_id
        return cluster_id

    def copy(self) -> "Clustering":
        """Deep copy (cluster ids are preserved)."""
        clone = Clustering.__new__(Clustering)
        clone._members = {cid: set(members) for cid, members in self._members.items()}
        clone._cluster_of = dict(self._cluster_of)
        clone._next_id = self._next_id
        return clone

    @property
    def next_id(self) -> int:
        """The id the next merge or split will be assigned.

        Part of the determinism contract (merge tie-breaking and split
        numbering depend on id order); exposed so coordinators can ship
        it to workers without serializing the whole clustering.
        """
        return self._next_id

    # ------------------------------------------------------------------
    # Serialization (phase checkpoints)
    # ------------------------------------------------------------------

    def to_state(self) -> Dict[str, object]:
        """A JSON-serializable snapshot preserving cluster ids.

        Cluster ids and the id counter are part of the state: merge
        tie-breaking and split numbering depend on them, so a restored
        clustering must continue issuing exactly the ids the original
        would have.
        """
        return {
            "clusters": [[cid, sorted(members)]
                         for cid, members in sorted(self._members.items())],
            "next_id": self._next_id,
        }

    @staticmethod
    def from_state(state: Dict[str, object]) -> "Clustering":
        """Rebuild a clustering snapshotted by :meth:`to_state`,
        byte-identical in ids, membership, and future id assignment."""
        try:
            clusters = [(int(cid), [int(r) for r in members])
                        for cid, members in state["clusters"]]
            next_id = int(state["next_id"])
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(
                f"malformed clustering state ({error})"
            ) from None
        clustering = Clustering.__new__(Clustering)
        clustering._members = {}
        clustering._cluster_of = {}
        clustering._next_id = next_id
        for cid, members in clusters:
            if not members or cid in clustering._members or cid >= next_id:
                raise ValueError("malformed clustering state")
            member_set = set(members)
            clustering._members[cid] = member_set
            for record_id in member_set:
                if record_id in clustering._cluster_of:
                    raise ValueError(
                        f"malformed clustering state (record {record_id} "
                        "in two clusters)"
                    )
                clustering._cluster_of[record_id] = cid
        return clustering

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of clusters."""
        return len(self._members)

    def __contains__(self, record_id: int) -> bool:
        return record_id in self._cluster_of

    @property
    def num_records(self) -> int:
        return len(self._cluster_of)

    @property
    def cluster_ids(self) -> List[int]:
        return sorted(self._members)

    def cluster_of(self, record_id: int) -> int:
        """The id of the cluster containing a record."""
        return self._cluster_of[record_id]

    def members(self, cluster_id: int) -> Set[int]:
        """A copy of the member set of a cluster."""
        return set(self._members[cluster_id])

    def size(self, cluster_id: int) -> int:
        return len(self._members[cluster_id])

    def together(self, record_a: int, record_b: int) -> bool:
        """True iff two records are currently in the same cluster
        (the indicator ``x_ij`` of Equations 1-2)."""
        return self._cluster_of[record_a] == self._cluster_of[record_b]

    def as_sets(self) -> List[FrozenSet[int]]:
        """The partition as a canonical list of frozensets (sorted by
        smallest member) — the hashable form used by tests and metrics."""
        return sorted(
            (frozenset(members) for members in self._members.values()),
            key=min,
        )

    def record_ids(self) -> Iterator[int]:
        return iter(self._cluster_of)

    def intra_cluster_pairs(self) -> Iterator[Tuple[int, int]]:
        """Every unordered same-cluster record pair (the pairs with
        ``x_ij = 1``)."""
        for members in self._members.values():
            ordered = sorted(members)
            for i, a in enumerate(ordered):
                for b in ordered[i + 1:]:
                    yield (a, b)

    def num_intra_cluster_pairs(self) -> int:
        return sum(
            len(m) * (len(m) - 1) // 2 for m in self._members.values()
        )

    # ------------------------------------------------------------------
    # Refinement operations (Section 5.1)
    # ------------------------------------------------------------------

    def split(self, record_id: int) -> int:
        """Split a record out of its cluster into a new singleton.

        Returns the new singleton's cluster id.

        Raises:
            ValueError: If the record is already a singleton (the paper's
                split operation is only defined for clusters of size >= 2).
        """
        old_id = self._cluster_of[record_id]
        old_members = self._members[old_id]
        if len(old_members) < 2:
            raise ValueError(f"record {record_id} is already a singleton")
        old_members.discard(record_id)
        del self._cluster_of[record_id]
        return self.add_cluster([record_id])

    def merge(self, cluster_a: int, cluster_b: int) -> int:
        """Merge two clusters; returns the id of the surviving cluster.

        The larger cluster absorbs the smaller (ties: lower id survives).

        Raises:
            ValueError: If the two ids are equal.
        """
        if cluster_a == cluster_b:
            raise ValueError("cannot merge a cluster with itself")
        members_a = self._members[cluster_a]
        members_b = self._members[cluster_b]
        if len(members_a) < len(members_b) or (
            len(members_a) == len(members_b) and cluster_b < cluster_a
        ):
            cluster_a, cluster_b = cluster_b, cluster_a
            members_a, members_b = members_b, members_a
        for record_id in members_b:
            self._cluster_of[record_id] = cluster_a
        members_a.update(members_b)
        del self._members[cluster_b]
        return cluster_a

    # ------------------------------------------------------------------
    # Canonicalization
    # ------------------------------------------------------------------

    def canonicalize(self) -> "Clustering":
        """Renumber cluster ids into the canonical compact form, in place.

        Clusters are re-keyed ``0..n-1`` in ascending order of their
        smallest member (the :meth:`as_sets` order) and the id counter
        resets to ``n``.  The partition itself is untouched, so two
        clusterings with equal :meth:`as_sets` become byte-identical in
        :meth:`to_state` after canonicalization — regardless of the
        operation history that produced them.  Terminal phases (e.g.
        :func:`~repro.core.pc_refine.pc_refine`) canonicalize their
        output so differently-ordered but equal refinements compare
        equal id-for-id.  Returns ``self``.
        """
        ordered = sorted(self._members.values(), key=min)
        self._members = {cid: members for cid, members in enumerate(ordered)}
        self._cluster_of = {
            record_id: cid
            for cid, members in self._members.items()
            for record_id in members
        }
        self._next_id = len(ordered)
        return self

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert the partition is internally consistent (test helper)."""
        seen: Set[int] = set()
        for cluster_id, members in self._members.items():
            if not members:
                raise AssertionError(f"cluster {cluster_id} is empty")
            for record_id in members:
                if record_id in seen:
                    raise AssertionError(f"record {record_id} in two clusters")
                seen.add(record_id)
                if self._cluster_of.get(record_id) != cluster_id:
                    raise AssertionError(
                        f"record {record_id} has stale cluster pointer"
                    )
        if seen != set(self._cluster_of):
            raise AssertionError("cluster_of and members disagree on records")
