"""Equi-depth histogram mapping machine scores to estimated crowd scores.

Section 5.2: when an operation's benefit needs ``f_c`` values that have not
been crowdsourced, ACD estimates them from the machine score ``f`` via an
equi-depth histogram built over the already-crowdsourced pairs ``A``
(following Whang et al. [48]; the paper uses m = 20 buckets).  Each bucket
covers an equal number of observed pairs; a query score falls into one bucket
and is estimated as that bucket's mean observed crowd score.  The histogram
is rebuilt whenever new pairs are crowdsourced.
"""

from __future__ import annotations

import bisect
from operator import itemgetter
from typing import Dict, List, Optional, Tuple

DEFAULT_NUM_BUCKETS = 20

Pair = Tuple[int, int]

#: Projects an ``(f, f_c)`` observation to its crowd score at C speed.
_crowd_score = itemgetter(1)


class HistogramEstimator:
    """Equi-depth ``f -> f_c`` estimator over observed (f, f_c) samples."""

    def __init__(self, num_buckets: int = DEFAULT_NUM_BUCKETS):
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        self.num_buckets = num_buckets
        self._samples: Dict[Pair, Tuple[float, float]] = {}
        self._upper_bounds: List[float] = []
        self._bucket_means: List[float] = []
        self._merged_counts: List[int] = []
        self._dirty = True
        self._epoch = 0
        # Sorted-snapshot bookkeeping: ``_sorted_obs`` is the observation
        # list as of the last rebuild (reassigned, never mutated — safe
        # to share across copies) and ``_fresh`` holds samples added
        # since, keyed by pair so an overwrite of a *snapshotted* pair
        # can be detected and the snapshot discarded.  A rebuild then
        # merges the snapshot with the (few) fresh samples instead of
        # re-sorting the full set — the sharded refine engine leans on
        # this, rebuilding per crowdsourcing component.
        self._sorted_obs: Optional[List[Tuple[float, float]]] = None
        self._fresh: Dict[Pair, Tuple[float, float]] = {}
        # Copy-on-write: when True, ``_samples`` is shared with another
        # estimator and must be detached before the first mutation.
        self._shared_samples = False

    @property
    def epoch(self) -> int:
        """Monotone counter bumped by every sample ingestion.

        Incremental consumers (:class:`~repro.core.evaluation_cache.
        EvaluationCache`) compare epochs to learn that the histogram *may*
        have changed, then diff per-score estimates to find out what
        actually did.
        """
        return self._epoch

    def __len__(self) -> int:
        return len(self._samples)

    def _detach(self) -> None:
        """Materialize a private ``_samples`` dict before mutating."""
        if self._shared_samples:
            self._samples = dict(self._samples)
            self._shared_samples = False

    def add_sample(self, pair: Pair, machine_score: float,
                   crowd_score: float) -> None:
        """Record one crowdsourced pair; marks the histogram for rebuild.

        Re-adding the same pair overwrites its previous sample (idempotent
        with respect to replayed answers).
        """
        self._detach()
        sample = (machine_score, crowd_score)
        if self._sorted_obs is not None:
            if pair in self._fresh:
                self._fresh[pair] = sample
            elif pair in self._samples:
                # Overwrites a snapshotted sample — the snapshot no
                # longer reflects the live set, so fall back to a full
                # re-sort on the next rebuild.
                self._sorted_obs = None
                self._fresh.clear()
            else:
                self._fresh[pair] = sample
        self._samples[pair] = sample
        self._dirty = True
        self._epoch += 1

    def add_samples(self, samples: Dict[Pair, Tuple[float, float]]) -> None:
        """Bulk :meth:`add_sample`."""
        self._detach()
        self._sorted_obs = None
        self._fresh.clear()
        self._samples.update(samples)
        self._dirty = True
        self._epoch += 1

    def copy(self) -> "HistogramEstimator":
        """An independent clone observationally detached from its source.

        Cheap by construction: the sample dict is *shared* copy-on-write
        (either side detaches with a shallow dict copy before its first
        mutation), the sorted snapshot is shared outright (rebuilds
        reassign it, never mutate it), and the bucket arrays likewise.
        Cloning a clean estimator therefore costs a handful of pointer
        copies, and only clones that go on to ingest samples ever pay
        for a private dict — the sharded refine engine clones the global
        histogram once per component, of which few crowdsource.
        """
        clone = HistogramEstimator(self.num_buckets)
        clone._samples = self._samples
        clone._shared_samples = self._shared_samples = True
        clone._upper_bounds = self._upper_bounds
        clone._bucket_means = self._bucket_means
        clone._merged_counts = self._merged_counts
        clone._sorted_obs = self._sorted_obs
        clone._fresh = dict(self._fresh)
        clone._dirty = self._dirty
        clone._epoch = self._epoch
        return clone

    def _rebuild(self) -> None:
        if self._sorted_obs is not None:
            # Splice the few samples added since the snapshot into a copy
            # of the (already sorted) snapshot — same multiset as sorting
            # ``_samples.values()`` from scratch (overwrites of
            # snapshotted pairs discard the snapshot in
            # :meth:`add_sample`), and equal tuples are interchangeable,
            # so the buckets come out identical.  ``list`` + ``insort``
            # run at C speed, so this costs O(S + k·log S) with a tiny
            # constant versus the O(S·log S) full sort.
            observations = list(self._sorted_obs)
            for sample in self._fresh.values():
                bisect.insort(observations, sample)
        else:
            observations = sorted(self._samples.values())
        self._sorted_obs = observations
        self._fresh = {}
        self._upper_bounds = []
        self._bucket_means = []
        self._merged_counts = []
        if not observations:
            self._dirty = False
            return
        buckets = min(self.num_buckets, len(observations))
        size = len(observations) / buckets
        start = 0
        for index in range(buckets):
            end = len(observations) if index == buckets - 1 else round((index + 1) * size)
            chunk = observations[start:end]
            if not chunk:
                continue
            upper = chunk[-1][0]
            if self._upper_bounds and self._upper_bounds[-1] == upper:
                # Equi-depth cuts can land inside a run of equal machine
                # scores, producing two buckets with the same upper bound.
                # bisect_left can only ever select the first of those, so
                # the second would be dead weight *and* its samples lost to
                # queries at exactly that score — fold the chunk into the
                # previous bucket (weighted mean) instead.
                merged = self._merged_counts[-1] + len(chunk)
                # sum(map(...)) adds the same floats in the same order as
                # the obvious genexpr — bit-identical means, C-speed walk.
                self._bucket_means[-1] = (
                    self._bucket_means[-1] * self._merged_counts[-1]
                    + sum(map(_crowd_score, chunk))
                ) / merged
                self._merged_counts[-1] = merged
            else:
                self._upper_bounds.append(upper)
                self._bucket_means.append(
                    sum(map(_crowd_score, chunk)) / len(chunk)
                )
                self._merged_counts.append(len(chunk))
            start = end
        self._dirty = False

    def estimate(self, machine_score: float) -> float:
        """Estimated crowd score for a pair with the given machine score.

        Bucket semantics (the ``bisect_left`` contract, made explicit):
        bucket ``i`` covers machine scores in ``(bounds[i-1], bounds[i]]``
        — a score exactly equal to a bucket's upper bound belongs to that
        bucket, because ``bisect_left`` returns the index of the first
        bound ``>= machine_score``.  Scores above the last bound clamp to
        the last bucket; scores at or below the first bound fall in bucket
        0.  Upper bounds are strictly increasing (``_rebuild`` merges
        chunks sharing a bound), so every bucket is reachable.

        With no samples yet, falls back to the machine score itself (the
        "straightforward solution" the paper improves upon); this only
        happens before the generation phase has crowdsourced anything.
        """
        if self._dirty:
            self._rebuild()
        if not self._bucket_means:
            return min(1.0, max(0.0, machine_score))
        index = bisect.bisect_left(self._upper_bounds, machine_score)
        if index >= len(self._bucket_means):
            index = len(self._bucket_means) - 1
        return self._bucket_means[index]

    def bucket_table(self) -> List[Tuple[float, float]]:
        """(upper_bound, mean_crowd_score) per bucket — for inspection."""
        if self._dirty:
            self._rebuild()
        return list(zip(self._upper_bounds, self._bucket_means))
