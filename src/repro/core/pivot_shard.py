"""Sharded parallel PC-Pivot: per-component engines, cross-shard merge.

Cluster generation decomposes exactly along connected components of the
candidate graph: every pair Crowd-Pivot issues is pivot-incident, so
work in one component never touches another's vertices, and running
PC-Pivot per component (with the global permutation restricted to the
component) produces precisely the clusters the whole-graph run would —
Lemma 2/4 applied component-wise.  This module exploits that:

1. **Partition** — :func:`~repro.pruning.components.connected_components`
   splits ``G = (V_R, E_S)``; multi-vertex components are packed into
   shard tasks largest-first.
2. **Fan out** — each shard runs in a worker process under the
   supervised pool of :mod:`repro.runtime.supervisor`, executing the
   fast engine per component over its own
   :class:`~repro.pruning.graph.EagerCandidateGraph` against a forked
   copy of the *pair-deterministic* answer source (every process
   resolves a pair to the same confidence, so placement cannot change
   any answer).  Workers return per-component round logs: chosen ``k``,
   predicted waste, issued pairs, clusters, and the fresh confidences.
3. **Merge** — the parent primes its answer source with the worker
   confidences, then replays *merged rounds* through the caller's
   oracle: round ``r`` of the sharded run is the union of every
   component's local round ``r``, components ordered by their smallest
   permutation rank.  One crowd batch, one diagnostics entry, and one
   ``pivot.round`` event per merged round — so ``CrowdStats.iterations``
   reports the true parallel crowd latency (the deepest component's
   round count: every component crowdsources its round-``r`` batch
   simultaneously), typically *far below* the unsharded engine's count.
   A cluster's pivot is always its minimum-rank member and the classic
   engine emits clusters in strictly ascending pivot rank, so sorting
   all clusters by pivot rank reproduces the single-process engine's
   cluster IDs byte for byte.

Determinism contract: the **clustering (including cluster IDs) is
byte-identical to the unsharded engines** for the same permutation and
answers, and every sharded configuration ``{shards, processes,
fault plan}`` produces byte-identical stats, diagnostics, and event
streams.  Round *accounting* (``CrowdStats`` batch boundaries, per-round
diagnostics) follows the merged component-local rounds, whereas the
unsharded engine's Equation-4 rounds couple components through the
global permutation prefix — the per-component ε waste bound still holds
round by round, hence so does the global one (a sum of per-component
bounds, every issued pair being fresh).

Degradation mirrors the pruning shards: without ``fork`` (or with
``processes <= 1``) the same shard function runs in-process, and the
supervised pool's retry/degrade ladder recovers killed, delayed, or
poisoned shard tasks — the merge consumes identical round logs either
way.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.clustering import Clustering
from repro.core.partial_pivot import PartialPivotResult, partial_pivot
from repro.core.pc_pivot import _finish_round
from repro.core.permutation import Permutation
from repro.core.pivot_engine import LiveVertexOrder, choose_pivots
from repro.crowd.oracle import CrowdOracle
from repro.obs import maybe_span
from repro.pruning.components import connected_components, pack_components
from repro.pruning.graph import EagerCandidateGraph
from repro.pruning.parallel import fork_available, notify_parallel_fallback
from repro.runtime.supervisor import supervised_map

Pair = Tuple[int, int]

#: One worker round: (k, predicted_waste, issued_pairs, live_before,
#: remaining, clusters, fresh_answers).  Plain tuples so the pipe can
#: pickle them cheaply.
_RoundLog = Tuple[int, int, Tuple[Pair, ...], int, int,
                  Tuple[Tuple[int, ...], ...],
                  Tuple[Tuple[int, int, float], ...]]

#: Worker state captured at fork time (start method "fork" only) — the
#: same pattern as ``repro.pruning.shard._SHARD_STATE``.
_PIVOT_STATE: Dict[str, object] = {}


def require_pair_deterministic(source) -> None:
    """Reject answer sources the sharded engine cannot safely fork.

    Worker processes resolve pairs through forked copies of the source;
    unless every copy maps a pair to the same confidence regardless of
    query order (``pair_deterministic``), sharding could change answers.
    Stateful sources (fallback tracking, platform simulators with
    cross-batch RNG) must use the single-process engines.
    """
    if not getattr(source, "pair_deterministic", False):
        raise ValueError(
            f"sharded generation requires a pair-deterministic answer "
            f"source; {type(source).__name__} does not declare "
            "pair_deterministic — run with pivot shards disabled"
        )


def _run_component(
    vertices: Sequence[int],
    edges: Sequence[Pair],
    permutation: Permutation,
    epsilon: float,
    answers,
) -> List[_RoundLog]:
    """Run the fast PC-Pivot loop over one connected component.

    A local throwaway oracle collects this component's answers; the
    parent replays the returned log through the caller's oracle, which
    is where the authoritative stats/journal/events accounting happens.
    """
    graph = EagerCandidateGraph(vertices, edges)
    # Rank-sort the component instead of filtering the global permutation
    # (LiveVertexOrder's constructor is O(records); per-component that
    # would be quadratic in the record count).
    order = LiveVertexOrder.from_ranked(
        sorted(vertices, key=permutation.rank))
    oracle = CrowdOracle(answers)
    rounds: List[_RoundLog] = []
    while not graph.is_empty():
        ordered = order.live()
        live_before = len(ordered)
        epoch = oracle.answer_epoch
        k, estimates = choose_pivots(graph, ordered, epsilon)
        result = partial_pivot(
            graph, k, permutation, oracle,
            pivots=ordered[:k], predicted_waste=sum(estimates),
        )
        clusters = []
        for cluster in result.clusters:
            clusters.append(tuple(sorted(cluster)))
            order.discard(cluster)
        fresh = tuple(
            (a, b, oracle.known_confidence(a, b))
            for a, b in oracle.answers_since(epoch)
        )
        rounds.append((k, result.predicted_waste, result.issued_pairs,
                       live_before, len(graph), tuple(clusters), fresh))
    return rounds


def _run_pivot_shard(shard_index: int) -> List[Tuple[int, List[_RoundLog]]]:
    """Worker body: run every component packed into one shard.

    Reads the parent's published :data:`_PIVOT_STATE` (carried by fork);
    also the serial and degraded execution path, where the state is
    simply still visible in-process.
    """
    components = _PIVOT_STATE["components"]  # type: ignore[assignment]
    shards = _PIVOT_STATE["shards"]  # type: ignore[assignment]
    permutation = _PIVOT_STATE["permutation"]  # type: ignore[assignment]
    epsilon = _PIVOT_STATE["epsilon"]  # type: ignore[assignment]
    answers = _PIVOT_STATE["answers"]
    results = []
    for multi_pos in shards[shard_index]:
        vertices, edges = components[multi_pos]
        results.append((multi_pos, _run_component(
            vertices, edges, permutation, epsilon, answers)))
    return results


def pc_pivot_sharded(
    ids: Sequence[int],
    candidates,
    oracle: CrowdOracle,
    epsilon: float,
    permutation: Permutation,
    diagnostics=None,
    obs=None,
    *,
    shards: int,
    processes: int = 0,
    supervisor_policy=None,
    fault_plan=None,
) -> Clustering:
    """Sharded PC-Pivot over the candidate graph (see module docstring).

    Called through :func:`repro.core.pc_pivot.pc_pivot` with
    ``shards >= 1``; ``processes <= 1`` runs the shard tasks in-process
    (still component-ordered, so the output is identical).
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if processes < 0:
        raise ValueError(f"processes must be >= 0, got {processes}")
    source = oracle.source
    require_pair_deterministic(source)
    # Workers must not fork a journaling wrapper (its file handle would
    # be shared across processes); they fork the wrapped source and the
    # parent's replay journals the batches.
    fork_source = getattr(source, "fork_source", source)

    ids = list(ids)
    components = connected_components(ids, candidates.pairs)
    multi = [index for index, members in enumerate(components)
             if len(members) > 1]
    # Every candidate pair lives inside a multi-vertex component (each
    # endpoint has degree >= 1), so only those components need a vertex
    # map, an edge bucket, or a worker run — singletons stay out of the
    # shard state entirely.
    comp_of: Dict[int, int] = {}
    for index in multi:
        for vertex in components[index]:
            comp_of[vertex] = index
    edges_of: Dict[int, List[Pair]] = {}
    for pair in candidates.pairs:
        edges_of.setdefault(comp_of[pair[0]], []).append(pair)

    num_shards = max(1, min(shards, len(multi)))
    multi_components = [(components[index], tuple(edges_of.get(index, ())))
                        for index in multi]
    # Bins hold positions into the multi list; the parent maps worker
    # results back to global component indices.
    packed = pack_components([members for members, _ in multi_components],
                             num_shards)

    want_parallel = processes > 1 and num_shards > 1
    if want_parallel and not fork_available():
        notify_parallel_fallback(obs, requested=processes,
                                 context="pc_pivot_sharded")
        want_parallel = False

    _PIVOT_STATE["components"] = multi_components
    _PIVOT_STATE["shards"] = packed
    _PIVOT_STATE["permutation"] = permutation
    _PIVOT_STATE["epsilon"] = epsilon
    _PIVOT_STATE["answers"] = fork_source
    try:
        if want_parallel:
            shard_results, _ = supervised_map(
                _run_pivot_shard, list(range(num_shards)),
                min(processes, num_shards), policy=supervisor_policy,
                obs=obs, fault_plan=fault_plan, label="pivot.shard",
            )
        else:
            shard_results = [_run_pivot_shard(index)
                             for index in range(num_shards)]
    finally:
        _PIVOT_STATE.clear()

    component_rounds: Dict[int, List[_RoundLog]] = {}
    for shard_result in shard_results:
        for multi_pos, rounds in shard_result:
            component_rounds[multi[multi_pos]] = rounds

    return _merge_component_runs(
        ids, components, component_rounds, permutation, oracle, epsilon,
        diagnostics, obs, source,
    )


def _merge_component_runs(
    ids: Sequence[int],
    components: Sequence[Tuple[int, ...]],
    component_rounds: Dict[int, List[_RoundLog]],
    permutation: Permutation,
    oracle: CrowdOracle,
    epsilon: float,
    diagnostics,
    obs,
    source,
) -> Clustering:
    """Replay worker round logs through the caller's oracle and merge.

    The replay *is* the authoritative accounting: priming the source
    with the worker-computed confidences makes ``oracle.ask_batch`` a
    cheap memo lookup while still flowing through the known-answer set,
    ``CrowdStats``, journaling, and the ``crowd.batch`` event — exactly
    as a single-process run would.  Rounds are merged across components
    (round ``r`` = every component's local round ``r``, components in
    ascending min-rank order): one crowd batch and one diagnostics/obs
    round each, so the iteration count reports the parallel crowd
    latency instead of a per-component sum.
    """
    rank = permutation.rank

    prime = getattr(source, "prime", None)
    if prime is not None:
        fresh_map: Dict[Pair, float] = {}
        for rounds in component_rounds.values():
            for log in rounds:
                for a, b, confidence in log[6]:
                    fresh_map[(a, b)] = confidence
        prime(fresh_map)

    # Components replay in ascending rank of their smallest-rank member —
    # a canonical order no shard packing or fault schedule can perturb.
    replay_order = sorted(component_rounds,
                          key=lambda index: min(map(rank,
                                                    components[index])))
    by_round: List[List[_RoundLog]] = []
    for comp_index in replay_order:
        for depth, log in enumerate(component_rounds[comp_index]):
            if depth == len(by_round):
                by_round.append([])
            by_round[depth].append(log)

    keyed_clusters: List[Tuple[int, Tuple[int, ...]]] = []
    round_index = 0
    for logs in by_round:
        issued_all: List[Pair] = []
        clusters_all: List[Tuple[int, ...]] = []
        k_sum = waste_sum = live_sum = remaining_sum = 0
        for k, predicted_waste, issued, live_before, remaining, clusters, \
                _fresh in logs:
            k_sum += k
            waste_sum += predicted_waste
            live_sum += live_before
            remaining_sum += remaining
            issued_all.extend(issued)
            clusters_all.extend(clusters)
        round_index += 1
        with maybe_span(obs, "pivot.partial", k=k_sum) as span:
            oracle.ask_batch(issued_all)
            if obs is not None:
                span.set_attr("issued_pairs", len(issued_all))
                span.set_attr("clusters", len(clusters_all))
                span.set_attr("predicted_waste", waste_sum)
        if diagnostics is not None or obs is not None:
            result = PartialPivotResult(
                clusters=tuple(frozenset(c) for c in clusters_all),
                issued_pairs=tuple(issued_all),
                predicted_waste=waste_sum,
            )
            _finish_round(obs, diagnostics, round_index, k_sum, result,
                          epsilon, live_sum, remaining_sum)
        for members in clusters_all:
            keyed_clusters.append((min(map(rank, members)), members))

    # Singleton components never issue a pair: they contribute their
    # vertex as a rank-keyed singleton cluster straight to the merge.
    for index, members in enumerate(components):
        if index not in component_rounds:
            if len(members) != 1:
                raise RuntimeError(
                    f"component {index} ({len(members)} vertices) produced "
                    "no shard result"
                )
            keyed_clusters.append((rank(members[0]), members))

    # A cluster's pivot is its minimum-rank member, and the unsharded
    # engine emits clusters in strictly ascending pivot rank — sorting by
    # pivot rank therefore reproduces its cluster IDs exactly.  Pivot
    # ranks are unique across the disjoint clusters, so the bare tuple
    # sort never compares the member tuples.
    keyed_clusters.sort()
    clustering = Clustering()
    seen: set = set()
    for _, members in keyed_clusters:
        overlap = seen.intersection(members)
        if overlap:
            raise RuntimeError(
                f"cross-shard merge produced overlapping clusters: "
                f"records {sorted(overlap)} appear twice"
            )
        seen.update(members)
        clustering.add_cluster(members)
    if len(seen) != len(set(ids)):
        raise RuntimeError(
            f"cross-shard merge lost records: {len(seen)} clustered, "
            f"{len(set(ids))} expected"
        )
    return clustering
