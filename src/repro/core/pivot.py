"""Crowd-Pivot (Algorithm 1): the sequential crowd-based Pivot algorithm.

Per iteration: pick the un-clustered record with the smallest permutation
rank as the pivot, crowdsource all candidate edges incident to it (one crowd
iteration), and form a cluster of the pivot plus every neighbor the crowd
marks duplicate (``f_c > 0.5``).  A 5-approximation of the Λ' minimum in
expectation (Lemma 1, via Ailon et al.).

The loop runs on either pivot engine (see
:data:`~repro.core.pivot_engine.PIVOT_ENGINES`): ``reference`` re-scans the
live-vertex set for the minimum rank every iteration, ``fast`` walks a
permutation-ordered live list with a lazily advancing head cursor and an
eagerly cleaned graph.  Outputs are byte-identical.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.clustering import Clustering
from repro.core.permutation import Permutation
from repro.core.pivot_engine import LiveVertexOrder, require_pivot_engine
from repro.crowd.oracle import CrowdOracle
from repro.pruning.candidate import CandidateSet
from repro.pruning.graph import CandidateGraph, EagerCandidateGraph


def crowd_pivot(
    record_ids,
    candidates: CandidateSet,
    oracle: CrowdOracle,
    permutation: Optional[Permutation] = None,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    obs=None,
    engine: str = "fast",
) -> Clustering:
    """Run Crowd-Pivot over the candidate graph.

    Args:
        record_ids: The record set ``R`` (ids).
        candidates: The candidate set ``S`` from the pruning phase.
        oracle: Crowd access; each pivot's incident edges are issued as one
            batch, so crowd iterations == number of pivots with >= 1 fresh
            incident pair.
        permutation: Explicit pivot order ``M``; when ``None``, a random one
            is drawn (from ``rng``/``seed``).
        seed: Seed for the random permutation (ignored if ``permutation``).
        rng: Alternative RNG for the permutation.
        obs: Optional :class:`~repro.obs.ObsContext`; each pivot emits a
            ``pivot.pivot`` event (pivot id, incident edges, cluster
            size) and bumps the round counter.
        engine: One of :data:`~repro.core.pivot_engine.PIVOT_ENGINES` —
            "fast" (incremental pivot order + eager graph, default) or
            "reference" (per-iteration min-rank scan); outputs are
            byte-identical.

    Returns:
        The clustering ``C``.
    """
    require_pivot_engine(engine)
    ids = list(record_ids)
    if permutation is None:
        permutation = Permutation.random(ids, rng=rng, seed=seed)
    fast = engine == "fast"
    if fast:
        graph = EagerCandidateGraph(ids, candidates.pairs)
        order = LiveVertexOrder(permutation, graph.vertices)
    else:
        graph = CandidateGraph(ids, candidates.pairs)
    clustering = Clustering()

    while not graph.is_empty():
        pivot = order.first() if fast else permutation.first(graph.vertices)
        neighbors = graph.neighbors(pivot)
        answers = oracle.ask_batch((pivot, n) for n in neighbors)
        cluster = {pivot}
        for neighbor in neighbors:
            key = (pivot, neighbor) if pivot < neighbor else (neighbor, pivot)
            if answers[key] > 0.5:
                cluster.add(neighbor)
        clustering.add_cluster(cluster)
        graph.remove_vertices(cluster)
        if fast:
            order.discard(cluster)
        if obs is not None:
            obs.metrics.counter(
                "pivot_rounds_total",
                help="Sequential Crowd-Pivot iterations executed",
            ).inc()
            obs.event(
                "pivot.pivot",
                pivot=pivot,
                incident_edges=len(neighbors),
                cluster_size=len(cluster),
                remaining_records=len(graph),
            )

    return clustering
