"""The end-to-end ACD pipeline (Section 3).

Wires the three phases together: pruning (phase 1, supplied as a
:class:`~repro.pruning.candidate.CandidateSet`), PC-Pivot cluster generation
(phase 2), and PC-Refine cluster refinement (phase 3).  Both crowd phases
share one :class:`~repro.crowd.oracle.CrowdOracle`, so the refinement phase
starts from the generation phase's answer set ``A`` and all costs accumulate
into a single :class:`~repro.crowd.stats.CrowdStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Optional, Union

from repro.core.clustering import Clustering
from repro.core.estimator import DEFAULT_NUM_BUCKETS
from repro.core.pc_pivot import (
    DEFAULT_EPSILON,
    PCPivotDiagnostics,
    pc_pivot,
)
from repro.core.pc_refine import (
    DEFAULT_THRESHOLD_DIVISOR,
    PCRefineDiagnostics,
    pc_refine,
)
from repro.core.permutation import Permutation
from repro.core.pivot import crowd_pivot
from repro.core.refine import crowd_refine
from repro.crowd.cache import AnswerFile
from repro.crowd.oracle import CrowdOracle
from repro.crowd.persistence import JournalingAnswerFile
from repro.crowd.stats import CrowdStats
from repro.obs import ObsContext, maybe_span
from repro.pruning.candidate import CandidateSet
from repro.runtime.checkpoint import CheckpointStore


@dataclass
class ACDResult:
    """Everything a run of ACD produces.

    Attributes:
        clustering: The final deduplication clustering.
        stats: Whole-pipeline crowdsourcing costs.
        generation_stats: Snapshot of the costs after phase 2 only.
        refinement_stats: Phase-3 costs (total minus generation).
        pivot_diagnostics: Per-round PC-Pivot measurements.
        refine_diagnostics: Per-round PC-Refine measurements (``None`` when
            refinement was skipped).
    """

    clustering: Clustering
    stats: CrowdStats
    generation_stats: Dict[str, float]
    refinement_stats: Dict[str, float]
    pivot_diagnostics: Optional[PCPivotDiagnostics]
    refine_diagnostics: Optional[PCRefineDiagnostics]


def run_acd(
    record_ids: Iterable[int],
    candidates: CandidateSet,
    answers: AnswerFile,
    epsilon: float = DEFAULT_EPSILON,
    threshold_divisor: float = DEFAULT_THRESHOLD_DIVISOR,
    num_buckets: int = DEFAULT_NUM_BUCKETS,
    seed: Optional[int] = None,
    permutation: Optional[Permutation] = None,
    refine: bool = True,
    parallel: bool = True,
    pairs_per_hit: int = 20,
    ranking: str = "ratio",
    max_refinement_pairs: Optional[int] = None,
    journal_path: Optional[Union[str, Path]] = None,
    obs: Optional[ObsContext] = None,
    refine_engine: str = "fast",
    pivot_engine: str = "fast",
    pivot_shards: int = 0,
    pivot_processes: int = 0,
    refine_shards: int = 0,
    refine_processes: int = 0,
    checkpoints: Optional[CheckpointStore] = None,
    resume: bool = False,
    pipeline: bool = False,
    pipeline_workers: int = 0,
) -> ACDResult:
    """Run the full ACD pipeline on a pre-pruned instance.

    Args:
        record_ids: The record set ``R`` (ids).
        candidates: Phase-1 output ``S`` with machine scores.
        answers: The shared crowd answer file ``F``.
        epsilon: PC-Pivot wasted-pair budget (paper: 0.1).
        threshold_divisor: PC-Refine's ``x`` in ``T = N_m / x`` (paper: 8).
        num_buckets: Histogram granularity (paper: 20).
        seed: Seed for the pivot permutation (ACD is randomized).
        permutation: Explicit permutation overriding ``seed``.
        refine: Run phase 3?  ``False`` gives the paper's "PC-Pivot"
            crippled baseline.
        parallel: Use the batched PC-Pivot / PC-Refine (the paper's ACD);
            ``False`` runs the sequential Crowd-Pivot / Crowd-Refine instead
            (for the parallelization experiments).
        pairs_per_hit: HIT packing for the cost model.
        ranking: PC-Refine operation ranking ("ratio" per the paper, or
            "benefit" for the cost-blind ablation).
        max_refinement_pairs: Optional hard cap on the refinement phase's
            crowdsourced pairs (parallel mode only) — the anytime/budgeted
            variant.
        journal_path: Write-ahead journal file making the run crash-safe.
            Every resolved crowd batch is durably appended before use; a
            killed run re-invoked with the same journal resumes where it
            stopped (already-journaled batches cost nothing) and returns a
            byte-identical :class:`ACDResult`.
        obs: Optional :class:`~repro.obs.ObsContext`.  When attached, the
            run opens an ``acd`` span with ``generation`` / ``refinement``
            children, every crowd iteration and per-round decision is
            traced, and — if ``obs.manifest_path`` is set — a run manifest
            is written atomically on completion.  ``None`` (the default)
            changes nothing: the result is byte-identical to an
            unobserved run.
        refine_engine: Phase-3 evaluation engine — "fast" (incremental
            caching, the default) or "reference" (full re-evaluation).
            Outputs are byte-identical; see
            :data:`~repro.core.refine.REFINE_ENGINES`.
        pivot_engine: Phase-2 cluster-generation engine — "fast"
            (incremental pivot order + fused Equation-4 scan, the
            default) or "reference" (per-round re-derivation).  Outputs
            are byte-identical; see
            :data:`~repro.core.pivot_engine.PIVOT_ENGINES`.
        pivot_shards: When >= 1, phase 2 runs the sharded engine of
            :mod:`repro.core.pivot_shard` — connected components of the
            candidate graph packed into this many shard tasks with a
            cross-shard merge.  The clustering is byte-identical to the
            unsharded engines; requires ``parallel=True``,
            ``pivot_engine="fast"``, and a pair-deterministic answer
            source.
        pivot_processes: Worker processes for the shard tasks (``<= 1``
            runs them in-process; ignored without ``pivot_shards``).
        refine_shards: When >= 1, phase 3 runs the sharded engine of
            :mod:`repro.core.refine_shard` — connected components of the
            candidate + cluster graph refined independently with a
            frozen global budget and a cross-shard merged-round replay.
            Requires ``parallel=True``, ``refine_engine="fast"``, no
            ``max_refinement_pairs``, and a pair-deterministic answer
            source.
        refine_processes: Worker processes for the refine shard tasks
            (``<= 1`` runs them in-process; ignored without
            ``refine_shards``).
        checkpoints: Optional
            :class:`~repro.runtime.checkpoint.CheckpointStore`.  When
            attached, the complete cluster-generation state (clustering,
            cost counters, the answer set ``A`` in arrival order) is
            snapshotted atomically after phase 2 — the ``generation``
            checkpoint — and the finished pipeline state after phase 3 —
            the ``refinement`` checkpoint.
        pipeline: Run both crowd phases as a component-streaming DAG
            over one shared worker pool
            (:func:`repro.runtime.pipeline.run_pipeline`) instead of
            barrier-synchronized phases.  Byte-identical output;
            requires ``parallel=True``, the "fast" engines, no
            ``max_refinement_pairs``, and no per-phase shard knobs (the
            pipeline owns the component decomposition).
        pipeline_workers: Worker processes for the shared pipeline pool
            (``<= 1`` runs the DAG inline; ignored without
            ``pipeline``).
        resume: With ``checkpoints``, restore the deepest finished
            phase's checkpoint when one exists (and its recorded
            configuration matches the store's): a ``refinement``
            checkpoint skips both crowd phases, a ``generation``
            checkpoint skips phase 2 and continues into refinement.  The
            final :class:`ACDResult` is byte-identical to an
            uninterrupted run either way.

    Returns:
        The :class:`ACDResult`.
    """
    if pipeline:
        if not parallel:
            raise ValueError(
                "pipeline requires parallel=True: the sequential engines "
                "have no component decomposition to stream"
            )
        if pivot_engine != "fast" or refine_engine != "fast":
            raise ValueError(
                "pipeline requires the 'fast' engines, got "
                f"pivot_engine={pivot_engine!r}, "
                f"refine_engine={refine_engine!r}"
            )
        if max_refinement_pairs is not None:
            raise ValueError(
                "pipeline does not support max_refinement_pairs "
                "(a global sequential pair cap cannot decompose across "
                "components) — run with pipeline disabled"
            )
        if pivot_shards or refine_shards:
            raise ValueError(
                "pipeline owns the component decomposition: drop "
                "pivot_shards/refine_shards when pipeline=True"
            )
        # Imported lazily: pipeline.py imports this module at its top.
        from repro.runtime.pipeline import run_pipeline

        return run_pipeline(
            answers, record_ids=list(record_ids), candidates=candidates,
            workers=pipeline_workers, epsilon=epsilon,
            threshold_divisor=threshold_divisor, num_buckets=num_buckets,
            seed=seed, permutation=permutation, refine=refine,
            pairs_per_hit=pairs_per_hit, ranking=ranking,
            journal_path=journal_path, obs=obs, checkpoints=checkpoints,
            resume=resume,
        ).result

    if journal_path is not None:
        journaled = JournalingAnswerFile(answers, journal_path)
        try:
            return run_acd(
                record_ids, candidates, journaled,
                epsilon=epsilon, threshold_divisor=threshold_divisor,
                num_buckets=num_buckets, seed=seed, permutation=permutation,
                refine=refine, parallel=parallel,
                pairs_per_hit=pairs_per_hit, ranking=ranking,
                max_refinement_pairs=max_refinement_pairs,
                obs=obs, refine_engine=refine_engine,
                pivot_engine=pivot_engine,
                pivot_shards=pivot_shards,
                pivot_processes=pivot_processes,
                refine_shards=refine_shards,
                refine_processes=refine_processes,
                checkpoints=checkpoints, resume=resume,
            )
        finally:
            journaled.close()

    if pivot_shards and not parallel:
        raise ValueError(
            "pivot_shards requires parallel=True: sequential Crowd-Pivot "
            "has no sharded engine"
        )
    # Fail fast on sharded-refinement config errors *before* the (possibly
    # expensive) generation phase runs, with the same messages pc_refine
    # itself raises.
    if refine_shards and not parallel:
        raise ValueError(
            "refine_shards requires parallel=True: sequential Crowd-Refine "
            "has no sharded engine"
        )
    if refine_shards and refine_engine != "fast":
        raise ValueError(
            "sharded refinement requires the 'fast' engine, "
            f"got {refine_engine!r}"
        )
    if refine_shards and max_refinement_pairs is not None:
        raise ValueError(
            "sharded refinement does not support max_refinement_pairs "
            "(a global sequential pair cap cannot decompose across "
            "shards) — run with refine shards disabled"
        )

    ids = list(record_ids)
    restored_refinement = (checkpoints.load("refinement")
                           if checkpoints is not None and resume and refine
                           else None)
    restored = (checkpoints.load("generation")
                if (checkpoints is not None and resume
                    and restored_refinement is None) else None)
    if restored_refinement is not None:
        stats = CrowdStats.from_state(restored_refinement["stats"])
        oracle = CrowdOracle(answers, stats=stats, obs=obs)
    elif restored is not None:
        stats = CrowdStats.from_state(restored["stats"])
        oracle = CrowdOracle(answers, stats=stats, obs=obs)
    else:
        stats = CrowdStats(pairs_per_hit=pairs_per_hit,
                           num_workers=answers.num_workers)
        oracle = CrowdOracle(answers, stats=stats, obs=obs)

    with maybe_span(obs, "acd", records=len(ids),
                    candidate_pairs=len(candidates), parallel=parallel):
        pivot_diagnostics: Optional[PCPivotDiagnostics] = None
        refine_diagnostics: Optional[PCRefineDiagnostics] = None
        if restored_refinement is not None:
            (clustering, generation_stats, pivot_diagnostics,
             refine_diagnostics) = _restore_refinement(
                restored_refinement, answers, oracle, obs)
        else:
            if restored is not None:
                clustering, pivot_diagnostics = _restore_generation(
                    restored, answers, oracle, obs)
            else:
                with maybe_span(obs, "generation"):
                    if parallel:
                        pivot_diagnostics = PCPivotDiagnostics()
                        clustering = pc_pivot(
                            ids, candidates, oracle, epsilon=epsilon,
                            permutation=permutation, seed=seed,
                            diagnostics=pivot_diagnostics,
                            obs=obs, engine=pivot_engine,
                            shards=pivot_shards, processes=pivot_processes,
                        )
                    else:
                        clustering = crowd_pivot(
                            ids, candidates, oracle, permutation=permutation,
                            seed=seed, obs=obs, engine=pivot_engine,
                        )
            generation_stats = stats.snapshot()
            if checkpoints is not None and restored is None:
                checkpoints.save(
                    "generation",
                    _generation_state(clustering, oracle, answers,
                                      pivot_diagnostics),
                )

            if refine:
                with maybe_span(obs, "refinement"):
                    if parallel:
                        refine_diagnostics = PCRefineDiagnostics()
                        clustering = pc_refine(
                            clustering, candidates, oracle,
                            num_records=len(ids),
                            threshold_divisor=threshold_divisor,
                            num_buckets=num_buckets,
                            diagnostics=refine_diagnostics,
                            ranking=ranking,
                            max_refinement_pairs=max_refinement_pairs,
                            obs=obs, engine=refine_engine,
                            shards=refine_shards,
                            processes=refine_processes,
                        )
                    else:
                        clustering = crowd_refine(
                            clustering, candidates, oracle,
                            num_buckets=num_buckets, obs=obs,
                            engine=refine_engine,
                        )
                if checkpoints is not None:
                    checkpoints.save(
                        "refinement",
                        _refinement_state(clustering, oracle, answers,
                                          generation_stats,
                                          pivot_diagnostics,
                                          refine_diagnostics),
                    )

    total = stats.snapshot()
    refinement_stats = {
        key: total[key] - generation_stats[key] for key in total
    }
    result = ACDResult(
        clustering=clustering,
        stats=stats,
        generation_stats=generation_stats,
        refinement_stats=refinement_stats,
        pivot_diagnostics=pivot_diagnostics,
        refine_diagnostics=refine_diagnostics,
    )
    if obs is not None:
        _finalize_obs(
            obs, result,
            config={
                "epsilon": epsilon,
                "threshold_divisor": threshold_divisor,
                "num_buckets": num_buckets,
                "refine": refine,
                "parallel": parallel,
                "pairs_per_hit": pairs_per_hit,
                "ranking": ranking,
                "max_refinement_pairs": max_refinement_pairs,
                "refine_engine": refine_engine,
                "pivot_engine": pivot_engine,
                "pivot_shards": pivot_shards,
                "pivot_processes": pivot_processes,
                "refine_shards": refine_shards,
                "refine_processes": refine_processes,
            },
            seeds={"pivot_seed": seed},
        )
    return result


def _generation_state(clustering: Clustering, oracle: CrowdOracle,
                      answers, diagnostics: Optional[PCPivotDiagnostics]):
    """The complete phase-2 state as a ``generation`` checkpoint payload.

    Captures everything the refinement phase inherits: the clustering
    (with cluster ids and the id counter — merge tie-breaking depends on
    them), the cost counters, the answer set ``A`` in arrival order (so
    the restored oracle's answer log matches), the journal batch count at
    snapshot time (so a resumed run's journal replay cursor skips the
    batches this checkpoint already accounts for), and the phase-2
    diagnostics.
    """
    journal = getattr(answers, "journal", None)
    return {
        "clustering": clustering.to_state(),
        "stats": oracle.stats.to_state(),
        "answers": [[a, b, confidence]
                    for (a, b), confidence in oracle.known_in_order()],
        "journal_batches": (journal.num_batches
                            if journal is not None else None),
        "pivot_diagnostics": (
            {"ks": list(diagnostics.ks),
             "predicted_waste": list(diagnostics.predicted_waste),
             "issued_per_round": list(diagnostics.issued_per_round)}
            if diagnostics is not None else None
        ),
    }


def _restore_generation(restored, answers, oracle: CrowdOracle, obs):
    """Rebuild phase-2 state from a ``generation`` checkpoint payload.

    Returns ``(clustering, pivot_diagnostics)``; the oracle (already
    carrying the restored stats) is seeded with ``A`` in its recorded
    arrival order, and a journaling answer source's replay cursor is
    fast-forwarded past the batches the checkpoint covers so their fault
    counters are not merged twice.
    """
    try:
        clustering = Clustering.from_state(restored["clustering"])
        ordered = {(int(a), int(b)): float(confidence)
                   for a, b, confidence in restored["answers"]}
        raw_diag = restored.get("pivot_diagnostics")
        diagnostics = (
            PCPivotDiagnostics(
                ks=[int(k) for k in raw_diag["ks"]],
                predicted_waste=[int(w) for w in raw_diag["predicted_waste"]],
                issued_per_round=[int(p)
                                  for p in raw_diag["issued_per_round"]],
            )
            if raw_diag is not None else None
        )
        journal_batches = restored.get("journal_batches")
    except (KeyError, TypeError, ValueError) as error:
        raise ValueError(
            f"malformed generation checkpoint payload ({error})"
        ) from None
    oracle.seed_known(ordered)
    if journal_batches is not None:
        skip = getattr(answers, "skip_replayed_batches", None)
        if skip is not None:
            skip(int(journal_batches))
    if obs is not None:
        obs.event(
            "runtime.checkpoint_restore",
            phase="generation",
            clusters=len(clustering),
            answers=len(ordered),
            iterations=oracle.stats.iterations,
        )
    return clustering, diagnostics


def _refinement_state(clustering: Clustering, oracle: CrowdOracle, answers,
                      generation_stats: Dict[str, float],
                      pivot_diagnostics: Optional[PCPivotDiagnostics],
                      refine_diagnostics: Optional[PCRefineDiagnostics]):
    """The finished pipeline state as a ``refinement`` checkpoint payload.

    Everything :class:`ACDResult` is assembled from: the final
    clustering, the *total* cost counters plus the frozen
    generation-phase snapshot (their difference is the refinement
    stats), the full answer set in arrival order, the journal replay
    cursor, and both phases' diagnostics.
    """
    journal = getattr(answers, "journal", None)
    return {
        "clustering": clustering.to_state(),
        "stats": oracle.stats.to_state(),
        "generation_stats": dict(generation_stats),
        "answers": [[a, b, confidence]
                    for (a, b), confidence in oracle.known_in_order()],
        "journal_batches": (journal.num_batches
                            if journal is not None else None),
        "pivot_diagnostics": (
            {"ks": list(pivot_diagnostics.ks),
             "predicted_waste": list(pivot_diagnostics.predicted_waste),
             "issued_per_round": list(pivot_diagnostics.issued_per_round)}
            if pivot_diagnostics is not None else None
        ),
        "refine_diagnostics": (
            {"batch_sizes": list(refine_diagnostics.batch_sizes),
             "operations_packed": list(refine_diagnostics.operations_packed),
             "operations_applied":
                 list(refine_diagnostics.operations_applied),
             "free_operations_applied":
                 refine_diagnostics.free_operations_applied,
             "operation_evaluations":
                 refine_diagnostics.operation_evaluations,
             "evaluation_cache": (
                 dict(refine_diagnostics.evaluation_cache)
                 if refine_diagnostics.evaluation_cache is not None
                 else None)}
            if refine_diagnostics is not None else None
        ),
    }


def _cache_key_order(cache: Dict) -> Dict:
    """Rebuild an evaluation-cache snapshot in its canonical key order.

    Checkpoint JSON is written with sorted keys; restoring in
    :meth:`~repro.core.evaluation_cache.EvaluationStats.as_dict` order
    keeps the restored diagnostics byte-identical (repr included) to an
    uninterrupted run's.
    """
    canonical = ("lookups", "hits", "refreshes", "evaluations", "hit_rate")
    ordered = {key: cache[key] for key in canonical if key in cache}
    ordered.update((key, value) for key, value in cache.items()
                   if key not in ordered)
    return ordered


def _restore_refinement(restored, answers, oracle: CrowdOracle, obs):
    """Rebuild the finished pipeline from a ``refinement`` checkpoint.

    Returns ``(clustering, generation_stats, pivot_diagnostics,
    refine_diagnostics)``; as in :func:`_restore_generation`, the oracle
    is seeded with the recorded answer set and a journaling source's
    replay cursor is fast-forwarded past the checkpointed batches.
    """
    try:
        clustering = Clustering.from_state(restored["clustering"])
        # JSON round-trips int vs float exactly; coercing here would turn
        # integer counters into floats and break byte-identity.
        generation_stats = {str(key): value for key, value
                            in restored["generation_stats"].items()}
        ordered = {(int(a), int(b)): float(confidence)
                   for a, b, confidence in restored["answers"]}
        raw_pivot = restored.get("pivot_diagnostics")
        pivot_diagnostics = (
            PCPivotDiagnostics(
                ks=[int(k) for k in raw_pivot["ks"]],
                predicted_waste=[int(w)
                                 for w in raw_pivot["predicted_waste"]],
                issued_per_round=[int(p)
                                  for p in raw_pivot["issued_per_round"]],
            )
            if raw_pivot is not None else None
        )
        raw_refine = restored.get("refine_diagnostics")
        refine_diagnostics = (
            PCRefineDiagnostics(
                batch_sizes=[int(b) for b in raw_refine["batch_sizes"]],
                operations_packed=[int(p)
                                   for p in raw_refine["operations_packed"]],
                operations_applied=[
                    int(a) for a in raw_refine["operations_applied"]],
                free_operations_applied=int(
                    raw_refine["free_operations_applied"]),
                operation_evaluations=int(
                    raw_refine["operation_evaluations"]),
                evaluation_cache=(
                    _cache_key_order(raw_refine["evaluation_cache"])
                    if raw_refine["evaluation_cache"] is not None else None),
            )
            if raw_refine is not None else None
        )
        journal_batches = restored.get("journal_batches")
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        raise ValueError(
            f"malformed refinement checkpoint payload ({error})"
        ) from None
    oracle.seed_known(ordered)
    if journal_batches is not None:
        skip = getattr(answers, "skip_replayed_batches", None)
        if skip is not None:
            skip(int(journal_batches))
    if obs is not None:
        obs.event(
            "runtime.checkpoint_restore",
            phase="refinement",
            clusters=len(clustering),
            answers=len(ordered),
            iterations=oracle.stats.iterations,
        )
    return clustering, generation_stats, pivot_diagnostics, refine_diagnostics


def _finalize_obs(obs: ObsContext, result: ACDResult,
                  config: Dict, seeds: Dict) -> None:
    """Roll the finished run up into gauges and (optionally) a manifest.

    ``obs.manifest_extra`` — caller context such as the CLI's dataset
    fingerprint and command-line config — is merged in: its ``config`` /
    ``seeds`` / ``dataset`` / ``result`` keys override or extend the ones
    assembled here.
    """
    from repro.obs import build_manifest, write_manifest

    gauges = obs.metrics
    gauges.gauge("clusters", help="Final cluster count").set(
        len(result.clustering)
    )
    gauges.gauge("crowd_cost_cents", help="Total crowd payment").set(
        result.stats.monetary_cost_cents
    )
    if obs.manifest_path is None:
        return
    extra = obs.manifest_extra
    manifest = build_manifest(
        command=str(extra.get("command", "run_acd")),
        config={**config, **extra.get("config", {})},
        seeds={**seeds, **extra.get("seeds", {})},
        stats=result.stats.snapshot(),
        metrics=obs.metrics.as_dict(),
        spans=obs.tracer.span_summaries(),
        dataset=extra.get("dataset"),
        generation_stats=result.generation_stats,
        refinement_stats=result.refinement_stats,
        result=extra.get("result"),
        trace_path=obs.trace_path,
    )
    obs.flush()
    write_manifest(obs.manifest_path, manifest)
