"""Split and merger operations with cost-benefit analysis (Sections 5.1-5.2).

An operation's *benefit* is the exact decrease in Λ'(R) it would cause
(Equations 5-6); its *cost* is the number of still-unknown candidate pairs
that must be crowdsourced to compute that benefit exactly (Equations 7-8).
Pairs pruned away by phase 1 have ``f_c = 0`` by definition — known for free.

:class:`OperationEvaluator` binds an operation to the current clustering,
the candidate set, the known-answer set ``A`` (via the oracle), and the
histogram estimator, and answers: relevant pairs, exact benefit (when
computable without the crowd), estimated benefit ``b*``, and cost ``c``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.core.clustering import Clustering
from repro.core.estimator import HistogramEstimator
from repro.core.objective import merge_benefit, split_benefit
from repro.crowd.oracle import CrowdOracle
from repro.datasets.schema import canonical_pair
from repro.pruning.candidate import CandidateSet

Pair = Tuple[int, int]


@dataclass(frozen=True)
class Split:
    """Split ``record_id`` out of its cluster ``cluster_id`` (Section 5.1)."""

    record_id: int
    cluster_id: int

    @property
    def touched_clusters(self) -> Tuple[int, ...]:
        return (self.cluster_id,)


@dataclass(frozen=True)
class Merge:
    """Merge clusters ``cluster_a`` and ``cluster_b`` (Section 5.1)."""

    cluster_a: int
    cluster_b: int

    def __post_init__(self) -> None:
        if self.cluster_a == self.cluster_b:
            raise ValueError("merge needs two distinct clusters")

    @property
    def touched_clusters(self) -> Tuple[int, ...]:
        return (self.cluster_a, self.cluster_b)


Operation = Union[Split, Merge]


def independent(op_a: Operation, op_b: Operation) -> bool:
    """Section 5.4 independence: the operations touch disjoint clusters,
    so they can be applied simultaneously without side effects."""
    return not set(op_a.touched_clusters) & set(op_b.touched_clusters)


def apply_operation(clustering: Clustering, operation: Operation) -> None:
    """Apply a split or merger to the clustering in place."""
    if isinstance(operation, Split):
        clustering.split(operation.record_id)
    elif isinstance(operation, Merge):
        clustering.merge(operation.cluster_a, operation.cluster_b)
    else:
        raise TypeError(f"unknown operation type: {type(operation).__name__}")


class OperationEvaluator:
    """Benefit/cost oracle for refinement operations against current state.

    The evaluator never crowdsources anything itself: exact benefits are
    returned only when every needed ``f_c`` is already known (in ``A`` or
    pruned, hence 0); otherwise callers get the histogram-based estimate
    ``b*`` and the crowdsourcing cost ``c``.
    """

    def __init__(
        self,
        clustering: Clustering,
        candidates: CandidateSet,
        oracle: CrowdOracle,
        estimator: HistogramEstimator,
    ):
        self._clustering = clustering
        self._candidates = candidates
        self._oracle = oracle
        self._estimator = estimator
        #: From-scratch derivations performed (each public value walks
        #: ``relevant_pairs`` once).  The refine benchmark reads this to
        #: compare the reference engine's work against the incremental
        #: :class:`~repro.core.evaluation_cache.EvaluationCache`.
        self.evaluations = 0

    # ------------------------------------------------------------------
    # Pair-level views
    # ------------------------------------------------------------------

    def relevant_pairs(self, operation: Operation) -> List[Pair]:
        """The record pairs whose ``f_c`` the operation's benefit needs."""
        self.evaluations += 1
        if isinstance(operation, Split):
            others = self._clustering.members(operation.cluster_id)
            others.discard(operation.record_id)
            return [canonical_pair(operation.record_id, other)
                    for other in sorted(others)]
        members_a = sorted(self._clustering.members(operation.cluster_a))
        members_b = sorted(self._clustering.members(operation.cluster_b))
        return [canonical_pair(a, b) for a in members_a for b in members_b]

    def known_confidence(self, pair: Pair) -> Optional[float]:
        """``f_c`` for a pair when free: crowdsourced already, or pruned
        (``f_c = 0`` by definition).  ``None`` when crowdsourcing is needed."""
        answered = self._oracle.known_confidence(*pair)
        if answered is not None:
            return answered
        if pair not in self._candidates:
            return 0.0
        return None

    def unknown_pairs(self, operation: Operation) -> List[Pair]:
        """The pairs that must be crowdsourced for the exact benefit
        (Equations 7-8 count these)."""
        return [pair for pair in self.relevant_pairs(operation)
                if self.known_confidence(pair) is None]

    # ------------------------------------------------------------------
    # Benefit and cost
    # ------------------------------------------------------------------

    def cost(self, operation: Operation) -> int:
        """Crowdsourcing cost ``c(o)`` (Equations 7-8)."""
        return len(self.unknown_pairs(operation))

    def exact_benefit(self, operation: Operation) -> Optional[float]:
        """``b(o)`` when every relevant ``f_c`` is known; else ``None``."""
        confidences: List[float] = []
        for pair in self.relevant_pairs(operation):
            confidence = self.known_confidence(pair)
            if confidence is None:
                return None
            confidences.append(confidence)
        if isinstance(operation, Split):
            return split_benefit(confidences)
        return merge_benefit(confidences)

    def estimated_benefit(self, operation: Operation) -> float:
        """``b*(o)``: exact contributions where known, histogram estimates
        (from machine scores) for the rest."""
        confidences: List[float] = []
        for pair in self.relevant_pairs(operation):
            confidence = self.known_confidence(pair)
            if confidence is None:
                confidence = self._estimator.estimate(
                    self._candidates.machine_scores[pair]
                )
            confidences.append(confidence)
        if isinstance(operation, Split):
            return split_benefit(confidences)
        return merge_benefit(confidences)

    def benefit_cost_ratio(self, operation: Operation) -> float:
        """``b*(o) / c(o)``, made total: a zero-cost operation is *free* —
        asking the crowd costs nothing — so its ranking key is simply its
        exact benefit, not an infinite (or undefined) ratio.  This keeps the
        ranking deterministic and finite for every operation; the refinement
        loops still route zero-cost operations through the free path first,
        so in practice this branch only matters to external callers."""
        cost = self.cost(operation)
        if cost <= 0:
            return self.estimated_benefit(operation)
        return self.estimated_benefit(operation) / cost
