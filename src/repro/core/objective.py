"""The correlation-clustering objectives Λ(R) and Λ'(R) (Equations 1-2).

Λ penalizes each pair: ``1 - f`` if clustered together, ``f`` if apart.
Λ' is the same with the crowd similarity ``f_c`` in place of ``f``; the paper
defines ``f_c = 0`` for pairs eliminated by the pruning phase, so such pairs
contribute 1 when (wrongly) clustered together and 0 when apart.  That
convention lets both objectives be evaluated by touching only the candidate
set plus the intra-cluster pairs.
"""

from __future__ import annotations

from typing import Callable, Iterable, Tuple

from repro.core.clustering import Clustering
from repro.datasets.schema import canonical_pair

Pair = Tuple[int, int]
ScoreLookup = Callable[[int, int], float]


def pairwise_cost(clustering: Clustering,
                  scored_pairs: Iterable[Tuple[Pair, float]]) -> float:
    """Generic Λ-style cost given explicit per-pair scores.

    Pairs absent from ``scored_pairs`` are treated as score 0 (they cost 1
    when clustered together, 0 apart); the caller accounts for those via
    :func:`lambda_objective`'s intra-cluster correction.
    """
    cost = 0.0
    for (a, b), score in scored_pairs:
        if clustering.together(a, b):
            cost += 1.0 - score
        else:
            cost += score
    return cost


def lambda_objective(clustering: Clustering,
                     candidate_pairs: Iterable[Pair],
                     score: ScoreLookup) -> float:
    """Λ(R) / Λ'(R) under the pruning convention (score 0 outside ``S``).

    Args:
        clustering: The partition to evaluate.
        candidate_pairs: The candidate set ``S``.
        score: ``f`` (machine) or ``f_c`` (crowd) for pairs in ``S``.

    Returns:
        The exact objective value: pairs in ``S`` contribute per Equation 1/2
        with their score; same-cluster pairs outside ``S`` contribute 1 each;
        separated pairs outside ``S`` contribute 0.
    """
    in_candidate = set()
    cost = 0.0
    for raw in candidate_pairs:
        pair = canonical_pair(*raw)
        if pair in in_candidate:
            continue
        in_candidate.add(pair)
        value = score(*pair)
        if clustering.together(*pair):
            cost += 1.0 - value
        else:
            cost += value
    # Same-cluster pairs not in S each cost exactly 1 (f_c = 0 by convention).
    intra_outside = sum(
        1 for pair in clustering.intra_cluster_pairs()
        if canonical_pair(*pair) not in in_candidate
    )
    return cost + intra_outside


def split_benefit(confidences: Iterable[float]) -> float:
    """Equation 5: benefit of splitting record ``r`` from cluster ``C``.

    Args:
        confidences: ``f_c(r, r')`` for every other member ``r'`` of ``C``.
    """
    return sum(1.0 - 2.0 * fc for fc in confidences)


def merge_benefit(confidences: Iterable[float]) -> float:
    """Equation 6: benefit of merging clusters ``C1`` and ``C2``.

    Args:
        confidences: ``f_c(r1, r2)`` for every cross pair
            ``r1 in C1, r2 in C2``.
    """
    return sum(2.0 * fc - 1.0 for fc in confidences)
