"""Crowd-Refine (Algorithm 4): sequential crowd-based cluster refinement.

The refinement phase post-processes the generation phase's clustering with
split/merger operations.  Per iteration it either (a) applies the known
positive-benefit operation with the largest benefit — free, no crowd — or
(b) picks the operation with the best estimated benefit-cost ratio,
crowdsources exactly the pairs needed to compute its true benefit, and
applies it if the benefit is confirmed positive.  It stops when the best
ratio is non-positive.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.clustering import Clustering
from repro.core.estimator import DEFAULT_NUM_BUCKETS, HistogramEstimator
from repro.core.operations import (
    Merge,
    Operation,
    OperationEvaluator,
    Split,
    apply_operation,
)
from repro.crowd.oracle import CrowdOracle
from repro.pruning.candidate import CandidateSet

# Positivity tolerance: benefits are sums of f_c terms (multiples of
# 1/num_workers), so any genuine improvement is far above float dust.
BENEFIT_TOLERANCE = 1e-9


def enumerate_operations(clustering: Clustering,
                         candidates: CandidateSet) -> List[Operation]:
    """All refinement operations worth considering on the current clustering.

    Splits: every record in a cluster of size >= 2.  Mergers: every pair of
    clusters connected by at least one candidate edge — a merger of two
    clusters with *no* candidate edge has every cross ``f_c = 0`` (pruned),
    hence a known benefit of ``-|C1||C2| < 0``; such operations can never be
    applied by Algorithm 4/5, so skipping them changes nothing (and keeps the
    scan linear in ``|S|`` instead of quadratic in the cluster count).
    """
    operations: List[Operation] = []
    for cluster_id in clustering.cluster_ids:
        if clustering.size(cluster_id) >= 2:
            for record_id in sorted(clustering.members(cluster_id)):
                operations.append(Split(record_id, cluster_id))
    seen: Set[Tuple[int, int]] = set()
    for a, b in candidates.pairs:
        cluster_a = clustering.cluster_of(a)
        cluster_b = clustering.cluster_of(b)
        if cluster_a == cluster_b:
            continue
        key = (cluster_a, cluster_b) if cluster_a < cluster_b else (cluster_b, cluster_a)
        if key not in seen:
            seen.add(key)
            operations.append(Merge(key[0], key[1]))
    return operations


def build_estimator(
    candidates: CandidateSet,
    oracle: CrowdOracle,
    num_buckets: int = DEFAULT_NUM_BUCKETS,
) -> HistogramEstimator:
    """Algorithm 4 line 1: the histogram ``H`` from the answered pairs ``A``."""
    estimator = HistogramEstimator(num_buckets=num_buckets)
    for pair, crowd_score in oracle.known_pairs().items():
        if pair in candidates:
            estimator.add_sample(pair, candidates.machine_scores[pair], crowd_score)
    return estimator


def _operation_sort_key(operation: Operation) -> Tuple:
    """Canonical tie-break among equal-benefit operations (deterministic and
    shared by the reference and heap-based appliers)."""
    if isinstance(operation, Split):
        return (0, operation.record_id, operation.cluster_id)
    return (1, operation.cluster_a, operation.cluster_b)


def _apply_free_operations_reference(
    clustering: Clustering,
    candidates: CandidateSet,
    oracle: CrowdOracle,
    estimator: HistogramEstimator,
) -> int:
    """Reference implementation: full re-enumeration per applied operation.

    Semantically identical to :func:`apply_free_operations` (which the
    pipeline uses); kept for equivalence tests and readability — this is
    the literal reading of Algorithm 4 lines 5-7.
    """
    evaluator = OperationEvaluator(clustering, candidates, oracle, estimator)
    applied = 0
    while True:
        best_operation: Optional[Operation] = None
        best_key: Optional[Tuple] = None
        for operation in enumerate_operations(clustering, candidates):
            benefit = evaluator.exact_benefit(operation)
            if benefit is None or benefit <= BENEFIT_TOLERANCE:
                continue
            key = (-benefit, _operation_sort_key(operation))
            if best_key is None or key < best_key:
                best_key = key
                best_operation = operation
        if best_operation is None:
            return applied
        apply_operation(clustering, best_operation)
        applied += 1


def apply_free_operations(
    clustering: Clustering,
    candidates: CandidateSet,
    oracle: CrowdOracle,
    estimator: HistogramEstimator,
) -> int:
    """Step 1 of Section 5.4 / lines 5-7 of Algorithm 4: repeatedly apply the
    known-benefit operation with the largest positive benefit until none is
    left.  Costs nothing.  Returns the number of operations applied.

    Implementation: a lazy max-heap over known-positive operations.  An
    operation's exact benefit depends only on its touched clusters'
    membership (crowd answers don't change on the free path), so applying
    one operation only invalidates and respawns operations touching the
    changed clusters — everything else stays valid in the heap.  Equivalent
    to :func:`_apply_free_operations_reference`, which re-enumerates
    everything per step; both pick the maximum-benefit operation with the
    same canonical tie-break.
    """
    import heapq

    evaluator = OperationEvaluator(clustering, candidates, oracle, estimator)

    # Candidate adjacency at the record level, for respawning merges.
    neighbors: Dict[int, List[int]] = {}
    for a, b in candidates.pairs:
        neighbors.setdefault(a, []).append(b)
        neighbors.setdefault(b, []).append(a)

    versions: Dict[int, int] = {
        cluster_id: 0 for cluster_id in clustering.cluster_ids
    }
    heap: List[Tuple[float, Tuple, Operation, Tuple[Tuple[int, int], ...]]] = []

    def snapshot(operation: Operation) -> Tuple[Tuple[int, int], ...]:
        return tuple(
            (cluster, versions[cluster])
            for cluster in operation.touched_clusters
        )

    def push_if_positive(operation: Operation) -> None:
        benefit = evaluator.exact_benefit(operation)
        if benefit is not None and benefit > BENEFIT_TOLERANCE:
            heapq.heappush(heap, (
                -benefit, _operation_sort_key(operation), operation,
                snapshot(operation),
            ))

    def operations_touching(cluster_ids: Iterable[int]) -> List[Operation]:
        """All candidate operations touching the given clusters."""
        found: List[Operation] = []
        seen_merges: Set[Tuple[int, int]] = set()
        for cluster_id in cluster_ids:
            members = clustering.members(cluster_id)
            if len(members) >= 2:
                for record_id in members:
                    found.append(Split(record_id, cluster_id))
            for record_id in members:
                for neighbor in neighbors.get(record_id, ()):
                    other = clustering.cluster_of(neighbor)
                    if other == cluster_id:
                        continue
                    key = (min(cluster_id, other), max(cluster_id, other))
                    if key not in seen_merges:
                        seen_merges.add(key)
                        found.append(Merge(key[0], key[1]))
        return found

    for operation in enumerate_operations(clustering, candidates):
        push_if_positive(operation)

    applied = 0
    while heap:
        negative_benefit, _, operation, snap = heapq.heappop(heap)
        # Stale if any touched cluster changed or vanished.
        if any(versions.get(cluster) != version for cluster, version in snap):
            continue
        before = set(clustering.cluster_ids)
        apply_operation(clustering, operation)
        applied += 1
        after = set(clustering.cluster_ids)
        changed = set(operation.touched_clusters) & after
        created = after - before
        for cluster_id in changed:
            versions[cluster_id] += 1
        for cluster_id in created:
            versions[cluster_id] = 0
        for dead in before - after:
            versions.pop(dead, None)
        for affected in operations_touching(changed | created):
            push_if_positive(affected)
    return applied


def _record_answers(
    answers,
    candidates: CandidateSet,
    estimator: HistogramEstimator,
) -> None:
    """Fold freshly crowdsourced pairs into the histogram (lines 15-16)."""
    for pair, crowd_score in answers.items():
        if pair in candidates:
            estimator.add_sample(pair, candidates.machine_scores[pair], crowd_score)


def crowd_refine(
    clustering: Clustering,
    candidates: CandidateSet,
    oracle: CrowdOracle,
    num_buckets: int = DEFAULT_NUM_BUCKETS,
) -> Clustering:
    """Run Crowd-Refine; refines ``clustering`` in place and returns it.

    Args:
        clustering: Phase-2 output ``C`` (mutated).
        candidates: The candidate set ``S`` with machine scores.
        oracle: Crowd access whose known set is the phase-2 answer set ``A``.
        num_buckets: Histogram granularity ``m`` (paper: 20).
    """
    estimator = build_estimator(candidates, oracle, num_buckets=num_buckets)
    evaluator = OperationEvaluator(clustering, candidates, oracle, estimator)

    while True:
        applied = apply_free_operations(clustering, candidates, oracle, estimator)
        del applied  # the count is only interesting to PC-Refine diagnostics

        # Estimated path: best benefit-cost ratio among costly operations.
        best_operation: Optional[Operation] = None
        best_ratio = 0.0
        for operation in enumerate_operations(clustering, candidates):
            cost = evaluator.cost(operation)
            if cost == 0:
                continue  # exact benefit known; the free path already saw it
            ratio = evaluator.estimated_benefit(operation) / cost
            if best_operation is None or ratio > best_ratio:
                best_ratio = ratio
                best_operation = operation
        if best_operation is None or best_ratio <= 0.0:
            return clustering

        answers = oracle.ask_batch(evaluator.unknown_pairs(best_operation))
        _record_answers(answers, candidates, estimator)
        benefit = evaluator.exact_benefit(best_operation)
        if benefit is not None and benefit > BENEFIT_TOLERANCE:
            apply_operation(clustering, best_operation)
