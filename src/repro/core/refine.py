"""Crowd-Refine (Algorithm 4): sequential crowd-based cluster refinement.

The refinement phase post-processes the generation phase's clustering with
split/merger operations.  Per iteration it either (a) applies the known
positive-benefit operation with the largest benefit — free, no crowd — or
(b) picks the operation with the best estimated benefit-cost ratio,
crowdsources exactly the pairs needed to compute its true benefit, and
applies it if the benefit is confirmed positive.  It stops when the best
ratio is non-positive.
"""

from __future__ import annotations

import heapq

from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.clustering import Clustering
from repro.core.estimator import DEFAULT_NUM_BUCKETS, HistogramEstimator
from repro.core.evaluation_cache import EvaluationCache
from repro.core.operations import (
    Merge,
    Operation,
    OperationEvaluator,
    Split,
    apply_operation,
)
from repro.crowd.oracle import CrowdOracle
from repro.pruning.candidate import CandidateSet

# Positivity tolerance: benefits are sums of f_c terms (multiples of
# 1/num_workers), so any genuine improvement is far above float dust.
BENEFIT_TOLERANCE = 1e-9

#: Refinement engines: "fast" (incremental EvaluationCache + lazy ranking)
#: and "reference" (full re-evaluation per iteration, the literal reading of
#: Algorithms 4-5).  Outputs are byte-identical; "reference" exists for
#: equivalence testing and as the benchmark baseline.
REFINE_ENGINES = ("fast", "reference")


def enumerate_operations(clustering: Clustering,
                         candidates: CandidateSet) -> List[Operation]:
    """All refinement operations worth considering on the current clustering.

    Splits: every record in a cluster of size >= 2.  Mergers: every pair of
    clusters connected by at least one candidate edge — a merger of two
    clusters with *no* candidate edge has every cross ``f_c = 0`` (pruned),
    hence a known benefit of ``-|C1||C2| < 0``; such operations can never be
    applied by Algorithm 4/5, so skipping them changes nothing (and keeps the
    scan linear in ``|S|`` instead of quadratic in the cluster count).
    """
    operations: List[Operation] = []
    for cluster_id in clustering.cluster_ids:
        if clustering.size(cluster_id) >= 2:
            for record_id in sorted(clustering.members(cluster_id)):
                operations.append(Split(record_id, cluster_id))
    seen: Set[Tuple[int, int]] = set()
    for a, b in candidates.pairs:
        cluster_a = clustering.cluster_of(a)
        cluster_b = clustering.cluster_of(b)
        if cluster_a == cluster_b:
            continue
        key = (cluster_a, cluster_b) if cluster_a < cluster_b else (cluster_b, cluster_a)
        if key not in seen:
            seen.add(key)
            operations.append(Merge(key[0], key[1]))
    return operations


class ClusterVersionTracker:
    """Monotone per-cluster version counters over a mutating clustering.

    A cluster's version bumps whenever an applied operation changes its
    membership; created clusters start at version 0 (cluster ids are never
    reused, so a fresh id can't collide with a stale cached version).  Both
    the free-operation heap and the costly-operation enumeration cache use
    these versions to invalidate only what an operation actually touched.
    """

    def __init__(self, clustering: Clustering):
        self._versions: Dict[int, int] = {
            cluster_id: 0 for cluster_id in clustering.cluster_ids
        }

    def version(self, cluster_id: int) -> Optional[int]:
        """Current version of a cluster; ``None`` once it is destroyed."""
        return self._versions.get(cluster_id)

    def snapshot(self, cluster_ids: Iterable[int]) -> Tuple[Tuple[int, int], ...]:
        """Frozen (cluster, version) view used for staleness checks."""
        return tuple(
            (cluster_id, self._versions[cluster_id])
            for cluster_id in cluster_ids
        )

    def is_current(self, snapshot: Tuple[Tuple[int, int], ...]) -> bool:
        return all(
            self._versions.get(cluster_id) == version
            for cluster_id, version in snapshot
        )

    def apply(self, clustering: Clustering, operation: Operation) -> Set[int]:
        """Apply ``operation`` and update versions.

        Returns the ids of clusters whose cached state is now invalid
        (changed survivors plus newly created clusters).
        """
        before = set(clustering.cluster_ids)
        apply_operation(clustering, operation)
        after = set(clustering.cluster_ids)
        changed = set(operation.touched_clusters) & after
        created = after - before
        for cluster_id in changed:
            self._versions[cluster_id] += 1
        for cluster_id in created:
            self._versions[cluster_id] = 0
        for dead in before - after:
            self._versions.pop(dead, None)
        return changed | created


class OperationCache:
    """Version-invalidated cache of :func:`enumerate_operations`.

    ``crowd_refine``'s estimated path re-enumerates every candidate
    operation on every outer iteration — an O(|S|) scan of the candidate
    pairs — even when the iteration applied a single operation.  This cache
    keeps per-cluster split lists and per-cluster-pair merge entries stamped
    with :class:`ClusterVersionTracker` versions, and rebuilds only the
    entries whose clusters changed.

    :meth:`operations` returns the *exact* list (contents and order) that
    ``enumerate_operations`` would produce: splits ascend by (cluster id,
    record id); mergers ascend by their smallest crossing candidate pair,
    which is precisely their first-occurrence order in the sorted pair scan.
    Preserving order matters because the estimated path breaks benefit-ratio
    ties by enumeration order.
    """

    def __init__(self, clustering: Clustering, candidates: CandidateSet,
                 tracker: Optional[ClusterVersionTracker] = None):
        self._clustering = clustering
        self._tracker = tracker if tracker is not None else (
            ClusterVersionTracker(clustering)
        )
        self.neighbors: Dict[int, List[int]] = candidate_adjacency(candidates)
        # cluster id -> (version, splits of that cluster, sorted by record)
        self._split_entries: Dict[int, Tuple[int, List[Operation]]] = {}
        # (cluster_a, cluster_b) -> (version_a, version_b, min crossing pair)
        self._merge_entries: Dict[Tuple[int, int],
                                  Tuple[int, int, Tuple[int, int]]] = {}

    @property
    def tracker(self) -> ClusterVersionTracker:
        return self._tracker

    def apply(self, operation: Operation) -> Set[int]:
        """Apply an operation through the shared tracker."""
        return self._tracker.apply(self._clustering, operation)

    def operations(self) -> List[Operation]:
        """The current operation list, identical to
        ``enumerate_operations(clustering, candidates)``."""
        clustering = self._clustering
        cluster_ids = clustering.cluster_ids  # sorted
        current: Dict[int, int] = {}
        for cluster_id in cluster_ids:
            version = self._tracker.version(cluster_id)
            assert version is not None, "live cluster missing from tracker"
            current[cluster_id] = version

        for key in [k for k, (version_a, version_b, _)
                    in self._merge_entries.items()
                    if current.get(k[0]) != version_a
                    or current.get(k[1]) != version_b]:
            del self._merge_entries[key]
        for dead in set(self._split_entries) - set(current):
            del self._split_entries[dead]

        stale = [
            cluster_id for cluster_id in cluster_ids
            if self._split_entries.get(cluster_id, (None, None))[0]
            != current[cluster_id]
        ]
        for cluster_id in stale:
            self._rebuild(cluster_id, current)

        operations: List[Operation] = []
        for cluster_id in cluster_ids:
            operations.extend(self._split_entries[cluster_id][1])
        for key, _ in sorted(self._merge_entries.items(),
                             key=lambda item: item[1][2]):
            operations.append(Merge(key[0], key[1]))
        return operations

    def _rebuild(self, cluster_id: int, current: Mapping[int, int]) -> None:
        clustering = self._clustering
        members = clustering.members(cluster_id)
        splits: List[Operation] = (
            [Split(record_id, cluster_id) for record_id in sorted(members)]
            if len(members) >= 2 else []
        )
        self._split_entries[cluster_id] = (current[cluster_id], splits)

        # Every candidate edge crossing this cluster has exactly one endpoint
        # inside it, so scanning members x neighbors sees them all — the
        # per-merge minimum crossing pair is exact.
        crossing: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for record_id in members:
            for neighbor in self.neighbors.get(record_id, ()):
                other = clustering.cluster_of(neighbor)
                if other == cluster_id:
                    continue
                key = ((cluster_id, other) if cluster_id < other
                       else (other, cluster_id))
                pair = ((record_id, neighbor) if record_id < neighbor
                        else (neighbor, record_id))
                best = crossing.get(key)
                if best is None or pair < best:
                    crossing[key] = pair
        for key, pair in crossing.items():
            self._merge_entries[key] = (current[key[0]], current[key[1]], pair)


def candidate_adjacency(candidates: CandidateSet) -> Dict[int, List[int]]:
    """Record-level adjacency of the candidate graph (for merge respawning)."""
    neighbors: Dict[int, List[int]] = {}
    for a, b in candidates.pairs:
        neighbors.setdefault(a, []).append(b)
        neighbors.setdefault(b, []).append(a)
    return neighbors


def build_estimator(
    candidates: CandidateSet,
    oracle: CrowdOracle,
    num_buckets: int = DEFAULT_NUM_BUCKETS,
) -> HistogramEstimator:
    """Algorithm 4 line 1: the histogram ``H`` from the answered pairs ``A``."""
    estimator = HistogramEstimator(num_buckets=num_buckets)
    for pair, crowd_score in oracle.known_pairs().items():
        if pair in candidates:
            estimator.add_sample(pair, candidates.machine_scores[pair], crowd_score)
    return estimator


def _operation_sort_key(operation: Operation) -> Tuple:
    """Canonical tie-break among equal-benefit operations (deterministic and
    shared by the reference and heap-based appliers)."""
    if isinstance(operation, Split):
        return (0, operation.record_id, operation.cluster_id)
    return (1, operation.cluster_a, operation.cluster_b)


def _apply_free_operations_reference(
    clustering: Clustering,
    candidates: CandidateSet,
    oracle: CrowdOracle,
    estimator: HistogramEstimator,
) -> int:
    """Reference implementation: full re-enumeration per applied operation.

    Semantically identical to :func:`apply_free_operations` (which the
    pipeline uses); kept for equivalence tests and readability — this is
    the literal reading of Algorithm 4 lines 5-7.
    """
    evaluator = OperationEvaluator(clustering, candidates, oracle, estimator)
    applied = 0
    while True:
        best_operation: Optional[Operation] = None
        best_key: Optional[Tuple] = None
        for operation in enumerate_operations(clustering, candidates):
            benefit = evaluator.exact_benefit(operation)
            if benefit is None or benefit <= BENEFIT_TOLERANCE:
                continue
            key = (-benefit, _operation_sort_key(operation))
            if best_key is None or key < best_key:
                best_key = key
                best_operation = operation
        if best_operation is None:
            return applied
        apply_operation(clustering, best_operation)
        applied += 1


def _operations_touching(
    clustering: Clustering,
    neighbors: Mapping[int, List[int]],
    cluster_ids: Iterable[int],
) -> List[Operation]:
    """All candidate operations touching the given *live* clusters."""
    found: List[Operation] = []
    seen_merges: Set[Tuple[int, int]] = set()
    for cluster_id in cluster_ids:
        members = clustering.members(cluster_id)
        if len(members) >= 2:
            for record_id in members:
                found.append(Split(record_id, cluster_id))
        for record_id in members:
            for neighbor in neighbors.get(record_id, ()):
                other = clustering.cluster_of(neighbor)
                if other == cluster_id:
                    continue
                key = (min(cluster_id, other), max(cluster_id, other))
                if key not in seen_merges:
                    seen_merges.add(key)
                    found.append(Merge(key[0], key[1]))
    return found


def apply_free_operations(
    clustering: Clustering,
    candidates: CandidateSet,
    oracle: CrowdOracle,
    estimator: HistogramEstimator,
    cache: Optional[OperationCache] = None,
    evaluator: Optional[OperationEvaluator] = None,
    evaluations: Optional[EvaluationCache] = None,
    invalidated: Optional[Set[int]] = None,
    on_apply=None,
) -> int:
    """Step 1 of Section 5.4 / lines 5-7 of Algorithm 4: repeatedly apply the
    known-benefit operation with the largest positive benefit until none is
    left.  Costs nothing.  Returns the number of operations applied.

    Implementation: a lazy max-heap over known-positive operations.  An
    operation's exact benefit depends only on its touched clusters'
    membership (crowd answers don't change on the free path), so applying
    one operation only invalidates and respawns operations touching the
    changed clusters — everything else stays valid in the heap.  Equivalent
    to :func:`_apply_free_operations_reference`, which re-enumerates
    everything per step; both pick the maximum-benefit operation with the
    same canonical tie-break.

    Args:
        cache: Optional shared :class:`OperationCache` (from
            ``crowd_refine``).  Supplies the initial operation list, the
            candidate adjacency, and the cluster-version tracker — so the
            heap seeding reuses cached enumeration state and the applied
            operations invalidate the caller's cache entries in turn.
        evaluator: Optional caller-owned evaluator to use instead of a
            private one (lets the caller account all derivations in one
            counter; values are state-dependent, never caller-dependent).
        evaluations: Optional :class:`EvaluationCache`; when given, exact
            benefits are served incrementally from it instead of being
            re-derived per push (fast-engine path).  Must share the same
            tracker as ``cache``.
        invalidated: Optional out-parameter; accumulates the cluster ids
            each applied operation touched, changed, or created — exactly
            the set a caller-side ranking structure must re-examine
            (including destroyed cluster ids).
        on_apply: Optional callback invoked with each operation *about to
            be applied* (the clustering still in its pre-application
            state) — lets the sharded engine journal applied operations
            as id-independent record references for cross-shard replay.
    """
    if evaluations is not None:
        exact_benefit = evaluations.exact_benefit
    else:
        if evaluator is None:
            evaluator = OperationEvaluator(clustering, candidates, oracle,
                                           estimator)
        exact_benefit = evaluator.exact_benefit

    if cache is not None:
        neighbors = cache.neighbors
        tracker = cache.tracker
        initial_operations = cache.operations()
    else:
        neighbors = candidate_adjacency(candidates)
        tracker = ClusterVersionTracker(clustering)
        initial_operations = enumerate_operations(clustering, candidates)

    heap: List[Tuple[float, Tuple, Operation, Tuple[Tuple[int, int], ...]]] = []

    def push_if_positive(operation: Operation) -> None:
        benefit = exact_benefit(operation)
        if benefit is not None and benefit > BENEFIT_TOLERANCE:
            heapq.heappush(heap, (
                -benefit, _operation_sort_key(operation), operation,
                tracker.snapshot(operation.touched_clusters),
            ))

    for operation in initial_operations:
        push_if_positive(operation)

    applied = 0
    while heap:
        negative_benefit, _, operation, snap = heapq.heappop(heap)
        # Stale if any touched cluster changed or vanished.
        if not tracker.is_current(snap):
            continue
        if on_apply is not None:
            on_apply(operation)
        changed = tracker.apply(clustering, operation)
        applied += 1
        if invalidated is not None:
            invalidated |= set(operation.touched_clusters) | changed
        for affected in _operations_touching(clustering, neighbors, changed):
            push_if_positive(affected)
    return applied


def _record_answers(
    answers,
    candidates: CandidateSet,
    estimator: HistogramEstimator,
) -> None:
    """Fold freshly crowdsourced pairs into the histogram (lines 15-16)."""
    for pair, crowd_score in answers.items():
        if pair in candidates:
            estimator.add_sample(pair, candidates.machine_scores[pair], crowd_score)


def _crowd_refine_reference(
    clustering: Clustering,
    candidates: CandidateSet,
    oracle: CrowdOracle,
    num_buckets: int = DEFAULT_NUM_BUCKETS,
    obs=None,
) -> Clustering:
    """Reference engine: re-evaluates every operation per outer iteration.

    The literal reading of Algorithm 4's estimated path; kept for
    equivalence tests and as the ``bench_refine`` baseline.
    """
    estimator = build_estimator(candidates, oracle, num_buckets=num_buckets)
    evaluator = OperationEvaluator(clustering, candidates, oracle, estimator)
    # One cache for the whole refinement: each outer iteration touches at
    # most a handful of clusters, so re-enumeration cost drops from O(|S|)
    # per loop to the few entries those clusters invalidated.
    cache = OperationCache(clustering, candidates)

    step = 0
    while True:
        applied = apply_free_operations(clustering, candidates, oracle,
                                        estimator, cache=cache,
                                        evaluator=evaluator)
        if obs is not None and applied:
            obs.metrics.counter(
                "refine_free_operations_total",
                help="Zero-cost refinement operations applied",
            ).inc(applied)

        # Estimated path: best benefit-cost ratio among costly operations.
        best_operation: Optional[Operation] = None
        best_ratio = 0.0
        for operation in cache.operations():
            cost = evaluator.cost(operation)
            if cost <= 0:
                continue  # exact benefit known; the free path already saw it
            ratio = evaluator.estimated_benefit(operation) / cost
            if best_operation is None or ratio > best_ratio:
                best_ratio = ratio
                best_operation = operation
        if best_operation is None or best_ratio <= 0.0:
            return clustering

        cost = evaluator.cost(best_operation)
        answers = oracle.ask_batch(evaluator.unknown_pairs(best_operation))
        _record_answers(answers, candidates, estimator)
        benefit = evaluator.exact_benefit(best_operation)
        confirmed = benefit is not None and benefit > BENEFIT_TOLERANCE
        if confirmed:
            cache.apply(best_operation)
        step += 1
        if obs is not None:
            obs.metrics.counter(
                "refine_steps_total",
                help="Costly Crowd-Refine iterations executed",
            ).inc()
            obs.event(
                "refine.step",
                step=step,
                operation=repr(best_operation),
                ratio=best_ratio,
                cost=cost,
                benefit=benefit,
                applied=confirmed,
                clusters=len(clustering),
                histogram_samples=len(estimator),
                histogram_buckets=estimator.num_buckets,
            )


class _LazyRatioSelector:
    """Persistent best-ratio selection over the costly operations.

    Replaces the reference engine's full O(ops) rescan per iteration with a
    lazy max-heap keyed ``(-ratio, enumeration-order key)``.  The
    enumeration-order key reproduces ``enumerate_operations``' position
    order (splits ascending by (cluster, record), then merges ascending by
    their minimum crossing candidate pair), so the heap top is exactly the
    operation the reference scan's strict ``ratio > best_ratio`` update
    would select: maximum ratio, earliest enumeration position among ties.

    Staleness is handled lazily: heap entries are discarded on pop when
    their tracked ratio no longer matches; invalidated clusters respawn
    their touching operations; answer/estimate deltas arrive through
    :meth:`EvaluationCache.drain_dirty_operations`.
    """

    def __init__(self, clustering: Clustering, cache: OperationCache,
                 evaluations: EvaluationCache):
        self._clustering = clustering
        self._cache = cache
        self._evaluations = evaluations
        self._heap: List[Tuple[float, Tuple, int, Operation]] = []
        self._tracked: Dict[Operation, float] = {}
        self._by_cluster: Dict[int, Set[Operation]] = {}
        self._pending: Set[int] = set()
        self._seq = 0
        for operation in cache.operations():
            self._consider(operation)

    def invalidate_clusters(self, cluster_ids: Iterable[int]) -> None:
        """Mark clusters whose membership changed (or that died); their
        touching operations are re-examined on the next :meth:`select`."""
        self._pending.update(cluster_ids)

    def select(self) -> Tuple[Optional[Operation], float]:
        """The costly operation the reference scan would pick, with its
        ratio; ``(None, 0.0)`` when no costly operation exists."""
        self._ingest()
        heap = self._heap
        if len(heap) > 64 + 4 * len(self._tracked):
            self._compact()
        while heap:
            negative_ratio, _, _, operation = heap[0]
            current = self._tracked.get(operation)
            if current is None or -negative_ratio != current:
                heapq.heappop(heap)  # stale entry
                continue
            return operation, current
        return None, 0.0

    # -- internals ------------------------------------------------------

    def _ingest(self) -> None:
        dirty = self._evaluations.drain_dirty_operations()
        pending = self._pending
        self._pending = set()
        stale: Set[Operation] = set()
        for cluster_id in pending:
            stale |= self._by_cluster.pop(cluster_id, set())
        tracker = self._cache.tracker
        live = [cluster_id for cluster_id in pending
                if tracker.version(cluster_id) is not None]
        fresh = set(_operations_touching(self._clustering,
                                         self._cache.neighbors, live))
        for operation in stale - fresh:
            self._untrack(operation)
        for operation in fresh:
            self._consider(operation)
        for operation in dirty:
            # Untracked live operations have cost <= 0 (answers only ever
            # shrink costs; cost growth requires a cluster change, which
            # arrives via `fresh`), so only tracked ones can move.
            if operation not in fresh and operation in self._tracked:
                self._consider(operation)

    def _consider(self, operation: Operation) -> None:
        ratio, cost = self._evaluations.ratio_and_cost(operation)
        if cost <= 0:
            self._untrack(operation)
            return
        for cluster_id in operation.touched_clusters:
            self._by_cluster.setdefault(cluster_id, set()).add(operation)
        if self._tracked.get(operation) == ratio:
            return  # existing heap entry is still valid
        self._tracked[operation] = ratio
        self._seq += 1
        heapq.heappush(self._heap,
                       (-ratio, self._enum_key(operation), self._seq,
                        operation))

    def _untrack(self, operation: Operation) -> None:
        if self._tracked.pop(operation, None) is None:
            return
        for cluster_id in operation.touched_clusters:
            ops = self._by_cluster.get(cluster_id)
            if ops is not None:
                ops.discard(operation)
                if not ops:
                    del self._by_cluster[cluster_id]

    def _compact(self) -> None:
        self._heap = [
            (-ratio, self._enum_key(operation), index, operation)
            for index, (operation, ratio) in enumerate(self._tracked.items())
        ]
        heapq.heapify(self._heap)
        self._seq = len(self._heap)

    def _enum_key(self, operation: Operation) -> Tuple:
        if isinstance(operation, Split):
            return (0, operation.cluster_id, operation.record_id)
        return (1, self._min_crossing_pair(operation))

    def _min_crossing_pair(self, operation: Merge) -> Tuple[int, int]:
        """The merge's smallest crossing candidate pair — its first
        occurrence position in ``enumerate_operations``' sorted pair scan."""
        clustering = self._clustering
        neighbors = self._cache.neighbors
        scan, other = operation.cluster_a, operation.cluster_b
        if clustering.size(other) < clustering.size(scan):
            scan, other = other, scan
        best: Optional[Tuple[int, int]] = None
        for record_id in clustering.members(scan):
            for neighbor in neighbors.get(record_id, ()):
                if clustering.cluster_of(neighbor) != other:
                    continue
                pair = ((record_id, neighbor) if record_id < neighbor
                        else (neighbor, record_id))
                if best is None or pair < best:
                    best = pair
        assert best is not None, "merge exists without a crossing edge"
        return best


def _crowd_refine_fast(
    clustering: Clustering,
    candidates: CandidateSet,
    oracle: CrowdOracle,
    num_buckets: int = DEFAULT_NUM_BUCKETS,
    obs=None,
) -> Clustering:
    """Fast engine: incremental evaluation + lazy best-ratio selection.

    Byte-identical to :func:`_crowd_refine_reference` (same operations
    chosen, same crowd batches, same events) — property-tested in
    ``tests/core/test_refine_engines.py``.
    """
    estimator = build_estimator(candidates, oracle, num_buckets=num_buckets)
    cache = OperationCache(clustering, candidates)
    evaluations = EvaluationCache(clustering, candidates, oracle, estimator,
                                  cache.tracker)
    selector = _LazyRatioSelector(clustering, cache, evaluations)

    step = 0
    while True:
        invalidated: Set[int] = set()
        applied = apply_free_operations(clustering, candidates, oracle,
                                        estimator, cache=cache,
                                        evaluations=evaluations,
                                        invalidated=invalidated)
        if invalidated:
            selector.invalidate_clusters(invalidated)
        if obs is not None and applied:
            obs.metrics.counter(
                "refine_free_operations_total",
                help="Zero-cost refinement operations applied",
            ).inc(applied)

        best_operation, best_ratio = selector.select()
        if best_operation is None or best_ratio <= 0.0:
            return clustering

        cost = evaluations.cost(best_operation)
        answers = oracle.ask_batch(evaluations.unknown_pairs(best_operation))
        _record_answers(answers, candidates, estimator)
        benefit = evaluations.exact_benefit(best_operation)
        confirmed = benefit is not None and benefit > BENEFIT_TOLERANCE
        if confirmed:
            changed = cache.apply(best_operation)
            selector.invalidate_clusters(
                set(best_operation.touched_clusters) | changed
            )
        step += 1
        if obs is not None:
            obs.metrics.counter(
                "refine_steps_total",
                help="Costly Crowd-Refine iterations executed",
            ).inc()
            obs.event(
                "refine.step",
                step=step,
                operation=repr(best_operation),
                ratio=best_ratio,
                cost=cost,
                benefit=benefit,
                applied=confirmed,
                clusters=len(clustering),
                histogram_samples=len(estimator),
                histogram_buckets=estimator.num_buckets,
            )


def crowd_refine(
    clustering: Clustering,
    candidates: CandidateSet,
    oracle: CrowdOracle,
    num_buckets: int = DEFAULT_NUM_BUCKETS,
    obs=None,
    engine: str = "fast",
) -> Clustering:
    """Run Crowd-Refine; refines ``clustering`` in place and returns it.

    Args:
        clustering: Phase-2 output ``C`` (mutated).
        candidates: The candidate set ``S`` with machine scores.
        oracle: Crowd access whose known set is the phase-2 answer set ``A``.
        num_buckets: Histogram granularity ``m`` (paper: 20).
        obs: Optional :class:`~repro.obs.ObsContext`; each costly
            iteration emits a ``refine.step`` event (chosen operation, its
            ratio / cost / confirmed benefit, histogram state) and bumps
            the step / free-operation counters.
        engine: One of :data:`REFINE_ENGINES` — "fast" (incremental,
            default) or "reference" (full re-evaluation); outputs are
            byte-identical.
    """
    if engine not in REFINE_ENGINES:
        raise ValueError(
            f"engine must be one of {REFINE_ENGINES}, got {engine!r}"
        )
    refine = (_crowd_refine_fast if engine == "fast"
              else _crowd_refine_reference)
    return refine(clustering, candidates, oracle, num_buckets=num_buckets,
                  obs=obs)
