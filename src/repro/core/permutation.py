"""Random permutations of records — the shared randomness of the pivot family.

Crowd-Pivot picks pivots uniformly at random; equivalently (Section 4.2) it
fixes a random permutation ``M`` up front and always picks the un-clustered
record with the smallest *permutation rank*.  PC-Pivot relies on that view to
stay exactly equivalent to the sequential algorithm (Lemma 2), so both
algorithms share this explicit permutation object.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence


class Permutation:
    """A fixed total order over record ids with O(1) rank lookup."""

    def __init__(self, order: Sequence[int]):
        self._order: List[int] = list(order)
        self._rank: Dict[int, int] = {
            record_id: rank for rank, record_id in enumerate(self._order)
        }
        if len(self._rank) != len(self._order):
            raise ValueError("permutation contains duplicate record ids")

    @staticmethod
    def random(record_ids: Iterable[int], rng: Optional[random.Random] = None,
               seed: Optional[int] = None) -> "Permutation":
        """A uniformly random permutation.

        Exactly one of ``rng``/``seed`` may be given; with neither, module
        randomness is used (non-reproducible — prefer passing a seed).
        """
        if rng is not None and seed is not None:
            raise ValueError("pass either rng or seed, not both")
        if rng is None:
            rng = random.Random(seed)
        order = sorted(record_ids)
        rng.shuffle(order)
        return Permutation(order)

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self):
        return iter(self._order)

    def __contains__(self, record_id: int) -> bool:
        return record_id in self._rank

    def rank(self, record_id: int) -> int:
        """The permutation rank (0-based) of a record."""
        return self._rank[record_id]

    def first(self, candidates: Iterable[int]) -> int:
        """The candidate with the smallest permutation rank."""
        return min(candidates, key=self.rank)

    def ordered(self, candidates: Iterable[int]) -> List[int]:
        """Candidates sorted by ascending permutation rank."""
        return sorted(candidates, key=self.rank)
