"""LP-relaxation lower bound for the correlation-clustering objective.

The paper's related work (Section 7) recalls that the best approximation
factors for correlation clustering come from linear programming [5, 42].
This module solves the standard LP relaxation of the Λ' minimization —
distance variables ``x_ij ∈ [0, 1]`` (0 = same cluster) subject to the
triangle inequalities — giving a *certified lower bound* on the optimum.
Any clustering's Λ' can then be compared against the bound to report a true
optimality gap, without enumerating partitions.

Feasible for instances up to a few dozen records (the constraint count is
O(n^3)); used by analysis tooling and tests, not by the crowd pipeline.
"""

from __future__ import annotations

import itertools
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

Pair = Tuple[int, int]


def lp_lower_bound(
    record_ids: Sequence[int],
    confidences: Mapping[Pair, float],
    max_records: int = 40,
) -> float:
    """Solve the correlation-clustering LP relaxation.

    Objective (Equation 2 in LP form): minimize
    ``sum (1 - f_c) * (1 - x_ij) + f_c * x_ij`` over distances ``x`` with
    triangle inequalities ``x_ik <= x_ij + x_jk``.  Pairs absent from
    ``confidences`` have ``f_c = 0`` (the pruning convention).

    Args:
        record_ids: The records (order defines variable indexing).
        confidences: Pair -> ``f_c``.
        max_records: Safety cap; O(n^3) constraints get expensive fast.

    Returns:
        The LP optimum — a lower bound on ``min Λ'(R)``.

    Raises:
        ValueError: If the instance exceeds ``max_records`` or the solver
            fails.
    """
    ids = list(record_ids)
    n = len(ids)
    if n > max_records:
        raise ValueError(
            f"{n} records exceed the max_records cap of {max_records}"
        )
    if n < 2:
        return 0.0
    index_of = {record: position for position, record in enumerate(ids)}

    def confidence(a: int, b: int) -> float:
        return confidences.get((min(a, b), max(a, b)), 0.0)

    # Variable x_ij for i < j, flattened.
    variables: Dict[Pair, int] = {}
    for i in range(n):
        for j in range(i + 1, n):
            variables[(i, j)] = len(variables)
    num_variables = len(variables)

    # Objective: sum fc*x + (1-fc)*(1-x) = const + sum (2fc - 1) x.
    costs = np.zeros(num_variables)
    constant = 0.0
    for (i, j), column in variables.items():
        fc = confidence(ids[i], ids[j])
        costs[column] = 2.0 * fc - 1.0
        constant += 1.0 - fc

    # Triangle inequalities: x_ik - x_ij - x_jk <= 0 for each ordered
    # middle vertex j of every unordered triple.
    def var(i: int, j: int) -> int:
        return variables[(i, j) if i < j else (j, i)]

    rows = []
    for i, j, k in itertools.combinations(range(n), 3):
        for (a, b), (c, d), (e, f) in (
            ((i, k), (i, j), (j, k)),
            ((i, j), (i, k), (j, k)),
            ((j, k), (i, j), (i, k)),
        ):
            row = np.zeros(num_variables)
            row[var(a, b)] = 1.0
            row[var(c, d)] = -1.0
            row[var(e, f)] = -1.0
            rows.append(row)

    a_ub = np.array(rows) if rows else None
    b_ub = np.zeros(len(rows)) if rows else None
    result = linprog(
        costs, A_ub=a_ub, b_ub=b_ub, bounds=[(0.0, 1.0)] * num_variables,
        method="highs",
    )
    if not result.success:
        raise ValueError(f"LP solver failed: {result.message}")
    return float(constant + result.fun)


def optimality_gap(
    lambda_value: float,
    record_ids: Sequence[int],
    confidences: Mapping[Pair, float],
) -> float:
    """The multiplicative gap of a clustering's Λ' over the LP bound.

    Returns ``lambda_value / bound`` (1.0 when the bound is met; defined as
    1.0 when the bound is 0 and the value is 0, ``inf`` when only the bound
    is 0).
    """
    bound = lp_lower_bound(record_ids, confidences)
    if bound <= 1e-12:
        return 1.0 if lambda_value <= 1e-12 else float("inf")
    return lambda_value / bound
