"""Phonetic encodings (Soundex and a simplified Metaphone) — the paper's
reference [39] class of similarity metrics.  Useful for name-heavy datasets
such as Restaurant.
"""

from __future__ import annotations

import re

_SOUNDEX_CODES = {
    **dict.fromkeys("bfpv", "1"),
    **dict.fromkeys("cgjkqsxz", "2"),
    **dict.fromkeys("dt", "3"),
    "l": "4",
    **dict.fromkeys("mn", "5"),
    "r": "6",
}

_VOWELISH = set("aeiouyhw")


def soundex(word: str, length: int = 4) -> str:
    """American Soundex code of a word, padded/truncated to ``length``.

    >>> soundex("Robert")
    'R163'
    >>> soundex("Rupert")
    'R163'
    """
    letters = [c for c in word.lower() if c.isalpha()]
    if not letters:
        return "0" * length
    first = letters[0]
    encoded = [first.upper()]
    previous_code = _SOUNDEX_CODES.get(first, "")
    for char in letters[1:]:
        code = _SOUNDEX_CODES.get(char, "")
        if code and code != previous_code:
            encoded.append(code)
        if char not in "hw":
            previous_code = code
    result = "".join(encoded)[:length]
    return result.ljust(length, "0")


def metaphone(word: str) -> str:
    """A simplified Metaphone encoding.

    This covers the common English consonant transformations (enough for
    fuzzy name matching); it is not a full Philips Metaphone implementation
    but shares its key property: words that sound alike map to the same code.
    """
    word = re.sub(r"[^a-z]", "", word.lower())
    if not word:
        return ""
    # Initial-letter exceptions.
    for prefix, replacement in (("kn", "n"), ("gn", "n"), ("pn", "n"),
                                ("wr", "r"), ("ps", "s"), ("x", "s")):
        if word.startswith(prefix):
            word = replacement + word[len(prefix):]
            break

    output = []
    i = 0
    n = len(word)
    while i < n:
        char = word[i]
        nxt = word[i + 1] if i + 1 < n else ""
        prev = word[i - 1] if i > 0 else ""
        if char in "aeiou":
            if i == 0:
                output.append(char.upper())
            i += 1
            continue
        if char == prev and char != "c":  # drop doubled letters
            i += 1
            continue
        if char == "b":
            if not (i == n - 1 and prev == "m"):
                output.append("B")
        elif char == "c":
            if nxt == "h":
                output.append("X")
                i += 1
            elif nxt in "iey":
                output.append("S")
            else:
                output.append("K")
        elif char == "d":
            if nxt == "g" and i + 2 < n and word[i + 2] in "iey":
                output.append("J")
                i += 2
            else:
                output.append("T")
        elif char == "g":
            if nxt == "h":
                output.append("K")
                i += 1
            elif nxt in "iey":
                output.append("J")
            else:
                output.append("K")
        elif char == "h":
            if prev in "aeiou" and nxt not in "aeiou":
                pass  # silent
            else:
                output.append("H")
        elif char == "k":
            if prev != "c":
                output.append("K")
        elif char == "p":
            if nxt == "h":
                output.append("F")
                i += 1
            else:
                output.append("P")
        elif char == "q":
            output.append("K")
        elif char == "s":
            if nxt == "h":
                output.append("X")
                i += 1
            else:
                output.append("S")
        elif char == "t":
            if nxt == "h":
                output.append("0")
                i += 1
            else:
                output.append("T")
        elif char == "v":
            output.append("F")
        elif char == "w":
            if nxt in "aeiou":
                output.append("W")
        elif char == "x":
            output.append("KS")
        elif char == "y":
            if nxt in "aeiou":
                output.append("Y")
        elif char == "z":
            output.append("S")
        else:
            output.append(char.upper())
        i += 1
    return "".join(output)


def phonetic_equal(a: str, b: str) -> bool:
    """True iff two words share a Soundex or Metaphone code."""
    return soundex(a) == soundex(b) or (
        metaphone(a) != "" and metaphone(a) == metaphone(b)
    )
