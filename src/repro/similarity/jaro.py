"""Jaro and Jaro-Winkler string similarity, widely used for names in
record-linkage literature.
"""

from __future__ import annotations


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity in [0, 1].

    Matches are characters equal within a window of
    ``max(len(a), len(b)) // 2 - 1``; transpositions are matched characters
    in a different order.
    """
    if a == b:
        return 1.0
    len_a, len_b = len(a), len(b)
    if len_a == 0 or len_b == 0:
        return 0.0
    window = max(len_a, len_b) // 2 - 1
    window = max(window, 0)

    matched_a = [False] * len_a
    matched_b = [False] * len_b
    matches = 0
    for i, char_a in enumerate(a):
        lo = max(0, i - window)
        hi = min(len_b, i + window + 1)
        for j in range(lo, hi):
            if not matched_b[j] and b[j] == char_a:
                matched_a[i] = True
                matched_b[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0

    transpositions = 0
    j = 0
    for i in range(len_a):
        if matched_a[i]:
            while not matched_b[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2

    return (
        matches / len_a + matches / len_b + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(a: str, b: str, prefix_weight: float = 0.1) -> float:
    """Jaro-Winkler: Jaro boosted by the length of the common prefix
    (capped at 4 characters).

    Args:
        prefix_weight: Winkler's scaling factor ``p``; must satisfy
            ``0 <= p <= 0.25`` so the result stays in [0, 1].
    """
    if not 0.0 <= prefix_weight <= 0.25:
        raise ValueError(f"prefix_weight must be in [0, 0.25], got {prefix_weight}")
    jaro = jaro_similarity(a, b)
    prefix = 0
    for char_a, char_b in zip(a[:4], b[:4]):
        if char_a != char_b:
            break
        prefix += 1
    return jaro + prefix * prefix_weight * (1.0 - jaro)
