"""Vectorized similarity kernels: batch set-metric scoring over int-id arrays.

The scalar set metrics (:func:`~repro.similarity.jaccard.jaccard` and
friends) compare two Python frozensets per call; at 100k-1M records the
per-pair interpreter overhead is the pruning phase's wall.  This module
provides the batch counterpart: token sets are *interned* once into dense
integer ids in a shared :class:`TokenVocabulary`, every record becomes a
sorted ``int32`` array in one flat CSR store (:class:`EncodedRecords`), and
whole blocks of candidate pairs are scored with a handful of numpy
operations instead of one Python call each.

Backends are dispatched through :data:`KERNEL_BACKENDS`, mirroring the
``REFINE_ENGINES`` / ``PIVOT_ENGINES`` fast/reference registries:

* ``scalar`` — the literal reading: per-pair Python set functions.
* ``vectorized`` — the numpy batch path described above.
* ``auto`` — ``vectorized`` when numpy is importable, else ``scalar``.

Equivalence contract: for every supported metric the vectorized scores are
**bit-for-bit identical** to the scalar ones.  Intersection and set sizes
are exact integers; each batch formula performs the same IEEE-754 double
operations in the same order as its scalar twin (e.g. Jaccard divides the
exact intersection by the exact union — both integers below 2^53 — so both
paths produce the same correctly rounded quotient).  The empty-set
conventions also match: empty vs empty scores 1.0, empty vs non-empty 0.0.

numpy is an optional dependency: when it is missing every ``auto`` resolve
degrades to ``scalar`` and the module stays importable.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

try:  # Optional dependency: everything degrades to the scalar path.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None  # type: ignore[assignment]

#: Kernel backends, fast/reference style.  ``auto`` resolves at call time.
KERNEL_BACKENDS = ("auto", "vectorized", "scalar")

#: Metrics with a batch implementation (the prefix-join family).
VECTORIZED_METRICS = ("jaccard", "cosine", "dice", "overlap")


def numpy_available() -> bool:
    """Whether the vectorized backend can run at all."""
    return _np is not None


def resolve_kernel_backend(backend: str) -> str:
    """Resolve a :data:`KERNEL_BACKENDS` name to ``vectorized`` or ``scalar``.

    Raises:
        ValueError: For an unknown backend, or for an *explicit*
            ``vectorized`` request when numpy is not importable (``auto``
            silently degrades instead).
    """
    if backend not in KERNEL_BACKENDS:
        raise ValueError(
            f"kernel backend must be one of {KERNEL_BACKENDS}, got {backend!r}"
        )
    if backend == "auto":
        return "vectorized" if numpy_available() else "scalar"
    if backend == "vectorized" and not numpy_available():
        raise ValueError(
            "kernel backend 'vectorized' requires numpy, which is not "
            "importable in this environment (use 'auto' or 'scalar')"
        )
    return backend


class TokenVocabulary:
    """Interning table: token string -> dense integer *rank*.

    Ranks follow the prefix join's canonical total order — ascending
    document frequency, ties broken lexicographically (see
    :func:`repro.pruning.prefix_join.canonical_token_order`) — so sorting a
    record's rank array ascending reproduces exactly the canonically
    ordered token list the scalar join builds, and ``ranks < size`` prefixes
    coincide token-for-token.
    """

    def __init__(self, rank_of: Dict[str, int]):
        self.rank_of = rank_of

    def __len__(self) -> int:
        return len(self.rank_of)

    def __contains__(self, token: str) -> bool:
        return token in self.rank_of

    @staticmethod
    def build(sets: Iterable[FrozenSet[str]]) -> "TokenVocabulary":
        """Intern every token of ``sets`` in canonical (df, token) order."""
        frequency: Counter = Counter()
        for token_set in sets:
            frequency.update(token_set)
        # Sorting (count, token) tuples directly avoids a per-element key
        # call; tuple order == the canonical (df, token) order.
        ordered = sorted((count, token) for token, count in frequency.items())
        return TokenVocabulary(
            {token: rank for rank, (_, token) in enumerate(ordered)}
        )

    def encode(self, token_set: FrozenSet[str]) -> "_np.ndarray":
        """One set as a sorted (= canonically ordered) ``int32`` rank array."""
        if _np is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("numpy is required to encode token sets")
        ranks = _np.fromiter(
            (self.rank_of[token] for token in token_set),
            dtype=_np.int32, count=len(token_set),
        )
        ranks.sort()
        return ranks


class EncodedRecords:
    """A record population as one flat CSR token-rank store.

    Attributes:
        ids: ``int64[n]`` record ids, in the caller's row order.
        flat: ``int32[total]`` concatenated per-record rank arrays, each
            sorted ascending (canonical order).
        starts: ``int64[n]`` offset of each row's slice in ``flat``.
        counts: ``int64[n]`` per-row set sizes.
        vocab_size: Number of distinct tokens (key-packing modulus).
    """

    def __init__(self, ids, flat, starts, counts, vocab_size: int):
        self.ids = ids
        self.flat = flat
        self.starts = starts
        self.counts = counts
        self.vocab_size = int(vocab_size)

    def __len__(self) -> int:
        return len(self.ids)

    @staticmethod
    def from_sets(
        sets: Mapping[int, FrozenSet[str]],
        ids: Sequence[int],
        vocab: Optional[TokenVocabulary] = None,
    ) -> "EncodedRecords":
        """Encode ``sets`` (restricted to ``ids``, in that row order)."""
        if _np is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("numpy is required to build EncodedRecords")
        if vocab is None:
            vocab = TokenVocabulary.build([sets[record_id] for record_id in ids])
        counts = _np.fromiter((len(sets[record_id]) for record_id in ids),
                              dtype=_np.int64, count=len(ids))
        starts = _np.concatenate(([0], _np.cumsum(counts)[:-1])) if len(ids) \
            else _np.zeros(0, dtype=_np.int64)
        total = int(counts.sum())
        rank_of = vocab.rank_of
        # Bulk-intern every token, then sort within rows in one pass by
        # packing (row, rank) into a single sortable key — far cheaper
        # than a per-record fromiter + sort loop.
        flat64 = _np.fromiter(
            (rank_of[token] for record_id in ids for token in sets[record_id]),
            dtype=_np.int64, count=total,
        )
        vocab_size = max(len(vocab), 1)
        row_of = _np.repeat(_np.arange(len(ids), dtype=_np.int64), counts)
        keys = row_of * _np.int64(vocab_size) + flat64
        keys.sort()
        flat = (keys % _np.int64(vocab_size)).astype(_np.int32)
        return EncodedRecords(
            ids=_np.asarray(ids, dtype=_np.int64),
            flat=flat, starts=starts.astype(_np.int64), counts=counts,
            vocab_size=len(vocab),
        )

    def gather(self, rows: "_np.ndarray") -> Tuple["_np.ndarray", "_np.ndarray"]:
        """Concatenated token ranks of ``rows`` plus each token's local
        row index — the CSR gather feeding the batch intersection.

        Returns ``(tokens, owner)`` where ``owner[i]`` is the position in
        ``rows`` that ``tokens[i]`` came from.
        """
        counts = self.counts[rows]
        total = int(counts.sum())
        owner = _np.repeat(_np.arange(len(rows), dtype=_np.int64), counts)
        if total == 0:
            return self.flat[:0], owner
        # Source indices walk each row's flat slice consecutively, jumping
        # to the next row's start at each boundary.  One cumsum over a
        # mostly-ones step array beats the repeat/arange formulation —
        # ragged repeats are the slow primitive at this volume.  Zero-count
        # rows contribute no boundary, so drop them before differencing.
        nz = _np.flatnonzero(counts)
        row_starts = self.starts[rows[nz]]
        sizes = counts[nz]
        steps = _np.ones(total, dtype=_np.int64)
        steps[0] = row_starts[0]
        if len(nz) > 1:
            boundaries = _np.cumsum(sizes)[:-1]
            steps[boundaries] = row_starts[1:] - row_starts[:-1] - (sizes[:-1] - 1)
        src = _np.cumsum(steps)
        return self.flat[src], owner


def batch_intersection_sizes(
    encoded: EncodedRecords,
    left_rows: "_np.ndarray",
    right_rows: "_np.ndarray",
) -> "_np.ndarray":
    """Exact ``|A ∩ B|`` for each row pair, as ``int64[npairs]``.

    Concatenates both rows' (internally duplicate-free) token ranks per
    pair, packs ``(pair, token)`` into one int64 key, sorts, and counts
    adjacent duplicates — a token seen twice under one pair is exactly a
    token present in both sets.
    """
    npairs = len(left_rows)
    if npairs == 0:
        return _np.zeros(0, dtype=_np.int64)
    pair_of = _np.empty(npairs * 2, dtype=_np.int64)
    pair_of[0::2] = _np.arange(npairs, dtype=_np.int64)
    pair_of[1::2] = pair_of[0::2]
    rows = _np.empty(npairs * 2, dtype=left_rows.dtype)
    rows[0::2] = left_rows
    rows[1::2] = right_rows
    tokens, owner = encoded.gather(rows)
    # owner indexes the interleaved rows array; owner // 2 is the pair.
    keys = (owner // 2) * _np.int64(max(encoded.vocab_size, 1)) + tokens
    keys.sort()
    duplicate = keys[1:] == keys[:-1]
    hit_pairs = keys[:-1][duplicate] // _np.int64(max(encoded.vocab_size, 1))
    return _np.bincount(hit_pairs, minlength=npairs).astype(_np.int64)


def batch_set_scores(
    metric: str,
    intersections: "_np.ndarray",
    left_sizes: "_np.ndarray",
    right_sizes: "_np.ndarray",
) -> "_np.ndarray":
    """Batch twin of the scalar set metrics, bit-for-bit.

    Args:
        metric: One of :data:`VECTORIZED_METRICS`.
        intersections: Exact ``|A ∩ B|`` per pair.
        left_sizes: ``|A|`` per pair.
        right_sizes: ``|B|`` per pair.

    Returns:
        ``float64[npairs]`` scores, including the scalar empty-set
        conventions (1.0 for empty vs empty, 0.0 for empty vs non-empty).
    """
    if metric not in VECTORIZED_METRICS:
        raise ValueError(
            f"metric must be one of {VECTORIZED_METRICS}, got {metric!r}"
        )
    inter = intersections.astype(_np.float64)
    size_a = left_sizes.astype(_np.int64)
    size_b = right_sizes.astype(_np.int64)
    both_empty = (size_a == 0) & (size_b == 0)
    one_empty = ((size_a == 0) | (size_b == 0)) & ~both_empty
    # Guard the denominators so fully-empty pairs never divide by zero;
    # their scores are overwritten by the convention masks below.
    if metric == "jaccard":
        union = size_a + size_b - intersections
        scores = inter / _np.maximum(union, 1)
    elif metric == "cosine":
        # Scalar: intersection / (len_a * len_b) ** 0.5.  Both CPython's
        # float ** 0.5 and numpy's power call the platform's correctly
        # rounded pow/sqrt, so the doubles agree bit-for-bit.
        product = (size_a * size_b).astype(_np.float64)
        scores = inter / _np.power(_np.maximum(product, 1.0), 0.5)
    elif metric == "dice":
        scores = 2.0 * inter / _np.maximum(size_a + size_b, 1)
    else:  # overlap
        scores = inter / _np.maximum(_np.minimum(size_a, size_b), 1)
    scores[both_empty] = 1.0
    scores[one_empty] = 0.0
    return scores


def score_encoded_pairs(
    metric: str,
    encoded: EncodedRecords,
    left_rows: "_np.ndarray",
    right_rows: "_np.ndarray",
) -> "_np.ndarray":
    """Clamped batch scores for row pairs of one :class:`EncodedRecords`.

    The [0, 1] clamp mirrors the scalar verification loop's
    ``min(1.0, max(0.0, score))``; for these metrics it never changes a
    value (scores are already in range) so the clamp is equality-safe.
    """
    intersections = batch_intersection_sizes(encoded, left_rows, right_rows)
    scores = batch_set_scores(
        metric, intersections,
        encoded.counts[left_rows], encoded.counts[right_rows],
    )
    return _np.clip(scores, 0.0, 1.0)


def batch_text_scores(
    texts_a: Sequence[str],
    texts_b: Sequence[str],
    metric: str = "jaccard",
    domain: str = "word",
    q: int = 3,
) -> List[float]:
    """Batch-score aligned text pairs; the test-facing convenience API.

    Bit-for-bit equivalent to calling the scalar text metric per pair —
    ``token_jaccard`` (``metric="jaccard", domain="word"``),
    ``qgram_jaccard`` (``domain="qgram"``), ``token_cosine``
    (``metric="cosine"``), and so on.

    Args:
        texts_a: Left texts.
        texts_b: Right texts (same length).
        metric: One of :data:`VECTORIZED_METRICS`.
        domain: ``"word"`` (word tokens) or ``"qgram"`` (padded q-grams).
        q: Gram length for the q-gram domain.
    """
    if _np is None:
        raise RuntimeError("numpy is required for batch_text_scores")
    if len(texts_a) != len(texts_b):
        raise ValueError(
            f"aligned text batches required: {len(texts_a)} vs {len(texts_b)}"
        )
    from repro.similarity.tokenize import qgram_set, token_set

    if domain == "word":
        set_of = token_set
    elif domain == "qgram":
        def set_of(text: str) -> FrozenSet[str]:
            return qgram_set(text, q=q)
    else:
        raise ValueError(f"domain must be 'word' or 'qgram', got {domain!r}")

    npairs = len(texts_a)
    sets: Dict[int, FrozenSet[str]] = {}
    for index in range(npairs):
        sets[2 * index] = set_of(texts_a[index])
        sets[2 * index + 1] = set_of(texts_b[index])
    encoded = EncodedRecords.from_sets(sets, ids=list(range(2 * npairs)))
    left = _np.arange(npairs, dtype=_np.int64) * 2
    right = left + 1
    intersections = batch_intersection_sizes(encoded, left, right)
    scores = batch_set_scores(
        metric, intersections, encoded.counts[left], encoded.counts[right]
    )
    return [float(score) for score in scores]
