"""Jaccard similarity — the machine-based metric used by the paper's pruning
phase (Section 6.1: "we compute the machine-based similarity score for each
record pair using the Jaccard similarity metric ... τ = 0.3").
"""

from __future__ import annotations

from typing import FrozenSet

from repro.similarity.tokenize import qgram_set, token_set


def jaccard(set_a: FrozenSet[str], set_b: FrozenSet[str]) -> float:
    """Plain Jaccard coefficient of two sets, in [0, 1].

    Empty-vs-empty is defined as 1.0 (identical); empty-vs-nonempty is 0.0.
    """
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    intersection = len(set_a & set_b)
    union = len(set_a) + len(set_b) - intersection
    return intersection / union


def token_jaccard(text_a: str, text_b: str) -> float:
    """Jaccard similarity over word tokens."""
    return jaccard(token_set(text_a), token_set(text_b))


def qgram_jaccard(text_a: str, text_b: str, q: int = 3) -> float:
    """Jaccard similarity over padded character q-grams."""
    return jaccard(qgram_set(text_a, q=q), qgram_set(text_b, q=q))
