"""TF-IDF cosine similarity over word tokens — the token-based metric class
(paper reference [12]).  The vectorizer is corpus-level: build it once over
all records, then score pairs cheaply.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List, Mapping, Sequence

from repro.similarity.tokenize import word_tokens


class TfIdfVectorizer:
    """Fit IDF weights on a corpus, then map texts to sparse TF-IDF vectors."""

    def __init__(self) -> None:
        self._idf: Dict[str, float] = {}
        self._num_docs = 0

    @property
    def vocabulary_size(self) -> int:
        return len(self._idf)

    def fit(self, texts: Iterable[str]) -> "TfIdfVectorizer":
        """Compute smoothed IDF weights: ``log((1 + N) / (1 + df)) + 1``."""
        return self.fit_tokens(word_tokens(text) for text in texts)

    def fit_tokens(
        self, token_lists: Iterable[Sequence[str]]
    ) -> "TfIdfVectorizer":
        """:meth:`fit` from pre-tokenized documents (e.g. cached
        :class:`~repro.similarity.views.RecordView` tokens), skipping the
        per-document re-tokenization."""
        document_frequency: Counter = Counter()
        num_docs = 0
        for tokens in token_lists:
            num_docs += 1
            document_frequency.update(set(tokens))
        self._num_docs = num_docs
        self._idf = {
            token: math.log((1 + num_docs) / (1 + df)) + 1.0
            for token, df in document_frequency.items()
        }
        return self

    def transform(self, text: str) -> Dict[str, float]:
        """L2-normalized sparse TF-IDF vector of ``text``.

        Tokens unseen during :meth:`fit` get the maximum IDF (treated as df=0).
        """
        return self.transform_tokens(word_tokens(text))

    def transform_tokens(self, tokens: Sequence[str]) -> Dict[str, float]:
        """:meth:`transform` from a pre-tokenized document."""
        if self._num_docs == 0:
            raise RuntimeError("vectorizer must be fit before transform")
        counts = Counter(tokens)
        default_idf = math.log(1 + self._num_docs) + 1.0
        vector = {
            token: count * self._idf.get(token, default_idf)
            for token, count in counts.items()
        }
        norm = math.sqrt(sum(weight * weight for weight in vector.values()))
        if norm == 0.0:
            return {}
        return {token: weight / norm for token, weight in vector.items()}


def sparse_cosine(vec_a: Mapping[str, float], vec_b: Mapping[str, float]) -> float:
    """Dot product of two sparse vectors (cosine if both are L2-normalized)."""
    if len(vec_a) > len(vec_b):
        vec_a, vec_b = vec_b, vec_a
    return sum(weight * vec_b.get(token, 0.0) for token, weight in vec_a.items())


def tfidf_cosine(texts: List[str], text_a: str, text_b: str) -> float:
    """One-shot TF-IDF cosine of two texts against a given corpus."""
    vectorizer = TfIdfVectorizer().fit(texts)
    return sparse_cosine(vectorizer.transform(text_a), vectorizer.transform(text_b))
