"""Levenshtein (edit-distance) similarity — a character-based metric
(paper reference [32]).  Pure-Python dynamic programming with the usual
two-row space optimization.
"""

from __future__ import annotations


def levenshtein_distance(a: str, b: str) -> int:
    """Minimum number of single-character insertions, deletions, and
    substitutions transforming ``a`` into ``b``.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Keep the shorter string as the row for smaller memory.
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(
                    previous[j] + 1,        # deletion
                    current[j - 1] + 1,     # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """Normalized edit similarity ``1 - dist / max(len)``, in [0, 1]."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein_distance(a, b) / longest


def damerau_distance(a: str, b: str) -> int:
    """Optimal-string-alignment distance: Levenshtein plus adjacent
    transpositions (each substring edited at most once).
    """
    len_a, len_b = len(a), len(b)
    if len_a == 0:
        return len_b
    if len_b == 0:
        return len_a
    table = [[0] * (len_b + 1) for _ in range(len_a + 1)]
    for i in range(len_a + 1):
        table[i][0] = i
    for j in range(len_b + 1):
        table[0][j] = j
    for i in range(1, len_a + 1):
        for j in range(1, len_b + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            table[i][j] = min(
                table[i - 1][j] + 1,
                table[i][j - 1] + 1,
                table[i - 1][j - 1] + cost,
            )
            if (
                i > 1
                and j > 1
                and a[i - 1] == b[j - 2]
                and a[i - 2] == b[j - 1]
            ):
                table[i][j] = min(table[i][j], table[i - 2][j - 2] + 1)
    return table[len_a][len_b]
