"""Cached per-record token views shared by the token-based metrics.

The pruning hot path scores tens of thousands of pairs; without a view
cache every ``similarity(a, b)`` call re-runs ``word_tokens`` on both raw
texts.  A :class:`RecordViewCache` tokenizes and normalizes each record
exactly once — Jaccard, TF-IDF cosine, Soft TF-IDF, Dice/overlap and the
prefix-filtered join all read the same cached token list / frozenset
instead of re-tokenizing per pair.

Views are keyed by ``record_id``.  A cache belongs to one record set; mixing
records from different datasets (same id, different text) is a bug the cache
detects and reports rather than silently mis-scoring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.datasets.schema import Record
from repro.similarity.tokenize import qgrams, word_tokens


@dataclass
class RecordView:
    """Everything the token-based metrics need about one record, computed once.

    Attributes:
        record_id: The record's id (cache key).
        text: The raw text the view was computed from.
        tokens: Word tokens in document order (with multiplicity) — feeds
            TF-IDF term counts and Soft TF-IDF alignment.
        token_set: The deduplicated token frozenset — feeds Jaccard, Dice,
            overlap, set-cosine and the prefix-filtered join.
    """

    record_id: int
    text: str
    tokens: Tuple[str, ...]
    token_set: FrozenSet[str]
    _qgram_sets: Dict[int, FrozenSet[str]] = field(default_factory=dict,
                                                   repr=False)

    @staticmethod
    def of(record: Record) -> "RecordView":
        tokens = tuple(word_tokens(record.text))
        return RecordView(
            record_id=record.record_id,
            text=record.text,
            tokens=tokens,
            token_set=frozenset(tokens),
        )

    def qgram_set(self, q: int = 3) -> FrozenSet[str]:
        """Padded character q-gram set, computed lazily and cached per q."""
        cached = self._qgram_sets.get(q)
        if cached is None:
            cached = frozenset(qgrams(self.text, q=q))
            self._qgram_sets[q] = cached
        return cached


class RecordViewCache:
    """Lazy ``record_id -> RecordView`` cache (one per record set).

    >>> cache = RecordViewCache()
    >>> view = cache.view(Record(record_id=0, text="Golden Cafe"))
    >>> sorted(view.token_set)
    ['cafe', 'golden']
    """

    def __init__(self, records: Iterable[Record] = ()) -> None:
        self._views: Dict[int, RecordView] = {}
        for record in records:
            self.view(record)

    def __len__(self) -> int:
        return len(self._views)

    def __contains__(self, record_id: int) -> bool:
        return record_id in self._views

    def view(self, record: Record) -> RecordView:
        """The (possibly freshly computed) view of ``record``."""
        cached = self._views.get(record.record_id)
        if cached is not None:
            if cached.text != record.text:
                raise ValueError(
                    f"record id {record.record_id} seen with two different "
                    "texts; a RecordViewCache serves exactly one record set"
                )
            return cached
        fresh = RecordView.of(record)
        self._views[record.record_id] = fresh
        return fresh

    def get(self, record_id: int) -> RecordView:
        """Look up a view by id; raises ``KeyError`` if never populated."""
        return self._views[record_id]

    def tokens(self, record: Record) -> Tuple[str, ...]:
        """Cached word tokens (with multiplicity) of a record."""
        return self.view(record).tokens

    def token_set(self, record: Record) -> FrozenSet[str]:
        """Cached word-token frozenset of a record."""
        return self.view(record).token_set

    def qgram_set(self, record: Record, q: int = 3) -> FrozenSet[str]:
        """Cached padded q-gram frozenset of a record."""
        return self.view(record).qgram_set(q)

    def token_lists(self, records: Iterable[Record]) -> List[Tuple[str, ...]]:
        """Token lists for many records (e.g. to fit a TF-IDF vectorizer)."""
        return [self.tokens(record) for record in records]
