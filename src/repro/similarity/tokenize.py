"""Tokenizers shared by the token-based similarity metrics."""

from __future__ import annotations

import re
from typing import FrozenSet, List, Tuple

_WORD_RE = re.compile(r"[a-z0-9]+")


def normalize(text: str) -> str:
    """Lower-case and collapse whitespace; the common preprocessing step."""
    return " ".join(text.lower().split())


def word_tokens(text: str) -> List[str]:
    """Split text into lower-case alphanumeric word tokens.

    >>> word_tokens("Chevrolet, Chevy & Chevron!")
    ['chevrolet', 'chevy', 'chevron']
    """
    return _WORD_RE.findall(text.lower())


def token_set(text: str) -> FrozenSet[str]:
    """The set of word tokens of ``text`` (order and multiplicity dropped)."""
    return frozenset(word_tokens(text))


def qgrams(text: str, q: int = 3, pad: bool = True) -> List[str]:
    """Character q-grams of the normalized text.

    Args:
        text: Input string.
        q: Gram length; must be >= 1.
        pad: If true, pad with ``q - 1`` sentinel characters on both sides so
            that boundary characters participate in ``q`` grams each.

    >>> qgrams("ab", q=2, pad=False)
    ['ab']
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    base = normalize(text)
    if not base:
        return []
    if pad:
        sentinel = "\x01" * (q - 1)
        base = f"{sentinel}{base}{sentinel}"
    if len(base) < q:
        return [base] if base else []
    return [base[i:i + q] for i in range(len(base) - q + 1)]


def qgram_set(text: str, q: int = 3) -> FrozenSet[str]:
    """The set of padded character q-grams of ``text``."""
    return frozenset(qgrams(text, q=q))


def ngram_shingles(tokens: List[str], n: int = 2) -> List[Tuple[str, ...]]:
    """Word-level n-gram shingles over a token list."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if len(tokens) < n:
        return [tuple(tokens)] if tokens else []
    return [tuple(tokens[i:i + n]) for i in range(len(tokens) - n + 1)]
