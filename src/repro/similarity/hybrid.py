"""Hybrid and set-overlap similarity metrics.

Complements the core metrics with the remaining classics of the dedup
survey the paper cites [17]: Monge-Elkan (token-level maximum alignment
under an inner character metric), the overlap coefficient, and the
Sørensen-Dice coefficient.
"""

from __future__ import annotations

from typing import Callable, FrozenSet

from repro.similarity.jaro import jaro_winkler_similarity
from repro.similarity.tokenize import token_set, word_tokens

TextSimilarity = Callable[[str, str], float]


def overlap_coefficient(set_a: FrozenSet[str], set_b: FrozenSet[str]) -> float:
    """``|A ∩ B| / min(|A|, |B|)`` — 1.0 when one set contains the other."""
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / min(len(set_a), len(set_b))


def ochiai_coefficient(set_a: FrozenSet[str], set_b: FrozenSet[str]) -> float:
    """Set cosine (Ochiai): ``|A ∩ B| / sqrt(|A| * |B|)``.

    The unweighted counterpart of TF-IDF cosine; the threshold algebra of the
    prefix-filtered similarity join applies to it directly.
    """
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / (len(set_a) * len(set_b)) ** 0.5


def dice_coefficient(set_a: FrozenSet[str], set_b: FrozenSet[str]) -> float:
    """Sørensen-Dice: ``2|A ∩ B| / (|A| + |B|)``."""
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return 2.0 * len(set_a & set_b) / (len(set_a) + len(set_b))


def token_overlap(text_a: str, text_b: str) -> float:
    """Overlap coefficient over word tokens."""
    return overlap_coefficient(token_set(text_a), token_set(text_b))


def token_dice(text_a: str, text_b: str) -> float:
    """Dice coefficient over word tokens."""
    return dice_coefficient(token_set(text_a), token_set(text_b))


def token_cosine(text_a: str, text_b: str) -> float:
    """Set cosine (Ochiai) over word tokens."""
    return ochiai_coefficient(token_set(text_a), token_set(text_b))


def monge_elkan(
    text_a: str,
    text_b: str,
    inner: TextSimilarity = jaro_winkler_similarity,
    symmetric: bool = True,
) -> float:
    """Monge-Elkan similarity: each token of ``text_a`` is aligned to its
    best-matching token of ``text_b`` under the ``inner`` metric, and the
    maxima are averaged.

    The raw measure is asymmetric; ``symmetric=True`` (default) averages
    both directions, the common variant in dedup pipelines.

    >>> round(monge_elkan("paul johnson", "johson paule"), 2) > 0.8
    True
    """
    def directed(source: str, target: str) -> float:
        source_tokens = word_tokens(source)
        target_tokens = word_tokens(target)
        if not source_tokens and not target_tokens:
            return 1.0
        if not source_tokens or not target_tokens:
            return 0.0
        total = 0.0
        for token in source_tokens:
            total += max(inner(token, other) for other in target_tokens)
        return total / len(source_tokens)

    forward = directed(text_a, text_b)
    if not symmetric:
        return forward
    return (forward + directed(text_b, text_a)) / 2.0
