"""Field-aware record similarity.

Structured records (restaurant name / street / city, product brand / model)
deserve per-field metrics: edit distance suits names, exact match suits
cities, token overlap suits free-text descriptions.  A
:class:`FieldSimilarityConfig` assigns one weighted metric per field;
records missing a field fall back to the whole-text metric for that weight
share, so mixed structured/unstructured datasets still score sensibly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

from repro.datasets.schema import Record
from repro.similarity.composite import SimilarityFunction

TextSimilarity = Callable[[str, str], float]


@dataclass(frozen=True)
class FieldRule:
    """One field's contribution to record similarity.

    Attributes:
        field: Structured field name.
        metric: Text similarity applied to the two field values.
        weight: Relative weight (> 0).
    """

    field: str
    metric: TextSimilarity
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be > 0, got {self.weight}")


class FieldSimilarityConfig:
    """Weighted per-field record similarity.

    Args:
        rules: The per-field rules; weights are normalized to sum to 1.
        fallback: Whole-text metric used for a rule whenever either record
            lacks that field.
    """

    def __init__(self, rules: Sequence[FieldRule],
                 fallback: TextSimilarity):
        if not rules:
            raise ValueError("need at least one field rule")
        self._rules: Tuple[FieldRule, ...] = tuple(rules)
        self._fallback = fallback
        self._total_weight = sum(rule.weight for rule in rules)

    def score(self, record_a: Record, record_b: Record) -> float:
        """The weighted field similarity of two records, in [0, 1]."""
        total = 0.0
        for rule in self._rules:
            value_a = record_a.field(rule.field)
            value_b = record_b.field(rule.field)
            if value_a and value_b:
                similarity = rule.metric(value_a, value_b)
            else:
                similarity = self._fallback(record_a.text, record_b.text)
            total += rule.weight * min(1.0, max(0.0, similarity))
        return total / self._total_weight

    def as_similarity_function(self, name: str = "fields") -> SimilarityFunction:
        """Wrap as a cached :class:`SimilarityFunction` for the pruning
        phase.  (The cache keys on record ids, so the wrapper carries the
        records through unchanged.)"""
        config = self

        class _FieldSimilarity(SimilarityFunction):
            def __init__(self) -> None:
                super().__init__(name, lambda a, b: 0.0)  # text fn unused

            def __call__(self, record_a: Record, record_b: Record) -> float:
                from repro.datasets.schema import canonical_pair
                key = canonical_pair(record_a.record_id, record_b.record_id)
                cached = self._cache.get(key)
                if cached is not None:
                    return cached
                value = config.score(record_a, record_b)
                self._cache[key] = value
                return value

        return _FieldSimilarity()


def exact_match(text_a: str, text_b: str) -> float:
    """1.0 iff the normalized strings are equal — for categorical fields."""
    return 1.0 if text_a.strip().lower() == text_b.strip().lower() else 0.0
