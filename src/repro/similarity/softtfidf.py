"""Soft TF-IDF (Cohen, Ravikumar & Fienberg): the classic hybrid of
corpus-level token weighting and character-level fuzzy token matching.

Plain TF-IDF cosine misses ``johnson`` vs ``johson``; plain Jaro-Winkler
over whole strings ignores token importance.  Soft TF-IDF matches each
token of one record to its most similar token of the other (above a
similarity floor θ) and accumulates the product of the two tokens' TF-IDF
weights scaled by their similarity.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Mapping, Optional, Sequence

from repro.datasets.schema import Record
from repro.similarity.cosine import TfIdfVectorizer
from repro.similarity.jaro import jaro_winkler_similarity
from repro.similarity.views import RecordViewCache

TextSimilarity = Callable[[str, str], float]


class SoftTfIdf:
    """Corpus-fitted Soft TF-IDF scorer.

    Args:
        corpus: Texts to fit IDF weights on (typically all record texts).
        inner: Character-level token similarity (default Jaro-Winkler).
        theta: Similarity floor below which tokens do not match
            (the literature's usual 0.9).
    """

    def __init__(self, corpus: Iterable[str],
                 inner: TextSimilarity = jaro_winkler_similarity,
                 theta: float = 0.9):
        if not 0.0 < theta <= 1.0:
            raise ValueError(f"theta must be in (0, 1], got {theta}")
        self._vectorizer = TfIdfVectorizer().fit(corpus)
        self._inner = inner
        self._theta = theta
        self._views: Optional[RecordViewCache] = None
        self._vector_cache: Dict[int, Mapping[str, float]] = {}

    @staticmethod
    def from_records(records: Sequence[Record],
                     views: Optional[RecordViewCache] = None,
                     inner: TextSimilarity = jaro_winkler_similarity,
                     theta: float = 0.9) -> "SoftTfIdf":
        """Fit on a record set through a shared :class:`RecordViewCache`.

        Every record is tokenized exactly once (the cached view's tokens fit
        the vectorizer), and :meth:`record_similarity` reuses one TF-IDF
        vector per record across all pairs it participates in.
        """
        views = views if views is not None else RecordViewCache()
        scorer = SoftTfIdf.__new__(SoftTfIdf)
        if not 0.0 < theta <= 1.0:
            raise ValueError(f"theta must be in (0, 1], got {theta}")
        scorer._vectorizer = TfIdfVectorizer().fit_tokens(
            views.tokens(record) for record in records
        )
        scorer._inner = inner
        scorer._theta = theta
        scorer._views = views
        scorer._vector_cache = {}
        return scorer

    def __call__(self, text_a: str, text_b: str) -> float:
        """Soft TF-IDF similarity in [0, 1] (symmetrized)."""
        vector_a = self._vectorizer.transform(text_a)
        vector_b = self._vectorizer.transform(text_b)
        return self._symmetric(vector_a, vector_b)

    def record_similarity(self, record_a: Record, record_b: Record) -> float:
        """Similarity of two records via cached per-record TF-IDF vectors.

        Requires construction through :meth:`from_records` (or an attached
        view cache); falls back to the text path otherwise.
        """
        if self._views is None:
            return self(record_a.text, record_b.text)
        return self._symmetric(self._record_vector(record_a),
                               self._record_vector(record_b))

    def _record_vector(self, record: Record) -> Mapping[str, float]:
        assert self._views is not None
        cached = self._vector_cache.get(record.record_id)
        if cached is None:
            cached = self._vectorizer.transform_tokens(
                self._views.tokens(record)
            )
            self._vector_cache[record.record_id] = cached
        return cached

    def _symmetric(self, vector_a: Mapping[str, float],
                   vector_b: Mapping[str, float]) -> float:
        return (self._directed_vectors(vector_a, vector_b)
                + self._directed_vectors(vector_b, vector_a)) / 2.0

    def _directed_vectors(self, vector_source: Mapping[str, float],
                          vector_target: Mapping[str, float]) -> float:
        if not vector_source or not vector_target:
            return 1.0 if not vector_source and not vector_target else 0.0
        total = 0.0
        for token_s, weight_s in vector_source.items():
            best_similarity = 0.0
            best_token = None
            for token_t in vector_target:
                similarity = (1.0 if token_s == token_t
                              else self._inner(token_s, token_t))
                if similarity > best_similarity:
                    best_similarity = similarity
                    best_token = token_t
            if best_token is not None and best_similarity >= self._theta:
                total += weight_s * vector_target[best_token] * best_similarity
        return min(1.0, total)
