"""Soft TF-IDF (Cohen, Ravikumar & Fienberg): the classic hybrid of
corpus-level token weighting and character-level fuzzy token matching.

Plain TF-IDF cosine misses ``johnson`` vs ``johson``; plain Jaro-Winkler
over whole strings ignores token importance.  Soft TF-IDF matches each
token of one record to its most similar token of the other (above a
similarity floor θ) and accumulates the product of the two tokens' TF-IDF
weights scaled by their similarity.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.similarity.cosine import TfIdfVectorizer
from repro.similarity.jaro import jaro_winkler_similarity

TextSimilarity = Callable[[str, str], float]


class SoftTfIdf:
    """Corpus-fitted Soft TF-IDF scorer.

    Args:
        corpus: Texts to fit IDF weights on (typically all record texts).
        inner: Character-level token similarity (default Jaro-Winkler).
        theta: Similarity floor below which tokens do not match
            (the literature's usual 0.9).
    """

    def __init__(self, corpus: Iterable[str],
                 inner: TextSimilarity = jaro_winkler_similarity,
                 theta: float = 0.9):
        if not 0.0 < theta <= 1.0:
            raise ValueError(f"theta must be in (0, 1], got {theta}")
        self._vectorizer = TfIdfVectorizer().fit(corpus)
        self._inner = inner
        self._theta = theta

    def __call__(self, text_a: str, text_b: str) -> float:
        """Soft TF-IDF similarity in [0, 1] (symmetrized)."""
        return (self._directed(text_a, text_b)
                + self._directed(text_b, text_a)) / 2.0

    def _directed(self, source: str, target: str) -> float:
        vector_source = self._vectorizer.transform(source)
        vector_target = self._vectorizer.transform(target)
        if not vector_source or not vector_target:
            return 1.0 if not vector_source and not vector_target else 0.0
        total = 0.0
        for token_s, weight_s in vector_source.items():
            best_similarity = 0.0
            best_token = None
            for token_t in vector_target:
                similarity = (1.0 if token_s == token_t
                              else self._inner(token_s, token_t))
                if similarity > best_similarity:
                    best_similarity = similarity
                    best_token = token_t
            if best_token is not None and best_similarity >= self._theta:
                total += weight_s * vector_target[best_token] * best_similarity
        return min(1.0, total)
