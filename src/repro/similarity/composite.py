"""Similarity function objects: the ``f`` of the paper (Section 2.1).

A :class:`SimilarityFunction` maps a pair of :class:`~repro.datasets.schema.Record`
objects to a score in [0, 1].  The pruning phase and several baselines are
parameterized over this interface, so swapping metrics is a one-liner.

Two layers of caching keep the pruning hot path fast:

* a per-pair memo (as in the seed implementation), and
* an optional per-record :class:`~repro.similarity.views.RecordViewCache`
  shared by all token-based metrics, so each record is tokenized exactly
  once instead of once per pair.

Set-overlap metrics additionally carry *set-metric metadata*
(:attr:`SimilarityFunction.set_metric` plus :meth:`SimilarityFunction.set_of`)
that lets the pruning engine route them through the prefix-filtered
similarity join instead of the emit-everything blocking + score loop.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.datasets.schema import Record, canonical_pair
from repro.similarity.hybrid import (
    dice_coefficient,
    ochiai_coefficient,
    overlap_coefficient,
    token_cosine,
    token_dice,
    token_overlap,
)
from repro.similarity.jaccard import jaccard, qgram_jaccard, token_jaccard
from repro.similarity.jaro import jaro_winkler_similarity
from repro.similarity.levenshtein import levenshtein_similarity
from repro.similarity.views import RecordViewCache

TextSimilarity = Callable[[str, str], float]
RecordSimilarity = Callable[[Record, Record], float]

#: Set metrics the prefix-filtered join understands, with their set function.
SET_METRIC_FUNCTIONS: Dict[str, Callable[[FrozenSet[str], FrozenSet[str]], float]] = {
    "jaccard": jaccard,
    "cosine": ochiai_coefficient,
    "dice": dice_coefficient,
    "overlap": overlap_coefficient,
}


class SimilarityFunction:
    """A named record-pair similarity with memoization.

    The cache matters: the pruning phase scores every candidate pair once,
    and the refinement phase's histogram estimator re-reads machine scores
    for the same pairs many times.

    Args:
        name: Metric name (diagnostics, dispatch).
        text_similarity: The raw ``(text, text) -> score`` metric.  Always
            kept — it is the picklable payload the parallel scorer ships to
            worker processes, and the reference implementation the fast
            paths are tested against.
        record_similarity: Optional ``(Record, Record) -> score`` fast path
            (e.g. view-cached set intersection); wins over
            ``text_similarity`` when present.
        set_metric: One of :data:`SET_METRIC_FUNCTIONS` when this function
            is a plain set-overlap metric the prefix join can accelerate;
            ``None`` otherwise.
        set_of: For set metrics, maps a record to the exact frozenset the
            metric compares (cached word tokens or q-grams).
        set_domain: What the compared sets contain — ``"word"`` for word
            tokens (the token-blocking domain) or e.g. ``"qgram3"``.  The
            pruning engine only substitutes the prefix join for token
            blocking when the domains agree.
    """

    def __init__(
        self,
        name: str,
        text_similarity: TextSimilarity,
        record_similarity: Optional[RecordSimilarity] = None,
        set_metric: Optional[str] = None,
        set_of: Optional[Callable[[Record], FrozenSet[str]]] = None,
        set_domain: Optional[str] = None,
    ):
        if set_metric is not None and set_metric not in SET_METRIC_FUNCTIONS:
            raise ValueError(f"unknown set metric {set_metric!r}")
        if set_metric is not None and set_of is None:
            raise ValueError("set_metric requires a set_of accessor")
        self.name = name
        self.set_metric = set_metric
        self.set_domain = set_domain if set_metric is not None else None
        self._set_of = set_of
        self._text_similarity = text_similarity
        self._record_similarity = record_similarity
        self._cache: Dict[Tuple[int, int], float] = {}

    def __call__(self, record_a: Record, record_b: Record) -> float:
        key = canonical_pair(record_a.record_id, record_b.record_id)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if self._record_similarity is not None:
            score = self._record_similarity(record_a, record_b)
        else:
            score = self._text_similarity(record_a.text, record_b.text)
        score = min(1.0, max(0.0, score))
        self._cache[key] = score
        return score

    @property
    def text_similarity(self) -> TextSimilarity:
        """The underlying text metric (what the parallel scorer ships)."""
        return self._text_similarity

    def set_of(self, record: Record) -> FrozenSet[str]:
        """The frozenset this (set-)metric compares for ``record``."""
        if self._set_of is None:
            raise ValueError(f"{self.name!r} is not a set metric")
        return self._set_of(record)

    def seed_cache(self, scores: Dict[Tuple[int, int], float]) -> None:
        """Prime the per-pair memo with externally computed scores
        (the fast-path engines feed their results back through this)."""
        self._cache.update(scores)

    def cache_size(self) -> int:
        return len(self._cache)


def _view_set_function(
    name: str,
    text_similarity: TextSimilarity,
    set_metric: str,
    views: Optional[RecordViewCache],
) -> SimilarityFunction:
    """A word-token set metric backed by a shared view cache."""
    cache = views if views is not None else RecordViewCache()
    set_function = SET_METRIC_FUNCTIONS[set_metric]

    def from_views(record_a: Record, record_b: Record) -> float:
        return set_function(cache.token_set(record_a), cache.token_set(record_b))

    return SimilarityFunction(
        name,
        text_similarity,
        record_similarity=from_views,
        set_metric=set_metric,
        set_of=cache.token_set,
        set_domain="word",
    )


def jaccard_similarity_function(
    views: Optional[RecordViewCache] = None,
) -> SimilarityFunction:
    """Word-token Jaccard — the paper's pruning-phase metric.

    Args:
        views: Shared record-view cache; a private one is created when
            omitted, so each record is still tokenized exactly once.
    """
    return _view_set_function("jaccard", token_jaccard, "jaccard", views)


def cosine_set_similarity_function(
    views: Optional[RecordViewCache] = None,
) -> SimilarityFunction:
    """Set cosine (Ochiai) over word tokens — prefix-join eligible."""
    return _view_set_function("cosine", token_cosine, "cosine", views)


def dice_similarity_function(
    views: Optional[RecordViewCache] = None,
) -> SimilarityFunction:
    """Sørensen-Dice over word tokens — prefix-join eligible."""
    return _view_set_function("dice", token_dice, "dice", views)


def overlap_similarity_function(
    views: Optional[RecordViewCache] = None,
) -> SimilarityFunction:
    """Overlap coefficient over word tokens.

    Join-eligible, but the overlap coefficient admits no prefix filter (a
    tiny partner set can satisfy any τ), so the join degrades to an indexed
    scan with exact verification.
    """
    return _view_set_function("overlap", token_overlap, "overlap", views)


def qgram_similarity_function(
    q: int = 3,
    views: Optional[RecordViewCache] = None,
) -> SimilarityFunction:
    """Character q-gram Jaccard (view-cached per record)."""
    cache = views if views is not None else RecordViewCache()

    def from_views(record_a: Record, record_b: Record) -> float:
        return jaccard(cache.qgram_set(record_a, q), cache.qgram_set(record_b, q))

    def set_of(record: Record) -> FrozenSet[str]:
        return cache.qgram_set(record, q)

    return SimilarityFunction(
        f"qgram{q}",
        lambda a, b: qgram_jaccard(a, b, q=q),
        record_similarity=from_views,
        set_metric="jaccard",
        set_of=set_of,
        set_domain=f"qgram{q}",
    )


def softtfidf_similarity_function(
    records: Sequence[Record],
    views: Optional[RecordViewCache] = None,
    theta: float = 0.9,
) -> SimilarityFunction:
    """Corpus-fitted Soft TF-IDF over a fixed record set.

    Tokenizes each record once through the shared view cache and reuses one
    TF-IDF vector per record across all pairs.  Not a plain set metric, so
    the pruning engine scores it through the (optionally parallel)
    pair loop rather than the prefix join.
    """
    from repro.similarity.softtfidf import SoftTfIdf

    scorer = SoftTfIdf.from_records(records, views=views, theta=theta)
    return SimilarityFunction(
        "softtfidf",
        scorer,
        record_similarity=scorer.record_similarity,
    )


def levenshtein_similarity_function() -> SimilarityFunction:
    """Normalized edit similarity."""
    return SimilarityFunction("levenshtein", levenshtein_similarity)


def jaro_winkler_similarity_function() -> SimilarityFunction:
    """Jaro-Winkler similarity."""
    return SimilarityFunction("jaro_winkler", jaro_winkler_similarity)


def weighted_similarity_function(
    components: Sequence[Tuple[TextSimilarity, float]],
    name: str = "weighted",
) -> SimilarityFunction:
    """Convex combination of text similarities.

    Args:
        components: ``(metric, weight)`` pairs; weights must be positive and
            are normalized to sum to one.
    """
    if not components:
        raise ValueError("weighted similarity needs at least one component")
    total = sum(weight for _, weight in components)
    if total <= 0:
        raise ValueError("component weights must sum to a positive number")
    normalized: List[Tuple[TextSimilarity, float]] = [
        (metric, weight / total) for metric, weight in components
    ]

    def combined(text_a: str, text_b: str) -> float:
        return sum(weight * metric(text_a, text_b) for metric, weight in normalized)

    return SimilarityFunction(name, combined)
