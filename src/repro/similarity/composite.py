"""Similarity function objects: the ``f`` of the paper (Section 2.1).

A :class:`SimilarityFunction` maps a pair of :class:`~repro.datasets.schema.Record`
objects to a score in [0, 1].  The pruning phase and several baselines are
parameterized over this interface, so swapping metrics is a one-liner.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.datasets.schema import Record, canonical_pair
from repro.similarity.jaccard import qgram_jaccard, token_jaccard
from repro.similarity.jaro import jaro_winkler_similarity
from repro.similarity.levenshtein import levenshtein_similarity

TextSimilarity = Callable[[str, str], float]


class SimilarityFunction:
    """A named record-pair similarity with memoization.

    The cache matters: the pruning phase scores every candidate pair once,
    and the refinement phase's histogram estimator re-reads machine scores
    for the same pairs many times.
    """

    def __init__(self, name: str, text_similarity: TextSimilarity):
        self.name = name
        self._text_similarity = text_similarity
        self._cache: Dict[Tuple[int, int], float] = {}

    def __call__(self, record_a: Record, record_b: Record) -> float:
        key = canonical_pair(record_a.record_id, record_b.record_id)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        score = self._text_similarity(record_a.text, record_b.text)
        score = min(1.0, max(0.0, score))
        self._cache[key] = score
        return score

    def cache_size(self) -> int:
        return len(self._cache)


def jaccard_similarity_function() -> SimilarityFunction:
    """Word-token Jaccard — the paper's pruning-phase metric."""
    return SimilarityFunction("jaccard", token_jaccard)


def qgram_similarity_function(q: int = 3) -> SimilarityFunction:
    """Character q-gram Jaccard."""
    return SimilarityFunction(f"qgram{q}", lambda a, b: qgram_jaccard(a, b, q=q))


def levenshtein_similarity_function() -> SimilarityFunction:
    """Normalized edit similarity."""
    return SimilarityFunction("levenshtein", levenshtein_similarity)


def jaro_winkler_similarity_function() -> SimilarityFunction:
    """Jaro-Winkler similarity."""
    return SimilarityFunction("jaro_winkler", jaro_winkler_similarity)


def weighted_similarity_function(
    components: Sequence[Tuple[TextSimilarity, float]],
    name: str = "weighted",
) -> SimilarityFunction:
    """Convex combination of text similarities.

    Args:
        components: ``(metric, weight)`` pairs; weights must be positive and
            are normalized to sum to one.
    """
    if not components:
        raise ValueError("weighted similarity needs at least one component")
    total = sum(weight for _, weight in components)
    if total <= 0:
        raise ValueError("component weights must sum to a positive number")
    normalized: List[Tuple[TextSimilarity, float]] = [
        (metric, weight / total) for metric, weight in components
    ]

    def combined(text_a: str, text_b: str) -> float:
        return sum(weight * metric(text_a, text_b) for metric, weight in normalized)

    return SimilarityFunction(name, combined)
