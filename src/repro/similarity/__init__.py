"""Machine-based similarity metrics (the ``f`` of the paper).

Includes character-based (Levenshtein, Jaro-Winkler), token-based (Jaccard,
TF-IDF cosine), q-gram, and phonetic (Soundex/Metaphone) metrics, plus the
:class:`SimilarityFunction` record-pair interface used by the pruning phase.
"""

from repro.similarity.cosine import TfIdfVectorizer, sparse_cosine, tfidf_cosine
from repro.similarity.composite import (
    SimilarityFunction,
    jaccard_similarity_function,
    jaro_winkler_similarity_function,
    levenshtein_similarity_function,
    qgram_similarity_function,
    weighted_similarity_function,
)
from repro.similarity.fields import (
    FieldRule,
    FieldSimilarityConfig,
    exact_match,
)
from repro.similarity.hybrid import (
    dice_coefficient,
    monge_elkan,
    overlap_coefficient,
    token_dice,
    token_overlap,
)
from repro.similarity.jaccard import jaccard, qgram_jaccard, token_jaccard
from repro.similarity.jaro import jaro_similarity, jaro_winkler_similarity
from repro.similarity.levenshtein import (
    damerau_distance,
    levenshtein_distance,
    levenshtein_similarity,
)
from repro.similarity.phonetic import metaphone, phonetic_equal, soundex
from repro.similarity.softtfidf import SoftTfIdf
from repro.similarity.tokenize import (
    ngram_shingles,
    normalize,
    qgram_set,
    qgrams,
    token_set,
    word_tokens,
)

__all__ = [
    "FieldRule",
    "FieldSimilarityConfig",
    "SimilarityFunction",
    "SoftTfIdf",
    "TfIdfVectorizer",
    "damerau_distance",
    "exact_match",
    "dice_coefficient",
    "jaccard",
    "jaccard_similarity_function",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "jaro_winkler_similarity_function",
    "levenshtein_distance",
    "levenshtein_similarity",
    "levenshtein_similarity_function",
    "metaphone",
    "monge_elkan",
    "ngram_shingles",
    "normalize",
    "overlap_coefficient",
    "phonetic_equal",
    "qgram_jaccard",
    "qgram_set",
    "qgram_similarity_function",
    "qgrams",
    "soundex",
    "sparse_cosine",
    "tfidf_cosine",
    "token_dice",
    "token_jaccard",
    "token_overlap",
    "token_set",
    "weighted_similarity_function",
    "word_tokens",
]
