"""Machine-based similarity metrics (the ``f`` of the paper).

Includes character-based (Levenshtein, Jaro-Winkler), token-based (Jaccard,
TF-IDF cosine), q-gram, and phonetic (Soundex/Metaphone) metrics, plus the
:class:`SimilarityFunction` record-pair interface used by the pruning phase.
"""

from repro.similarity.cosine import TfIdfVectorizer, sparse_cosine, tfidf_cosine
from repro.similarity.composite import (
    SET_METRIC_FUNCTIONS,
    SimilarityFunction,
    cosine_set_similarity_function,
    dice_similarity_function,
    jaccard_similarity_function,
    jaro_winkler_similarity_function,
    levenshtein_similarity_function,
    overlap_similarity_function,
    qgram_similarity_function,
    softtfidf_similarity_function,
    weighted_similarity_function,
)
from repro.similarity.fields import (
    FieldRule,
    FieldSimilarityConfig,
    exact_match,
)
from repro.similarity.hybrid import (
    dice_coefficient,
    monge_elkan,
    ochiai_coefficient,
    overlap_coefficient,
    token_cosine,
    token_dice,
    token_overlap,
)
from repro.similarity.jaccard import jaccard, qgram_jaccard, token_jaccard
from repro.similarity.jaro import jaro_similarity, jaro_winkler_similarity
from repro.similarity.levenshtein import (
    damerau_distance,
    levenshtein_distance,
    levenshtein_similarity,
)
from repro.similarity.phonetic import metaphone, phonetic_equal, soundex
from repro.similarity.softtfidf import SoftTfIdf
from repro.similarity.views import RecordView, RecordViewCache
from repro.similarity.tokenize import (
    ngram_shingles,
    normalize,
    qgram_set,
    qgrams,
    token_set,
    word_tokens,
)

__all__ = [
    "FieldRule",
    "FieldSimilarityConfig",
    "RecordView",
    "RecordViewCache",
    "SET_METRIC_FUNCTIONS",
    "SimilarityFunction",
    "SoftTfIdf",
    "TfIdfVectorizer",
    "cosine_set_similarity_function",
    "damerau_distance",
    "dice_similarity_function",
    "exact_match",
    "dice_coefficient",
    "jaccard",
    "jaccard_similarity_function",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "jaro_winkler_similarity_function",
    "levenshtein_distance",
    "levenshtein_similarity",
    "levenshtein_similarity_function",
    "metaphone",
    "monge_elkan",
    "ngram_shingles",
    "normalize",
    "ochiai_coefficient",
    "overlap_coefficient",
    "overlap_similarity_function",
    "phonetic_equal",
    "qgram_jaccard",
    "qgram_set",
    "qgram_similarity_function",
    "qgrams",
    "softtfidf_similarity_function",
    "soundex",
    "sparse_cosine",
    "tfidf_cosine",
    "token_cosine",
    "token_dice",
    "token_jaccard",
    "token_overlap",
    "token_set",
    "weighted_similarity_function",
    "word_tokens",
]
