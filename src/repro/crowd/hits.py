"""HIT packing utilities.

On AMT, record pairs are packed into HITs (the paper uses 20 pairs per HIT in
the 3-worker setting and 10 in the 5-worker setting, at 2 cents per HIT per
worker).  :func:`pack_hits` reproduces that batching; it is used by the cost
model and by examples that want to display a worker's-eye view of the tasks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

Pair = Tuple[int, int]


@dataclass(frozen=True)
class Hit:
    """One Human Intelligence Task: a page of record pairs shown to a worker."""

    hit_id: int
    pairs: Tuple[Pair, ...]

    def __len__(self) -> int:
        return len(self.pairs)


def pack_hits(pairs: Sequence[Pair], pairs_per_hit: int = 20,
              start_id: int = 0) -> List[Hit]:
    """Greedily pack pairs into HITs of at most ``pairs_per_hit`` pairs.

    >>> [len(h) for h in pack_hits([(0, 1), (1, 2), (2, 3)], pairs_per_hit=2)]
    [2, 1]
    """
    if pairs_per_hit < 1:
        raise ValueError(f"pairs_per_hit must be >= 1, got {pairs_per_hit}")
    hits: List[Hit] = []
    for offset, start in enumerate(range(0, len(pairs), pairs_per_hit)):
        chunk = tuple(pairs[start:start + pairs_per_hit])
        hits.append(Hit(hit_id=start_id + offset, pairs=chunk))
    return hits


def num_hits(num_pairs: int, pairs_per_hit: int = 20) -> int:
    """Number of HITs needed for ``num_pairs`` pairs."""
    if num_pairs < 0:
        raise ValueError(f"num_pairs must be >= 0, got {num_pairs}")
    if pairs_per_hit < 1:
        raise ValueError(f"pairs_per_hit must be >= 1, got {pairs_per_hit}")
    return math.ceil(num_pairs / pairs_per_hit)


def monetary_cost_cents(num_pairs: int, pairs_per_hit: int = 20,
                        num_workers: int = 3,
                        reward_cents_per_hit: float = 2.0) -> float:
    """Total payment for crowdsourcing ``num_pairs`` pairs."""
    return num_hits(num_pairs, pairs_per_hit) * num_workers * reward_cents_per_hit
