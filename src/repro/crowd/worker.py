"""Worker error models for the simulated crowd.

The paper's AMT measurements (Table 3) show that majority voting does not
eliminate errors, and that going from 3 to 5 workers helps only marginally on
the hard *Paper* dataset (23 % -> 21 %) while helping a lot on the easy
*Restaurant* dataset (0.8 % -> 0.2 %).  A model with i.i.d. per-worker errors
cannot produce that pattern — it implies rapid error decay with more voters.
What matches the data is *pair-correlated* difficulty: some record pairs are
intrinsically confusing (Chevrolet vs Chevron), and every worker who sees such
a pair is roughly coin-flipping.

:class:`DifficultyModel` therefore assigns each record pair a latent
per-worker error probability: a small "easy" error rate for most pairs, and a
near-0.5 error rate for a difficulty-dependent fraction of *hard* pairs.
Hardness is deterministic per pair (derived from the pair's stable seed), so
all algorithms see the same crowd behaviour — exactly like the paper's
replayed answer file.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crowd.seeding import stable_rng


@dataclass(frozen=True)
class DifficultyModel:
    """Latent per-pair worker error probabilities.

    Attributes:
        easy_error: Per-worker error probability on ordinary pairs.
        hard_fraction: Fraction of pairs that are intrinsically confusing.
        hard_error_low: Lower bound of the per-worker error probability on
            hard pairs.
        hard_error_high: Upper bound (may exceed 0.5: on such pairs the
            *majority* is more likely wrong than right, which the paper
            observes on Paper-dataset pairs).
        seed: Model-level seed mixed into every pair's randomness.
    """

    easy_error: float = 0.05
    hard_fraction: float = 0.0
    hard_error_low: float = 0.35
    hard_error_high: float = 0.55
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("easy_error", "hard_fraction", "hard_error_low", "hard_error_high"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.hard_error_low > self.hard_error_high:
            raise ValueError("hard_error_low must be <= hard_error_high")

    def error_probability(self, record_a: int, record_b: int) -> float:
        """The per-worker error probability for one record pair.

        Deterministic in ``(seed, pair)``: replaying the same pair always
        yields the same difficulty.
        """
        rng = stable_rng(self.seed, "difficulty", min(record_a, record_b),
                         max(record_a, record_b))
        if rng.random() < self.hard_fraction:
            return rng.uniform(self.hard_error_low, self.hard_error_high)
        return self.easy_error


@dataclass(frozen=True)
class WorkerPool:
    """Simulates a pool of crowd workers voting on record pairs.

    Each of ``num_workers`` votes independently given the pair's latent
    error probability.  Votes for a pair are deterministic in
    ``(difficulty.seed, pair)``, so every algorithm replays identical votes.
    """

    difficulty: DifficultyModel
    num_workers: int = 3

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {self.num_workers}")

    def votes(self, record_a: int, record_b: int, is_duplicate: bool) -> int:
        """Number of workers (of ``num_workers``) voting "duplicate".

        Args:
            record_a: First record id.
            record_b: Second record id.
            is_duplicate: Ground truth for the pair (supplied by the gold
                standard, which only the simulator — never the algorithms —
                may see).
        """
        error = self.difficulty.error_probability(record_a, record_b)
        rng = stable_rng(self.difficulty.seed, "votes", self.num_workers,
                         min(record_a, record_b), max(record_a, record_b))
        duplicate_votes = 0
        for _ in range(self.num_workers):
            wrong = rng.random() < error
            voted_duplicate = is_duplicate != wrong
            if voted_duplicate:
                duplicate_votes += 1
        return duplicate_votes

    def confidence(self, record_a: int, record_b: int, is_duplicate: bool) -> float:
        """The crowd similarity ``f_c``: fraction of workers voting duplicate."""
        return self.votes(record_a, record_b, is_duplicate) / self.num_workers
