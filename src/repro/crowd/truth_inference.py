"""Dawid-Skene truth inference over per-worker votes.

Majority voting treats every worker alike; the AMT quality-management
literature the paper cites ([29] Ipeirotis et al.) shows that jointly
estimating worker reliabilities and true labels recovers substantially
better answers from the same votes.  This module implements the binary
Dawid-Skene EM estimator:

- per worker ``w``: sensitivity ``α_w = P(votes dup | truly dup)`` and
  specificity ``β_w = P(votes non-dup | truly non-dup)``;
- per pair: posterior probability of being a duplicate;
- a class prior, re-estimated each iteration.

The posteriors plug straight into the pipeline via
:class:`InferredAnswers` (an answer-file-compatible view), so ACD can run
on inferred confidences instead of raw majority fractions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence, Tuple

from repro.datasets.schema import canonical_pair

Pair = Tuple[int, int]
Votes = Mapping[Pair, Sequence[Tuple[int, bool]]]

_CLAMP = 1e-6


def _clamped(value: float) -> float:
    return min(1.0 - _CLAMP, max(_CLAMP, value))


@dataclass(frozen=True)
class WorkerEstimate:
    """One worker's inferred confusion parameters.

    Attributes:
        sensitivity: P(votes duplicate | pair is duplicate).
        specificity: P(votes non-duplicate | pair is non-duplicate).
        num_votes: Votes this worker contributed.
    """

    sensitivity: float
    specificity: float
    num_votes: int

    @property
    def accuracy(self) -> float:
        """Balanced accuracy — a single reliability score."""
        return (self.sensitivity + self.specificity) / 2.0


@dataclass(frozen=True)
class TruthInferenceResult:
    """Output of :func:`dawid_skene`.

    Attributes:
        posteriors: Pair -> posterior probability of being a duplicate.
        workers: Worker id -> inferred confusion parameters.
        prior: Inferred duplicate class prior.
        iterations: EM iterations performed.
    """

    posteriors: Dict[Pair, float]
    workers: Dict[int, WorkerEstimate]
    prior: float
    iterations: int


def dawid_skene(
    votes: Votes,
    max_iterations: int = 50,
    tolerance: float = 1e-6,
    worker_pseudo_counts: Tuple[float, float] = (4.0, 1.0),
    prior_pseudo_counts: Tuple[float, float] = (1.0, 1.0),
) -> TruthInferenceResult:
    """Run binary Dawid-Skene EM with MAP (smoothed) parameter updates.

    Args:
        votes: Pair -> sequence of ``(worker_id, voted_duplicate)``.
        max_iterations: EM iteration cap.
        tolerance: Stop when the largest posterior change falls below this.
        worker_pseudo_counts: Beta pseudo-counts ``(correct, wrong)`` on
            each worker's sensitivity and specificity.  The default
            (4, 1) encodes "workers are probably decent" with strength 5;
            without it, EM on heavily class-imbalanced vote sets (e.g. a
            candidate set where only ~2% of pairs are true duplicates) can
            settle on a degenerate high-prior fixpoint that *underperforms*
            majority voting.
        prior_pseudo_counts: Beta pseudo-counts on the class prior.

    Returns:
        Posteriors, per-worker parameters, and the inferred prior.

    Raises:
        ValueError: On empty input, a pair with no votes, or non-positive
            pseudo-counts.
    """
    for name, (a, b) in (("worker_pseudo_counts", worker_pseudo_counts),
                         ("prior_pseudo_counts", prior_pseudo_counts)):
        if a <= 0 or b <= 0:
            raise ValueError(f"{name} must be positive, got {(a, b)}")
    if not votes:
        raise ValueError("cannot infer truth from zero pairs")
    normalized: Dict[Pair, Tuple[Tuple[int, bool], ...]] = {}
    for raw_pair, pair_votes in votes.items():
        pair = canonical_pair(*raw_pair)
        if not pair_votes:
            raise ValueError(f"pair {pair} has no votes")
        normalized[pair] = tuple(pair_votes)

    # Initialize posteriors with majority fractions.
    posteriors: Dict[Pair, float] = {}
    for pair, pair_votes in normalized.items():
        positives = sum(1 for _, vote in pair_votes if vote)
        posteriors[pair] = _clamped(positives / len(pair_votes))

    worker_ids = sorted({
        worker for pair_votes in normalized.values()
        for worker, _ in pair_votes
    })
    sensitivity = {worker: 0.8 for worker in worker_ids}
    specificity = {worker: 0.8 for worker in worker_ids}
    prior = 0.5

    iterations_run = 0
    for iteration in range(max_iterations):
        iterations_run = iteration + 1

        # M-step: worker confusion parameters and the class prior, from the
        # current soft labels.
        positive_weight = {worker: 0.0 for worker in worker_ids}
        positive_total = {worker: 0.0 for worker in worker_ids}
        negative_weight = {worker: 0.0 for worker in worker_ids}
        negative_total = {worker: 0.0 for worker in worker_ids}
        for pair, pair_votes in normalized.items():
            p_dup = posteriors[pair]
            for worker, vote in pair_votes:
                positive_total[worker] += p_dup
                negative_total[worker] += 1.0 - p_dup
                if vote:
                    positive_weight[worker] += p_dup
                else:
                    negative_weight[worker] += 1.0 - p_dup
        correct_pseudo, wrong_pseudo = worker_pseudo_counts
        for worker in worker_ids:
            sensitivity[worker] = _clamped(
                (positive_weight[worker] + correct_pseudo)
                / (positive_total[worker] + correct_pseudo + wrong_pseudo)
            )
            specificity[worker] = _clamped(
                (negative_weight[worker] + correct_pseudo)
                / (negative_total[worker] + correct_pseudo + wrong_pseudo)
            )
        prior_a, prior_b = prior_pseudo_counts
        prior = _clamped(
            (sum(posteriors.values()) + prior_a)
            / (len(posteriors) + prior_a + prior_b)
        )

        # E-step: new posteriors from the worker parameters.
        largest_change = 0.0
        for pair, pair_votes in normalized.items():
            likelihood_dup = prior
            likelihood_non = 1.0 - prior
            for worker, vote in pair_votes:
                if vote:
                    likelihood_dup *= sensitivity[worker]
                    likelihood_non *= 1.0 - specificity[worker]
                else:
                    likelihood_dup *= 1.0 - sensitivity[worker]
                    likelihood_non *= specificity[worker]
            total = likelihood_dup + likelihood_non
            updated = _clamped(likelihood_dup / total) if total > 0 else 0.5
            largest_change = max(largest_change,
                                 abs(updated - posteriors[pair]))
            posteriors[pair] = updated
        if largest_change < tolerance:
            break

    vote_counts = {worker: 0 for worker in worker_ids}
    for pair_votes in normalized.values():
        for worker, _ in pair_votes:
            vote_counts[worker] += 1
    workers = {
        worker: WorkerEstimate(
            sensitivity=sensitivity[worker],
            specificity=specificity[worker],
            num_votes=vote_counts[worker],
        )
        for worker in worker_ids
    }
    return TruthInferenceResult(
        posteriors=posteriors, workers=workers, prior=prior,
        iterations=iterations_run,
    )


class InferredAnswers:
    """Answer-file-compatible view over truth-inference posteriors.

    Lets the whole pipeline (oracle, ACD, baselines) run on Dawid-Skene
    posteriors instead of majority fractions.
    """

    def __init__(self, result: TruthInferenceResult, num_workers: int = 3):
        self._posteriors = dict(result.posteriors)
        self.num_workers = num_workers

    def __len__(self) -> int:
        return len(self._posteriors)

    def confidence(self, record_a: int, record_b: int) -> float:
        pair = canonical_pair(record_a, record_b)
        try:
            return self._posteriors[pair]
        except KeyError:
            raise KeyError(f"no inferred answer for pair {pair}") from None

    def majority_duplicate(self, record_a: int, record_b: int) -> bool:
        return self.confidence(record_a, record_b) > 0.5

    def prefetch(self, pairs: Iterable[Pair]) -> None:
        for a, b in pairs:
            self.confidence(a, b)
