"""Stable, salt-free seeding helpers.

Python's built-in ``hash`` is randomized per process, so all deterministic
per-pair randomness in the crowd simulator is derived through BLAKE2 instead.
A given ``(seed, *parts)`` tuple always produces the same stream, across
processes and platforms — this is what makes the simulated "answer file"
replayable exactly like the paper's recorded AMT answers.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

Part = Union[int, str]


def stable_seed(*parts: Part) -> int:
    """Derive a 64-bit seed from arbitrary ints/strings, deterministically."""
    digest = hashlib.blake2b(digest_size=8)
    for part in parts:
        digest.update(str(part).encode("utf-8"))
        digest.update(b"\x1f")  # separator so ("ab","c") != ("a","bc")
    return int.from_bytes(digest.digest(), "big")


def stable_rng(*parts: Part) -> random.Random:
    """A ``random.Random`` seeded stably from the given parts."""
    return random.Random(stable_seed(*parts))
