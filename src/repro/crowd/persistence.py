"""Persistence for crowd answers — the paper's file ``F`` made literal.

Section 6.1 records all AMT answers in a local file and replays them for
every method.  These helpers serialize any answer source (simulated
:class:`~repro.crowd.cache.AnswerFile`, :class:`AdaptiveAnswerFile`, or
hand-scripted answers) to JSON and load it back as a
:class:`~repro.crowd.cache.ScriptedAnswers`, so an expensive crowd run —
real or simulated — can be archived and replayed across processes.

Two durability levels:

- :func:`save_answers` / :func:`load_answers` — a one-shot snapshot of a
  finished answer set.  Writes are atomic (temp file + ``os.replace``), so
  a crash mid-write can never corrupt an existing file ``F``.
- :class:`AnswerJournal` + :class:`JournalingAnswerFile` — a write-ahead
  journal for runs *in flight*.  Every resolved crowd batch is appended as
  one fsynced line; a crash can tear at most the final line, which replay
  discards.  Re-opening the journal resumes a killed run: already-answered
  batches are served from the journal (no crowd cost), the platform's
  batch counter is fast-forwarded so fresh batches draw the same votes
  they would have drawn uninterrupted, and the resumed run's result is
  byte-identical.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.crowd.cache import ScriptedAnswers
from repro.datasets.schema import canonical_pair
from repro.runtime.atomic import atomic_write_text as _atomic_write_text

Pair = Tuple[int, int]

_FORMAT_VERSION = 1
_JOURNAL_VERSION = 1


def save_answers(answers, pairs: Iterable[Pair],
                 path: Union[str, Path]) -> int:
    """Materialize and save the answers for ``pairs`` to a JSON file.

    The write is atomic: a crash mid-save leaves any existing file at
    ``path`` untouched.

    Args:
        answers: Any answer source with ``confidence(a, b)`` and
            ``num_workers``.
        pairs: The pairs to record (typically the whole candidate set).
        path: Destination file.

    Returns:
        The number of pairs written.
    """
    records = []
    seen = set()
    for a, b in pairs:
        key = (a, b) if a < b else (b, a)
        if key in seen:
            continue
        seen.add(key)
        records.append([key[0], key[1], answers.confidence(*key)])
    records.sort()
    payload = {
        "version": _FORMAT_VERSION,
        "num_workers": answers.num_workers,
        "answers": records,
    }
    _atomic_write_text(path, json.dumps(payload))
    return len(records)


def load_answers(path: Union[str, Path]) -> ScriptedAnswers:
    """Load a saved answer file as replayable :class:`ScriptedAnswers`.

    Raises:
        ValueError: On an unknown format version, a malformed payload, a
            confidence outside [0, 1], or duplicate pairs in the payload.
    """
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or payload.get("version") != _FORMAT_VERSION:
        raise ValueError(f"{path}: not a version-{_FORMAT_VERSION} answer file")
    try:
        num_workers = int(payload["num_workers"])
        entries = [(int(a), int(b), float(confidence))
                   for a, b, confidence in payload["answers"]]
    except (KeyError, TypeError, ValueError) as error:
        raise ValueError(f"{path}: malformed answer file ({error})") from None
    confidences: Dict[Pair, float] = {}
    for a, b, confidence in entries:
        if a == b:
            raise ValueError(f"{path}: self-pair ({a}, {b}) in answer file")
        if not 0.0 <= confidence <= 1.0:
            raise ValueError(
                f"{path}: confidence for pair ({a}, {b}) outside [0, 1]: "
                f"{confidence}"
            )
        key = (a, b) if a < b else (b, a)
        if key in confidences:
            raise ValueError(f"{path}: duplicate answers for pair {key}")
        confidences[key] = confidence
    return ScriptedAnswers(confidences, num_workers=num_workers)


class AnswerJournal:
    """An append-only write-ahead journal of resolved crowd batches.

    Line 1 is a JSON header; every further line records one *complete*
    batch — its answers, which pairs came back degraded, and the fault
    counters the batch produced — written in a single ``write`` +
    ``fsync``.  A crash can therefore tear at most the final line; replay
    truncates a torn tail and raises on corruption anywhere else.

    The journal is the recovery log for :class:`JournalingAnswerFile` and
    ``run_acd(..., journal_path=...)`` / ``repro run --journal``.
    """

    def __init__(self, path: Union[str, Path],
                 num_workers: Optional[int] = None,
                 config: Optional[Mapping[str, object]] = None):
        """Open (or create) the journal at ``path``.

        Args:
            path: Journal file; created when absent, replayed when present.
            num_workers: Worker count recorded in the header of a *new*
                journal (an existing journal keeps its own).
            config: Optional run-configuration fingerprint (e.g. dataset,
                scale, seed, method) recorded in the header of a *new*
                journal.  When an existing journal carries a config and the
                caller supplies one too, they must match — resuming a run
                under different settings would silently replay answers from
                a different experiment.  Journals without a recorded config
                (older files) accept any caller config.

        Raises:
            ValueError: On a corrupt journal, a worker-count mismatch, or a
                config mismatch against an existing journal.
        """
        self.path = Path(path)
        self.num_workers = num_workers
        self.config: Optional[Dict[str, object]] = (
            dict(config) if config is not None else None
        )
        self._answers: Dict[Pair, float] = {}
        self._degraded: Set[Pair] = set()
        self._batch_faults: List[Dict[str, int]] = []
        if self.path.exists() and self.path.stat().st_size > 0:
            self._replay()
        else:
            header: Dict[str, object] = {
                "journal": _JOURNAL_VERSION, "num_workers": num_workers,
            }
            if self.config is not None:
                header["config"] = self.config
            # Atomic + directory-fsynced: a crash during journal creation
            # leaves either no journal or a complete, durable header line.
            _atomic_write_text(self.path,
                               json.dumps(header, sort_keys=True) + "\n")
        self._handle = open(self.path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def _replay(self) -> None:
        raw = self.path.read_bytes()
        records = []
        consumed = 0
        torn = False
        for line in raw.splitlines(keepends=True):
            stripped = line.strip()
            record = None
            if stripped:
                try:
                    record = json.loads(stripped.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    record = None
            if (record is None and stripped) or not line.endswith(b"\n"):
                torn = True
                break
            if record is not None:
                records.append(record)
            consumed += len(line)
        if torn:
            rest = raw[consumed:]
            # Our writer emits one newline-terminated JSON object per
            # write, so only the file's final line can legitimately be
            # torn; garbage with further lines after it means the file was
            # edited or damaged, not crashed.
            if b"\n" in rest.rstrip(b"\r\n") or not rest:
                raise ValueError(f"{self.path}: corrupt journal (mid-file)")
            with open(self.path, "r+b") as handle:
                handle.truncate(consumed)
        if not records or not isinstance(records[0], dict) \
                or records[0].get("journal") != _JOURNAL_VERSION:
            raise ValueError(
                f"{self.path}: not a version-{_JOURNAL_VERSION} answer journal"
            )
        header = records[0]
        recorded_workers = header.get("num_workers")
        if recorded_workers is not None:
            recorded_workers = int(recorded_workers)
            if (self.num_workers is not None
                    and self.num_workers != recorded_workers):
                raise ValueError(
                    f"{self.path}: journal was recorded with "
                    f"{recorded_workers} workers, not {self.num_workers}"
                )
            self.num_workers = recorded_workers
        recorded_config = header.get("config")
        if recorded_config is not None:
            if not isinstance(recorded_config, dict):
                raise ValueError(
                    f"{self.path}: malformed journal config header"
                )
            if self.config is not None and self.config != recorded_config:
                differing = sorted(
                    key for key in set(self.config) | set(recorded_config)
                    if self.config.get(key) != recorded_config.get(key)
                )
                raise ValueError(
                    f"{self.path}: journal was recorded under a different "
                    f"run configuration (differs on: {', '.join(differing)}); "
                    "resuming would replay answers from another experiment"
                )
            self.config = recorded_config
        for record in records[1:]:
            self._ingest(record)

    def _ingest(self, record) -> None:
        try:
            raw_answers = record["answers"]
            answers = {(int(a), int(b)): float(confidence)
                       for a, b, confidence in raw_answers}
            degraded = {(int(a), int(b))
                        for a, b in record.get("degraded", [])}
            faults = {str(key): int(value)
                      for key, value in record.get("faults", {}).items()}
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(
                f"{self.path}: malformed journal record ({error})"
            ) from None
        for pair, confidence in answers.items():
            if pair[0] >= pair[1]:
                raise ValueError(
                    f"{self.path}: non-canonical pair {pair} in journal"
                )
            if not 0.0 <= confidence <= 1.0:
                raise ValueError(
                    f"{self.path}: confidence for {pair} outside [0, 1]"
                )
            if pair in self._answers:
                raise ValueError(
                    f"{self.path}: pair {pair} journaled twice"
                )
        self._answers.update(answers)
        self._degraded.update(degraded)
        self._batch_faults.append(faults)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def append_batch(self, answers: Mapping[Pair, float],
                     degraded: Iterable[Pair] = (),
                     faults: Optional[Mapping[str, int]] = None) -> None:
        """Durably record one resolved batch (single write + fsync)."""
        canonical = {canonical_pair(*pair): float(confidence)
                     for pair, confidence in answers.items()}
        for pair, confidence in canonical.items():
            if not 0.0 <= confidence <= 1.0:
                raise ValueError(
                    f"confidence for {pair} must be in [0, 1], "
                    f"got {confidence}"
                )
            if pair in self._answers:
                raise ValueError(f"pair {pair} already journaled")
        degraded_set = {canonical_pair(*pair) for pair in degraded}
        fault_counts = {key: int(value)
                        for key, value in (faults or {}).items() if value}
        record: Dict[str, object] = {
            "answers": sorted([a, b, confidence]
                              for (a, b), confidence in canonical.items()),
        }
        if degraded_set:
            record["degraded"] = sorted([a, b] for a, b in degraded_set)
        if fault_counts:
            record["faults"] = fault_counts
        line = json.dumps(record, separators=(",", ":")) + "\n"
        self._handle.write(line)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._answers.update(canonical)
        self._degraded.update(degraded_set)
        self._batch_faults.append(fault_counts)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._answers)

    def __contains__(self, pair: Pair) -> bool:
        return canonical_pair(*pair) in self._answers

    @property
    def num_batches(self) -> int:
        """Complete batches on record."""
        return len(self._batch_faults)

    def get(self, pair: Pair) -> Optional[float]:
        return self._answers.get(canonical_pair(*pair))

    def answers(self) -> Dict[Pair, float]:
        """Every journaled answer (a copy)."""
        return dict(self._answers)

    def degraded_pairs(self) -> Set[Pair]:
        """Every journaled degraded pair (a copy)."""
        return set(self._degraded)

    def batch_faults(self, index: int) -> Dict[str, int]:
        """The fault counters recorded with batch ``index`` (a copy)."""
        return dict(self._batch_faults[index])

    # ------------------------------------------------------------------
    # Checkpointing / lifecycle
    # ------------------------------------------------------------------

    def checkpoint(self, path: Union[str, Path]) -> int:
        """Compact the journal into a version-1 answer file, atomically.

        The checkpoint is a plain :func:`load_answers`-compatible snapshot
        — the long-term archive format — written with the same temp-file +
        ``os.replace`` discipline as :func:`save_answers`.

        Returns:
            The number of pairs written.
        """
        if self.num_workers is None:
            raise ValueError(
                "cannot checkpoint a journal with unknown num_workers"
            )
        records = sorted([a, b, confidence]
                         for (a, b), confidence in self._answers.items())
        payload = {
            "version": _FORMAT_VERSION,
            "num_workers": self.num_workers,
            "answers": records,
        }
        _atomic_write_text(path, json.dumps(payload))
        return len(records)

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "AnswerJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class JournalingAnswerFile:
    """A write-ahead journaling wrapper around any answer source.

    Every batch resolved through the wrapped source is durably appended to
    an :class:`AnswerJournal` *before* the caller sees it; pairs already
    in the journal are served from it without touching the source.  On a
    platform-backed source the batch counter is fast-forwarded past the
    journaled batches (see
    :meth:`~repro.crowd.platform.PlatformSimulator.skip_batches`), so a
    killed run re-opened on the same journal continues exactly where it
    stopped and produces a byte-identical result — including the fault
    counters, which are replayed from the journal for recovered batches.
    """

    def __init__(self, source,
                 journal: Union[AnswerJournal, str, Path],
                 config: Optional[Mapping[str, object]] = None):
        """Args:
        source: Any answer source (``confidence`` and optionally
            ``confidence_batch`` / ``drain_fault_counters`` /
            ``degraded_pairs`` / ``skip_batches``).
        journal: An open :class:`AnswerJournal` or a path to open.
        config: Optional run-configuration fingerprint forwarded to
            :class:`AnswerJournal` (ignored when ``journal`` is already
            open); a mismatch against an existing journal's recorded
            config raises.

        Raises:
            ValueError: If the journal was recorded under a different
                worker count than the source reports, or under a
                different run configuration.
        """
        if not isinstance(journal, AnswerJournal):
            journal = AnswerJournal(journal, num_workers=source.num_workers,
                                    config=config)
        if journal.num_workers is None:
            journal.num_workers = source.num_workers
        elif journal.num_workers != source.num_workers:
            raise ValueError(
                f"journal {journal.path} was recorded with "
                f"{journal.num_workers} workers, but the answer source "
                f"reports {source.num_workers}"
            )
        self._source = source
        self.journal = journal
        #: Answers already on record when this wrapper opened the journal —
        #: the resume inheritance.
        self.resumed_answers = len(journal)
        self._resumed_batches = journal.num_batches
        self._replay_cursor = 0
        self._pending_faults: Dict[str, int] = {}
        skip = getattr(source, "skip_batches", None)
        if skip is not None and self._resumed_batches:
            skip(self._resumed_batches)

    @property
    def num_workers(self) -> int:
        return self._source.num_workers

    @property
    def pair_deterministic(self) -> bool:
        """Whether forked copies resolve pairs to identical confidences.

        Journaling adds no randomness of its own, so this is exactly the
        wrapped source's property.
        """
        return bool(getattr(self._source, "pair_deterministic", False))

    @property
    def fork_source(self):
        """The answer source forked worker processes should read.

        Workers must never write through this wrapper: the journal file
        handle duplicated by fork would interleave appends from several
        processes and corrupt the write-ahead log.  The sharded pivot
        engine forks the *underlying* source (pair-deterministic, so the
        workers compute the same confidences) and the parent replays
        their batches through this wrapper, which journals them exactly
        as a single-process run would.
        """
        return self._source

    def prime(self, answers: Mapping[Pair, float]) -> None:
        """Warm the wrapped source's memo (no journaling side effects)."""
        prime = getattr(self._source, "prime", None)
        if prime is not None:
            prime(answers)

    def __len__(self) -> int:
        return len(self.journal)

    def skip_replayed_batches(self, num_batches: int) -> None:
        """Mark the first ``num_batches`` journaled batches as consumed.

        A phase checkpoint (:mod:`repro.runtime.checkpoint`) already
        carries the cost counters of the batches it covers; when a resumed
        run restores the phase instead of replaying it, those batches'
        journaled fault counters must not be re-surfaced by
        :meth:`confidence_batch`'s replay path.  Advances the replay
        cursor without merging the skipped batches' counters (capped at
        the batches actually inherited from the journal).
        """
        if num_batches < 0:
            raise ValueError(
                f"num_batches must be >= 0, got {num_batches}"
            )
        self._replay_cursor = max(
            self._replay_cursor, min(num_batches, self._resumed_batches)
        )

    # ------------------------------------------------------------------
    # Answer-source interface
    # ------------------------------------------------------------------

    def confidence_batch(self, pairs: Sequence[Pair]) -> Dict[Pair, float]:
        requested = [canonical_pair(*pair) for pair in pairs]
        missing = sorted({pair for pair in requested
                          if pair not in self.journal})
        if missing:
            resolver = getattr(self._source, "confidence_batch", None)
            if resolver is not None:
                resolved = resolver(missing)
            else:
                resolved = {pair: self._source.confidence(*pair)
                            for pair in missing}
            degraded: Set[Pair] = set()
            degraded_source = getattr(self._source, "degraded_pairs", None)
            if degraded_source is not None:
                degraded = set(degraded_source()) & set(missing)
            faults: Dict[str, int] = {}
            drain = getattr(self._source, "drain_fault_counters", None)
            if drain is not None:
                faults = drain()
            self.journal.append_batch(
                {pair: resolved[pair] for pair in missing},
                degraded=degraded, faults=faults,
            )
            self._merge_faults(faults)
            # Anything the journal already held counts as replayed.
            self._replay_cursor = self.journal.num_batches
        elif requested and self._replay_cursor < self._resumed_batches:
            # A batch served entirely from the pre-existing journal: this
            # is the resumed run replaying what the killed run already
            # collected.  Re-surface the fault counters that batch
            # recorded so the resumed stats match the uninterrupted run.
            self._merge_faults(self.journal.batch_faults(self._replay_cursor))
            self._replay_cursor += 1
        return {pair: self.journal.get(pair) for pair in requested}

    def confidence(self, record_a: int, record_b: int) -> float:
        return self.confidence_batch([(record_a, record_b)])[
            canonical_pair(record_a, record_b)
        ]

    def majority_duplicate(self, record_a: int, record_b: int) -> bool:
        return self.confidence(record_a, record_b) > 0.5

    def prefetch(self, pairs: Iterable[Pair]) -> None:
        self.confidence_batch(list(pairs))

    # ------------------------------------------------------------------
    # Fault-surface passthrough
    # ------------------------------------------------------------------

    def _merge_faults(self, faults: Mapping[str, int]) -> None:
        for key, value in faults.items():
            if value:
                self._pending_faults[key] = (
                    self._pending_faults.get(key, 0) + value
                )

    def drain_fault_counters(self) -> Dict[str, int]:
        counters = self._pending_faults
        self._pending_faults = {}
        return counters

    def degraded_pairs(self) -> Set[Pair]:
        degraded = self.journal.degraded_pairs()
        source = getattr(self._source, "degraded_pairs", None)
        if source is not None:
            degraded |= set(source())
        return degraded

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def checkpoint(self, path: Union[str, Path]) -> int:
        """Atomically compact the journal to an answer-file snapshot."""
        return self.journal.checkpoint(path)

    def close(self) -> None:
        self.journal.close()

    def __enter__(self) -> "JournalingAnswerFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
