"""Persistence for crowd answers — the paper's file ``F`` made literal.

Section 6.1 records all AMT answers in a local file and replays them for
every method.  These helpers serialize any answer source (simulated
:class:`~repro.crowd.cache.AnswerFile`, :class:`AdaptiveAnswerFile`, or
hand-scripted answers) to JSON and load it back as a
:class:`~repro.crowd.cache.ScriptedAnswers`, so an expensive crowd run —
real or simulated — can be archived and replayed across processes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Tuple, Union

from repro.crowd.cache import ScriptedAnswers

Pair = Tuple[int, int]

_FORMAT_VERSION = 1


def save_answers(answers, pairs: Iterable[Pair],
                 path: Union[str, Path]) -> int:
    """Materialize and save the answers for ``pairs`` to a JSON file.

    Args:
        answers: Any answer source with ``confidence(a, b)`` and
            ``num_workers``.
        pairs: The pairs to record (typically the whole candidate set).
        path: Destination file.

    Returns:
        The number of pairs written.
    """
    records = []
    seen = set()
    for a, b in pairs:
        key = (a, b) if a < b else (b, a)
        if key in seen:
            continue
        seen.add(key)
        records.append([key[0], key[1], answers.confidence(*key)])
    records.sort()
    payload = {
        "version": _FORMAT_VERSION,
        "num_workers": answers.num_workers,
        "answers": records,
    }
    Path(path).write_text(json.dumps(payload))
    return len(records)


def load_answers(path: Union[str, Path]) -> ScriptedAnswers:
    """Load a saved answer file as replayable :class:`ScriptedAnswers`.

    Raises:
        ValueError: On an unknown format version or malformed payload.
    """
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or payload.get("version") != _FORMAT_VERSION:
        raise ValueError(f"{path}: not a version-{_FORMAT_VERSION} answer file")
    try:
        num_workers = int(payload["num_workers"])
        confidences = {
            (int(a), int(b)): float(confidence)
            for a, b, confidence in payload["answers"]
        }
    except (KeyError, TypeError, ValueError) as error:
        raise ValueError(f"{path}: malformed answer file ({error})") from None
    return ScriptedAnswers(confidences, num_workers=num_workers)
