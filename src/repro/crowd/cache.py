"""The crowd answer file ``F``.

Section 6.1 of the paper: *"we post all record pairs in the candidate set S
to AMT, and record the crowd's answers in a local file F. Then, during our
experiments, whenever a method requests to crowdsource a record pair, we
retrieve the answers for the pair from F ... This ensures that all methods
utilize the same set of crowdsourced results."*

:class:`AnswerFile` is the simulated equivalent: lazily generated, memoized
per-pair crowd confidences backed by a :class:`~repro.crowd.worker.WorkerPool`
and the gold standard.  One :class:`AnswerFile` is shared by all methods in a
comparison so they see byte-identical answers.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Mapping, Optional, Set, Tuple, Union

from repro.datasets.schema import GoldStandard, canonical_pair
from repro.crowd.worker import WorkerPool

Pair = Tuple[int, int]


class AnswerFile:
    """Replayable per-pair crowd answers, generated once and memoized."""

    #: Each pair's answer is a pure function of the pair (the worker pool
    #: votes through a pair-seeded RNG), so forked processes resolve the
    #: same pairs to the same confidences — the property the sharded
    #: pivot engine requires of its oracle.
    pair_deterministic = True

    def __init__(self, gold: GoldStandard, workers: WorkerPool):
        self._gold = gold
        self._workers = workers
        self._answers: Dict[Pair, float] = {}

    @property
    def num_workers(self) -> int:
        return self._workers.num_workers

    def __len__(self) -> int:
        return len(self._answers)

    def confidence(self, record_a: int, record_b: int) -> float:
        """The crowd confidence ``f_c`` for one pair (generated on first use)."""
        pair = canonical_pair(record_a, record_b)
        cached = self._answers.get(pair)
        if cached is not None:
            return cached
        truth = self._gold.is_duplicate(*pair)
        confidence = self._workers.confidence(pair[0], pair[1], truth)
        self._answers[pair] = confidence
        return confidence

    def majority_duplicate(self, record_a: int, record_b: int) -> bool:
        """Majority-vote verdict for a pair (``f_c > 0.5``)."""
        return self.confidence(record_a, record_b) > 0.5

    def prefetch(self, pairs: Iterable[Pair]) -> None:
        """Materialize answers for many pairs (e.g. the whole candidate set)."""
        for a, b in pairs:
            self.confidence(a, b)

    def prime(self, answers: Mapping[Pair, float]) -> None:
        """Warm the memo with answers already computed elsewhere.

        First write wins, exactly like :meth:`confidence` — and because
        answers are pair-deterministic, a primed value is the value the
        pool would have generated, so priming never changes any result,
        only skips regeneration (the sharded pivot engine primes the
        parent's file with the confidences its workers computed).
        """
        for raw, confidence in answers.items():
            self._answers.setdefault(canonical_pair(*raw), confidence)

    def majority_error_rate(self, pairs: Iterable[Pair]) -> float:
        """Fraction of pairs whose majority vote disagrees with the gold truth.

        This regenerates Table 3's "crowd error rate" column.
        """
        total = 0
        wrong = 0
        for a, b in pairs:
            total += 1
            verdict = self.majority_duplicate(a, b)
            if verdict != self._gold.is_duplicate(a, b):
                wrong += 1
        if total == 0:
            return 0.0
        return wrong / total


class ScriptedAnswers:
    """Explicitly scripted crowd answers.

    Implements the same interface as :class:`AnswerFile` but serves
    hand-written per-pair confidences — the form the paper's worked examples
    (Figures 2-4 and 9, Appendix B) come in.  Used by tests and pedagogic
    examples where the exact ``f_c`` of every edge matters.
    """

    #: Scripted answers are a fixed pair -> confidence table.
    pair_deterministic = True

    def __init__(self, confidences: Mapping[Pair, float],
                 num_workers: int = 1,
                 default: Optional[float] = None):
        """Args:
        confidences: Mapping from record pair to crowd confidence.
        num_workers: Reported worker count (for cost accounting).
        default: Confidence served for unscripted pairs; ``None`` makes
            an unscripted query an error, which is usually what a test
            wants.
        """
        self._confidences: Dict[Pair, float] = {}
        for raw, confidence in confidences.items():
            if not 0.0 <= confidence <= 1.0:
                raise ValueError(
                    f"confidence for {raw} must be in [0, 1], got {confidence}"
                )
            self._confidences[canonical_pair(*raw)] = confidence
        self._default = default
        self.num_workers = num_workers

    def __len__(self) -> int:
        return len(self._confidences)

    def confidence(self, record_a: int, record_b: int) -> float:
        pair = canonical_pair(record_a, record_b)
        if pair in self._confidences:
            return self._confidences[pair]
        if self._default is None:
            raise KeyError(f"no scripted answer for pair {pair}")
        return self._default

    def majority_duplicate(self, record_a: int, record_b: int) -> bool:
        return self.confidence(record_a, record_b) > 0.5

    def prefetch(self, pairs: Iterable[Pair]) -> None:
        for a, b in pairs:
            self.confidence(a, b)


class FallbackAnswers:
    """A primary answer source with a machine-score degradation fallback.

    Serves the primary's answer when it has one; when the primary raises
    :class:`KeyError` (a :class:`ScriptedAnswers` without default, or any
    source refusing a pair), serves ``fallback(pair)`` instead and flags
    the pair as *degraded*.  This is the crowd-free counterpart of the
    platform's repost-budget fallback: the pipeline always terminates,
    and the caller can see exactly which answers were machine-sourced.
    """

    def __init__(self, primary,
                 fallback: Union[Mapping[Pair, float],
                                 Callable[[Pair], float]],
                 num_workers: Optional[int] = None):
        """Args:
        primary: Any answer source with ``confidence(a, b)``.
        fallback: Pair -> machine confidence, as a mapping or callable.
        num_workers: Reported worker count (default: the primary's).
        """
        self._primary = primary
        self._fallback = (fallback if callable(fallback)
                          else fallback.__getitem__)
        self.num_workers = (num_workers if num_workers is not None
                            else primary.num_workers)
        self._degraded: Set[Pair] = set()

    def confidence(self, record_a: int, record_b: int) -> float:
        try:
            return self._primary.confidence(record_a, record_b)
        except KeyError:
            pair = canonical_pair(record_a, record_b)
            value = float(self._fallback(pair))
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"fallback confidence for {pair} must be in [0, 1], "
                    f"got {value}"
                )
            self._degraded.add(pair)
            return value

    def majority_duplicate(self, record_a: int, record_b: int) -> bool:
        return self.confidence(record_a, record_b) > 0.5

    def prefetch(self, pairs: Iterable[Pair]) -> None:
        for a, b in pairs:
            self.confidence(a, b)

    def degraded_pairs(self) -> Set[Pair]:
        """Pairs served from the fallback so far (a copy)."""
        return set(self._degraded)
