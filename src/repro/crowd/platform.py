"""A discrete-event crowdsourcing platform simulator.

The other modules of this package model *aspects* of AMT — error rates
(:mod:`worker`), named workers (:mod:`workforce`), packing (:mod:`hits`),
timing (:mod:`latency`).  This module puts them together into one engine
with the actual platform mechanics:

- a batch of record pairs is packed into HITs, each requiring
  ``assignments_per_hit`` distinct workers;
- a finite pool of concurrent workers picks up available assignments
  (never the same HIT twice — the AMT constraint), works through them with
  per-worker speeds, and submits votes drawn from the worker's reliability
  and the pair's difficulty;
- the batch completes when its last assignment is submitted; the platform
  keeps the full audit trail: per-pair attributed votes, per-worker
  earnings, per-batch timeline.

:class:`PlatformAnswerFile` adapts the platform to the answer-source
interface (implementing ``confidence_batch``), so the entire algorithm
stack runs on it unchanged while the platform accumulates vote-level data
(ready for :func:`~repro.crowd.truth_inference.dawid_skene`), money, and
wall-clock time.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.crowd.seeding import stable_rng
from repro.crowd.worker import DifficultyModel
from repro.crowd.workforce import SimulatedWorker, Workforce
from repro.datasets.schema import GoldStandard, canonical_pair

Pair = Tuple[int, int]


@dataclass(frozen=True)
class Assignment:
    """One worker's completed pass over one HIT.

    Attributes:
        hit_index: HIT index within its batch.
        worker_id: The worker who did it.
        started_at: Simulation time the worker began (seconds).
        submitted_at: Simulation time of submission.
        votes: ``(pair, voted_duplicate)`` per pair in the HIT.
    """

    hit_index: int
    worker_id: int
    started_at: float
    submitted_at: float
    votes: Tuple[Tuple[Pair, bool], ...]


@dataclass
class BatchReceipt:
    """Everything one posted batch produced.

    Attributes:
        batch_index: Sequential batch number on this platform.
        pairs: The pairs posted (canonical, sorted).
        confidences: Pair -> duplicate-vote fraction.
        assignments: The full assignment audit trail.
        posted_at: Simulation time the batch was posted.
        completed_at: Simulation time the last assignment landed.
        cost_cents: Worker payments for this batch.
    """

    batch_index: int
    pairs: Tuple[Pair, ...]
    confidences: Dict[Pair, float]
    assignments: List[Assignment]
    posted_at: float
    completed_at: float
    cost_cents: float

    @property
    def duration_seconds(self) -> float:
        return self.completed_at - self.posted_at


class PlatformSimulator:
    """The discrete-event engine.

    Args:
        workforce: The worker population; ``concurrent_workers`` of them
            are active at any time (chosen per batch, deterministically).
        gold: Ground truth (used only to synthesize votes).
        difficulty: Shared pair-difficulty model.
        pairs_per_hit: HIT packing factor.
        assignments_per_hit: Distinct workers required per HIT.
        concurrent_workers: Active worker pool size.
        mean_seconds_per_hit: Mean assignment duration (lognormal, scaled
            by a per-worker speed factor).
        reward_cents_per_hit: Payment per assignment.
        posting_overhead_seconds: Fixed time to post a batch and collect
            its results.
        seed: Engine seed (mixed with the workforce seed).
    """

    def __init__(
        self,
        workforce: Workforce,
        gold: GoldStandard,
        difficulty: DifficultyModel,
        pairs_per_hit: int = 20,
        assignments_per_hit: int = 3,
        concurrent_workers: int = 10,
        mean_seconds_per_hit: float = 90.0,
        reward_cents_per_hit: float = 2.0,
        posting_overhead_seconds: float = 120.0,
        seed: int = 0,
    ):
        if assignments_per_hit < 1:
            raise ValueError("assignments_per_hit must be >= 1")
        if concurrent_workers < assignments_per_hit:
            raise ValueError(
                "need at least assignments_per_hit concurrent workers "
                f"({concurrent_workers} < {assignments_per_hit})"
            )
        if concurrent_workers > len(workforce):
            raise ValueError(
                f"concurrent_workers {concurrent_workers} exceeds the "
                f"workforce size {len(workforce)}"
            )
        if pairs_per_hit < 1:
            raise ValueError("pairs_per_hit must be >= 1")
        self._workforce = workforce
        self._gold = gold
        self._difficulty = difficulty
        self.pairs_per_hit = pairs_per_hit
        self.assignments_per_hit = assignments_per_hit
        self.concurrent_workers = concurrent_workers
        self.mean_seconds_per_hit = mean_seconds_per_hit
        self.reward_cents_per_hit = reward_cents_per_hit
        self.posting_overhead_seconds = posting_overhead_seconds
        self.seed = seed

        self.clock_seconds = 0.0
        self.receipts: List[BatchReceipt] = []
        self._earnings: Dict[int, float] = {}
        self._worker_speed: Dict[int, float] = {}
        speed_rng = stable_rng(seed, "speeds", workforce.seed)
        for worker in workforce:
            # Per-worker pace: faster and slower workers, lognormal-ish.
            self._worker_speed[worker.worker_id] = speed_rng.uniform(0.6, 1.6)

    # ------------------------------------------------------------------
    # Posting
    # ------------------------------------------------------------------

    def post_batch(self, pairs: Iterable[Pair]) -> BatchReceipt:
        """Post one batch and simulate it to completion.

        Returns the batch receipt; the platform clock advances to the
        batch's completion (plus posting overhead).
        """
        canonical = sorted({canonical_pair(*pair) for pair in pairs})
        batch_index = len(self.receipts)
        posted_at = self.clock_seconds
        if not canonical:
            receipt = BatchReceipt(
                batch_index=batch_index, pairs=(), confidences={},
                assignments=[], posted_at=posted_at, completed_at=posted_at,
                cost_cents=0.0,
            )
            self.receipts.append(receipt)
            return receipt

        rng = stable_rng(self.seed, "batch", batch_index, len(canonical))
        hits: List[List[Pair]] = [
            canonical[start:start + self.pairs_per_hit]
            for start in range(0, len(canonical), self.pairs_per_hit)
        ]
        remaining = {index: self.assignments_per_hit
                     for index in range(len(hits))}
        done_by: Dict[int, set] = {index: set() for index in range(len(hits))}

        pool: List[SimulatedWorker] = rng.sample(
            self._workforce.workers(), self.concurrent_workers
        )
        # Event queue: (free_at_time, tiebreak, worker).
        queue: List[Tuple[float, int, SimulatedWorker]] = [
            (posted_at, index, worker) for index, worker in enumerate(pool)
        ]
        heapq.heapify(queue)

        mu = math.log(self.mean_seconds_per_hit) - 0.35 ** 2 / 2.0
        assignments: List[Assignment] = []
        completed_at = posted_at
        while queue:
            free_at, tiebreak, worker = heapq.heappop(queue)
            # First HIT still needing assignments this worker hasn't done.
            chosen: Optional[int] = None
            for index in range(len(hits)):
                if remaining[index] > 0 and worker.worker_id not in done_by[index]:
                    chosen = index
                    break
            if chosen is None:
                continue  # worker leaves; nothing left for them
            duration = (rng.lognormvariate(mu, 0.35)
                        * self._worker_speed[worker.worker_id])
            submitted_at = free_at + duration
            votes = []
            for pair in hits[chosen]:
                truth = self._gold.is_duplicate(*pair)
                error = worker.error_probability(
                    self._difficulty.error_probability(*pair)
                )
                wrong = rng.random() < error
                votes.append((pair, truth != wrong))
            assignments.append(Assignment(
                hit_index=chosen, worker_id=worker.worker_id,
                started_at=free_at, submitted_at=submitted_at,
                votes=tuple(votes),
            ))
            remaining[chosen] -= 1
            done_by[chosen].add(worker.worker_id)
            self._earnings[worker.worker_id] = (
                self._earnings.get(worker.worker_id, 0.0)
                + self.reward_cents_per_hit
            )
            completed_at = max(completed_at, submitted_at)
            heapq.heappush(queue, (submitted_at, tiebreak, worker))
            if all(count == 0 for count in remaining.values()):
                break

        if any(count > 0 for count in remaining.values()):
            raise RuntimeError(
                "batch starved: not enough distinct workers for the "
                "required assignments"
            )

        duplicate_votes: Dict[Pair, int] = {pair: 0 for pair in canonical}
        for assignment in assignments:
            for pair, vote in assignment.votes:
                if vote:
                    duplicate_votes[pair] += 1
        confidences = {
            pair: duplicate_votes[pair] / self.assignments_per_hit
            for pair in canonical
        }
        cost = len(assignments) * self.reward_cents_per_hit
        completed_at += self.posting_overhead_seconds
        receipt = BatchReceipt(
            batch_index=batch_index, pairs=tuple(canonical),
            confidences=confidences, assignments=assignments,
            posted_at=posted_at, completed_at=completed_at,
            cost_cents=cost,
        )
        self.receipts.append(receipt)
        self.clock_seconds = completed_at
        return receipt

    # ------------------------------------------------------------------
    # Audit queries
    # ------------------------------------------------------------------

    def total_cost_cents(self) -> float:
        return sum(receipt.cost_cents for receipt in self.receipts)

    def earnings(self) -> Dict[int, float]:
        """Per-worker lifetime earnings in cents (a copy)."""
        return dict(self._earnings)

    def all_votes(self) -> Dict[Pair, List[Tuple[int, bool]]]:
        """Every pair's attributed votes across all batches — ready for
        :func:`~repro.crowd.truth_inference.dawid_skene`."""
        votes: Dict[Pair, List[Tuple[int, bool]]] = {}
        for receipt in self.receipts:
            for assignment in receipt.assignments:
                for pair, vote in assignment.votes:
                    votes.setdefault(pair, []).append(
                        (assignment.worker_id, vote)
                    )
        return votes


class PlatformAnswerFile:
    """Answer-source adapter over a :class:`PlatformSimulator`.

    Implements ``confidence_batch``, so a
    :class:`~repro.crowd.oracle.CrowdOracle` posts each fresh batch to the
    platform as one batch of HITs; single-pair ``confidence`` calls become
    one-pair batches.  Previously answered pairs are served from memory
    (the platform is never asked twice).
    """

    def __init__(self, platform: PlatformSimulator):
        self._platform = platform
        self._answers: Dict[Pair, float] = {}

    @property
    def num_workers(self) -> int:
        return self._platform.assignments_per_hit

    def __len__(self) -> int:
        return len(self._answers)

    def confidence_batch(self, pairs: Sequence[Pair]) -> Dict[Pair, float]:
        fresh = [canonical_pair(*pair) for pair in pairs
                 if canonical_pair(*pair) not in self._answers]
        if fresh:
            receipt = self._platform.post_batch(fresh)
            self._answers.update(receipt.confidences)
        return {
            canonical_pair(*pair): self._answers[canonical_pair(*pair)]
            for pair in pairs
        }

    def confidence(self, record_a: int, record_b: int) -> float:
        return self.confidence_batch([(record_a, record_b)])[
            canonical_pair(record_a, record_b)
        ]

    def majority_duplicate(self, record_a: int, record_b: int) -> bool:
        return self.confidence(record_a, record_b) > 0.5

    def prefetch(self, pairs: Iterable[Pair]) -> None:
        self.confidence_batch(list(pairs))
