"""A discrete-event crowdsourcing platform simulator.

The other modules of this package model *aspects* of AMT — error rates
(:mod:`worker`), named workers (:mod:`workforce`), packing (:mod:`hits`),
timing (:mod:`latency`).  This module puts them together into one engine
with the actual platform mechanics:

- a batch of record pairs is packed into HITs, each requiring
  ``assignments_per_hit`` distinct workers;
- a finite pool of concurrent workers picks up available assignments
  (never the same HIT twice — the AMT constraint), works through them with
  per-worker speeds, and submits votes drawn from the worker's reliability
  and the pair's difficulty;
- the batch completes when its last assignment is submitted; the platform
  keeps the full audit trail: per-pair attributed votes, per-worker
  earnings, per-batch timeline.

A :class:`~repro.crowd.faults.FaultModel` makes the engine hostile:
assignments can be abandoned or time out (they requeue with exponential
backoff under a bounded repost budget), outage windows stall pickups and
submissions, replacement workers are recruited when a HIT runs out of
eligible pool workers, early quorum stops collecting votes once a HIT's
majorities are unbeatable, and HITs that exhaust their budget surface as
*degraded* pairs.  All fault randomness lives on a separate seed stream,
so a null fault model reproduces the fault-free engine byte for byte.

:class:`PlatformAnswerFile` adapts the platform to the answer-source
interface (implementing ``confidence_batch``), so the entire algorithm
stack runs on it unchanged while the platform accumulates vote-level data
(ready for :func:`~repro.crowd.truth_inference.dawid_skene`), money, and
wall-clock time.  It also carries the degradation fallback (serve the
machine score, flagged, for pairs the crowd never answered) and exposes
fault counters for :class:`~repro.crowd.stats.CrowdStats`.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.crowd.faults import (
    ABANDONED,
    FaultEvent,
    FaultModel,
    UnansweredPairError,
)
from repro.crowd.seeding import stable_rng
from repro.crowd.worker import DifficultyModel
from repro.crowd.workforce import SimulatedWorker, Workforce
from repro.datasets.schema import GoldStandard, canonical_pair

Pair = Tuple[int, int]


@dataclass(frozen=True)
class Assignment:
    """One worker's completed pass over one HIT.

    Attributes:
        hit_index: HIT index within its batch.
        worker_id: The worker who did it.
        started_at: Simulation time the worker began (seconds).
        submitted_at: Simulation time of submission.
        votes: ``(pair, voted_duplicate)`` per pair in the HIT.
    """

    hit_index: int
    worker_id: int
    started_at: float
    submitted_at: float
    votes: Tuple[Tuple[Pair, bool], ...]


@dataclass
class BatchReceipt:
    """Everything one posted batch produced.

    Attributes:
        batch_index: Sequential batch number on this platform.
        pairs: The pairs posted (canonical, sorted).
        confidences: Pair -> duplicate-vote fraction (over the votes
            actually collected; absent for unanswered pairs).
        assignments: The full assignment audit trail.
        posted_at: Simulation time the batch was posted.
        completed_at: Simulation time the last assignment landed.
        cost_cents: Worker payments for this batch.
        fault_events: Assignment failures, in observation order.
        degraded_pairs: Pairs whose HIT gave up (repost budget exhausted or
            pool starved) before collecting the full vote count.
        unanswered_pairs: The degraded subset that collected zero votes.
        reposts: Assignment slots requeued after a failure.
        quorum_stops: HITs closed early because every majority was
            mathematically unbeatable.
        recruited_workers: Replacement workers pulled in beyond the
            original pool.
    """

    batch_index: int
    pairs: Tuple[Pair, ...]
    confidences: Dict[Pair, float]
    assignments: List[Assignment]
    posted_at: float
    completed_at: float
    cost_cents: float
    fault_events: Tuple[FaultEvent, ...] = ()
    degraded_pairs: Tuple[Pair, ...] = ()
    unanswered_pairs: Tuple[Pair, ...] = ()
    reposts: int = 0
    quorum_stops: int = 0
    recruited_workers: int = 0

    @property
    def duration_seconds(self) -> float:
        return self.completed_at - self.posted_at

    def timeline(self) -> List[Tuple[float, str]]:
        """The batch's event timeline: ``(time, description)`` sorted."""
        events: List[Tuple[float, str]] = [
            (self.posted_at, f"batch {self.batch_index} posted "
                             f"({len(self.pairs)} pairs)"),
        ]
        for assignment in self.assignments:
            events.append((
                assignment.submitted_at,
                f"hit {assignment.hit_index} submitted by "
                f"worker {assignment.worker_id}",
            ))
        for fault in self.fault_events:
            events.append((
                fault.at,
                f"hit {fault.hit_index} {fault.kind} by "
                f"worker {fault.worker_id} (requeued)",
            ))
        events.append((self.completed_at,
                       f"batch {self.batch_index} collected"))
        return sorted(events, key=lambda event: event[0])


class PlatformSimulator:
    """The discrete-event engine.

    Args:
        workforce: The worker population; ``concurrent_workers`` of them
            are active at any time (chosen per batch, deterministically).
        gold: Ground truth (used only to synthesize votes).
        difficulty: Shared pair-difficulty model.
        pairs_per_hit: HIT packing factor.
        assignments_per_hit: Distinct workers required per HIT.
        concurrent_workers: Active worker pool size.
        mean_seconds_per_hit: Mean assignment duration (lognormal, scaled
            by a per-worker speed factor).
        reward_cents_per_hit: Payment per assignment.
        posting_overhead_seconds: Fixed time to post a batch and collect
            its results.
        seed: Engine seed (mixed with the workforce seed).
        fault_model: Injected failures (``None`` = the null model; the
            engine is then byte-identical to the fault-free simulator).
    """

    def __init__(
        self,
        workforce: Workforce,
        gold: GoldStandard,
        difficulty: DifficultyModel,
        pairs_per_hit: int = 20,
        assignments_per_hit: int = 3,
        concurrent_workers: int = 10,
        mean_seconds_per_hit: float = 90.0,
        reward_cents_per_hit: float = 2.0,
        posting_overhead_seconds: float = 120.0,
        seed: int = 0,
        fault_model: Optional[FaultModel] = None,
    ):
        if assignments_per_hit < 1:
            raise ValueError("assignments_per_hit must be >= 1")
        if concurrent_workers < assignments_per_hit:
            raise ValueError(
                "need at least assignments_per_hit concurrent workers "
                f"({concurrent_workers} < {assignments_per_hit})"
            )
        if concurrent_workers > len(workforce):
            raise ValueError(
                f"concurrent_workers {concurrent_workers} exceeds the "
                f"workforce size {len(workforce)}"
            )
        if pairs_per_hit < 1:
            raise ValueError("pairs_per_hit must be >= 1")
        self._workforce = workforce
        self._gold = gold
        self._difficulty = difficulty
        self.pairs_per_hit = pairs_per_hit
        self.assignments_per_hit = assignments_per_hit
        self.concurrent_workers = concurrent_workers
        self.mean_seconds_per_hit = mean_seconds_per_hit
        self.reward_cents_per_hit = reward_cents_per_hit
        self.posting_overhead_seconds = posting_overhead_seconds
        self.seed = seed
        self.fault_model = (fault_model if fault_model is not None
                            else FaultModel.none())

        self.clock_seconds = 0.0
        self.receipts: List[BatchReceipt] = []
        self._batch_offset = 0
        self._earnings: Dict[int, float] = {}
        self._worker_speed: Dict[int, float] = {}
        speed_rng = stable_rng(seed, "speeds", workforce.seed)
        for worker in workforce:
            # Per-worker pace: faster and slower workers, lognormal-ish.
            self._worker_speed[worker.worker_id] = speed_rng.uniform(0.6, 1.6)

    # ------------------------------------------------------------------
    # Posting
    # ------------------------------------------------------------------

    def skip_batches(self, count: int) -> None:
        """Advance the batch counter without posting (crash-safe resume).

        A resumed run replays its first ``count`` batches from a journal
        instead of re-posting them; skipping keeps the per-batch seed
        stream aligned, so the run's *fresh* batches draw the same votes
        they would have drawn uninterrupted.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self._batch_offset += count

    def post_batch(self, pairs: Iterable[Pair]) -> BatchReceipt:
        """Post one batch and simulate it to completion.

        Returns the batch receipt; the platform clock advances to the
        batch's completion (plus posting overhead).  Under a non-null
        fault model, failed assignments are requeued with backoff; pairs
        of HITs that exhaust their repost budget are reported in
        ``degraded_pairs`` / ``unanswered_pairs`` instead of raising.
        """
        canonical = sorted({canonical_pair(*pair) for pair in pairs})
        batch_index = self._batch_offset + len(self.receipts)
        posted_at = self.clock_seconds
        if not canonical:
            receipt = BatchReceipt(
                batch_index=batch_index, pairs=(), confidences={},
                assignments=[], posted_at=posted_at, completed_at=posted_at,
                cost_cents=0.0,
            )
            self.receipts.append(receipt)
            return receipt

        fault = self.fault_model
        faulty = not fault.is_null
        # Fault decisions draw from their own stream: the vote/timing
        # stream below is untouched, so a null model replays byte-for-byte.
        fault_rng = (stable_rng(self.seed, "faults", batch_index,
                                len(canonical)) if faulty else None)

        rng = stable_rng(self.seed, "batch", batch_index, len(canonical))
        hits: List[List[Pair]] = [
            canonical[start:start + self.pairs_per_hit]
            for start in range(0, len(canonical), self.pairs_per_hit)
        ]
        num_hits = len(hits)
        remaining = {index: self.assignments_per_hit
                     for index in range(num_hits)}
        done_by: Dict[int, set] = {index: set() for index in range(num_hits)}
        available_at = {index: posted_at for index in range(num_hits)}
        reposts = {index: 0 for index in range(num_hits)}
        collected = {index: 0 for index in range(num_hits)}
        given_up: Set[int] = set()
        duplicate_votes: Dict[Pair, int] = {pair: 0 for pair in canonical}
        fault_events: List[FaultEvent] = []
        quorum_stops = 0
        recruited = 0

        pool: List[SimulatedWorker] = rng.sample(
            self._workforce.workers(), self.concurrent_workers
        )
        pool_ids = {worker.worker_id for worker in pool}
        # Event queue: (free_at_time, tiebreak, worker).
        queue: List[Tuple[float, int, SimulatedWorker]] = [
            (posted_at, index, worker) for index, worker in enumerate(pool)
        ]
        heapq.heapify(queue)
        next_tiebreak = len(pool)

        mu = math.log(self.mean_seconds_per_hit) - 0.35 ** 2 / 2.0
        assignments: List[Assignment] = []
        completed_at = posted_at
        while queue:
            free_at, tiebreak, worker = heapq.heappop(queue)
            started_at = (fault.delay_past_outage(free_at) if faulty
                          else free_at)
            # First HIT still needing assignments this worker hasn't done
            # and whose backoff (if any) has elapsed.
            chosen: Optional[int] = None
            wait_until: Optional[float] = None
            for index in range(num_hits):
                if (remaining[index] > 0
                        and worker.worker_id not in done_by[index]):
                    if available_at[index] <= started_at:
                        chosen = index
                        break
                    if wait_until is None or available_at[index] < wait_until:
                        wait_until = available_at[index]
            if chosen is None:
                if wait_until is not None:
                    # Every open HIT is backing off: wait for the earliest.
                    heapq.heappush(queue, (wait_until, tiebreak, worker))
                continue  # worker leaves; nothing left for them
            duration = (rng.lognormvariate(mu, 0.35)
                        * self._worker_speed[worker.worker_id])
            failure = (fault.assignment_failure(fault_rng, duration)
                       if faulty else None)
            if failure is not None:
                kind, elapsed = failure
                failed_at = started_at + elapsed
                fault_events.append(FaultEvent(
                    batch_index=batch_index, hit_index=chosen,
                    worker_id=worker.worker_id, kind=kind, at=failed_at,
                ))
                done_by[chosen].add(worker.worker_id)
                completed_at = max(completed_at, failed_at)
                heapq.heappush(queue, (failed_at, tiebreak, worker))
                reposts[chosen] += 1
                if reposts[chosen] > fault.max_reposts:
                    given_up.add(chosen)
                    remaining[chosen] = 0
                    if all(count == 0 for count in remaining.values()):
                        break
                    continue
                available_at[chosen] = (
                    failed_at + fault.backoff_seconds(reposts[chosen])
                )
                if not pool_ids - done_by[chosen]:
                    # No pool worker may retake this HIT: recruit a
                    # replacement from the wider workforce (stable order).
                    replacement = next(
                        (candidate for candidate in self._workforce.workers()
                         if candidate.worker_id not in pool_ids), None)
                    if replacement is None:
                        given_up.add(chosen)
                        remaining[chosen] = 0
                        if all(count == 0 for count in remaining.values()):
                            break
                    else:
                        pool_ids.add(replacement.worker_id)
                        recruited += 1
                        heapq.heappush(queue, (available_at[chosen],
                                               next_tiebreak, replacement))
                        next_tiebreak += 1
                continue
            submitted_at = started_at + duration
            if faulty:
                submitted_at = fault.delay_past_outage(submitted_at)
            votes = []
            for pair in hits[chosen]:
                truth = self._gold.is_duplicate(*pair)
                error = worker.error_probability(
                    self._difficulty.error_probability(*pair)
                )
                wrong = rng.random() < error
                voted_duplicate = truth != wrong
                if voted_duplicate:
                    duplicate_votes[pair] += 1
                votes.append((pair, voted_duplicate))
            assignments.append(Assignment(
                hit_index=chosen, worker_id=worker.worker_id,
                started_at=started_at, submitted_at=submitted_at,
                votes=tuple(votes),
            ))
            remaining[chosen] -= 1
            collected[chosen] += 1
            done_by[chosen].add(worker.worker_id)
            self._earnings[worker.worker_id] = (
                self._earnings.get(worker.worker_id, 0.0)
                + self.reward_cents_per_hit
            )
            completed_at = max(completed_at, submitted_at)
            heapq.heappush(queue, (submitted_at, tiebreak, worker))
            if (faulty and fault.early_quorum and remaining[chosen] > 0
                    and self._hit_decided(hits[chosen], duplicate_votes,
                                          collected[chosen])):
                quorum_stops += 1
                remaining[chosen] = 0
            if all(count == 0 for count in remaining.values()):
                break

        starved = [index for index in range(num_hits) if remaining[index] > 0]
        if starved:
            if not faulty:
                raise RuntimeError(
                    "batch starved: not enough distinct workers for the "
                    "required assignments"
                )
            for index in starved:
                given_up.add(index)
                remaining[index] = 0

        confidences: Dict[Pair, float] = {}
        degraded: List[Pair] = []
        unanswered: List[Pair] = []
        for index, hit_pairs in enumerate(hits):
            if collected[index] == 0:
                unanswered.extend(hit_pairs)
                degraded.extend(hit_pairs)
                continue
            if (index in given_up
                    and collected[index] < self.assignments_per_hit):
                degraded.extend(hit_pairs)
            for pair in hit_pairs:
                confidences[pair] = duplicate_votes[pair] / collected[index]
        cost = len(assignments) * self.reward_cents_per_hit
        completed_at += self.posting_overhead_seconds
        receipt = BatchReceipt(
            batch_index=batch_index, pairs=tuple(canonical),
            confidences=confidences, assignments=assignments,
            posted_at=posted_at, completed_at=completed_at,
            cost_cents=cost,
            fault_events=tuple(fault_events),
            degraded_pairs=tuple(sorted(degraded)),
            unanswered_pairs=tuple(sorted(unanswered)),
            reposts=sum(reposts.values()),
            quorum_stops=quorum_stops,
            recruited_workers=recruited,
        )
        self.receipts.append(receipt)
        self.clock_seconds = completed_at
        return receipt

    def _hit_decided(self, hit_pairs: Sequence[Pair],
                     duplicate_votes: Mapping[Pair, int],
                     collected: int) -> bool:
        """Is every pair's majority verdict already unbeatable?

        With ``planned = assignments_per_hit`` votes intended, a pair is
        decided when its duplicate votes already exceed ``planned / 2``
        (duplicate majority secured) or cannot reach it even if every
        outstanding vote says duplicate (non-duplicate secured).  Stopping
        early never flips the verdict the full collection would reach.
        """
        planned = self.assignments_per_hit
        for pair in hit_pairs:
            dup = duplicate_votes[pair]
            if 2 * dup > planned:
                continue
            if 2 * (dup + planned - collected) <= planned:
                continue
            return False
        return True

    # ------------------------------------------------------------------
    # Audit queries
    # ------------------------------------------------------------------

    def total_cost_cents(self) -> float:
        return sum(receipt.cost_cents for receipt in self.receipts)

    def fault_events(self) -> List[FaultEvent]:
        """Every assignment failure across all batches, in order."""
        return [event for receipt in self.receipts
                for event in receipt.fault_events]

    def degraded_pairs(self) -> Set[Pair]:
        """Pairs that ever came back degraded (a copy)."""
        return {pair for receipt in self.receipts
                for pair in receipt.degraded_pairs}

    def earnings(self) -> Dict[int, float]:
        """Per-worker lifetime earnings in cents (a copy)."""
        return dict(self._earnings)

    def all_votes(self) -> Dict[Pair, List[Tuple[int, bool]]]:
        """Every pair's attributed votes across all batches — ready for
        :func:`~repro.crowd.truth_inference.dawid_skene`."""
        votes: Dict[Pair, List[Tuple[int, bool]]] = {}
        for receipt in self.receipts:
            for assignment in receipt.assignments:
                for pair, vote in assignment.votes:
                    votes.setdefault(pair, []).append(
                        (assignment.worker_id, vote)
                    )
        return votes


#: A degradation fallback: per-pair machine confidence, as a mapping or a
#: callable (e.g. ``candidates.score`` wrapped over a pair).
Fallback = Union[Mapping[Pair, float], Callable[[Pair], float]]


def _as_fallback(fallback: Optional[Fallback]):
    if fallback is None or callable(fallback):
        return fallback
    return fallback.__getitem__


_FAULT_COUNTER_KEYS = ("retries", "timeouts", "abandonments",
                       "degraded_pairs", "quorum_stops")


class PlatformAnswerFile:
    """Answer-source adapter over a :class:`PlatformSimulator`.

    Implements ``confidence_batch``, so a
    :class:`~repro.crowd.oracle.CrowdOracle` posts each fresh batch to the
    platform as one batch of HITs; single-pair ``confidence`` calls become
    one-pair batches.  Previously answered pairs are served from memory
    (the platform is never asked twice).

    Args:
        platform: The backing simulator.
        fallback: Degradation policy for pairs the crowd never answered
            (repost budget exhausted with zero votes): a mapping or
            callable from pair to machine confidence.  Without one, an
            unanswered pair raises
            :class:`~repro.crowd.faults.UnansweredPairError`.
    """

    def __init__(self, platform: PlatformSimulator,
                 fallback: Optional[Fallback] = None):
        self._platform = platform
        self._fallback = _as_fallback(fallback)
        self._answers: Dict[Pair, float] = {}
        self._degraded: Set[Pair] = set()
        self._pending_faults: Dict[str, int] = dict.fromkeys(
            _FAULT_COUNTER_KEYS, 0)

    @property
    def platform(self) -> PlatformSimulator:
        """The backing simulator (for audit queries)."""
        return self._platform

    @property
    def num_workers(self) -> int:
        return self._platform.assignments_per_hit

    def __len__(self) -> int:
        return len(self._answers)

    def skip_batches(self, count: int) -> None:
        """Fast-forward the platform's batch counter (crash-safe resume);
        see :meth:`PlatformSimulator.skip_batches`."""
        self._platform.skip_batches(count)

    def confidence_batch(self, pairs: Sequence[Pair]) -> Dict[Pair, float]:
        fresh = [canonical_pair(*pair) for pair in pairs
                 if canonical_pair(*pair) not in self._answers]
        if fresh:
            receipt = self._platform.post_batch(fresh)
            self._answers.update(receipt.confidences)
            self._degraded.update(receipt.degraded_pairs)
            for pair in receipt.unanswered_pairs:
                self._answers[pair] = self._fallback_confidence(pair)
            self._pending_faults["retries"] += receipt.reposts
            for event in receipt.fault_events:
                key = ("abandonments" if event.kind == ABANDONED
                       else "timeouts")
                self._pending_faults[key] += 1
            self._pending_faults["degraded_pairs"] += len(
                receipt.degraded_pairs)
            self._pending_faults["quorum_stops"] += receipt.quorum_stops
        return {
            canonical_pair(*pair): self._answers[canonical_pair(*pair)]
            for pair in pairs
        }

    def _fallback_confidence(self, pair: Pair) -> float:
        if self._fallback is None:
            raise UnansweredPairError(pair)
        try:
            value = float(self._fallback(pair))
        except KeyError:
            raise UnansweredPairError(pair) from None
        if not 0.0 <= value <= 1.0:
            raise ValueError(
                f"fallback confidence for {pair} must be in [0, 1], "
                f"got {value}"
            )
        return value

    def degraded_pairs(self) -> Set[Pair]:
        """Pairs served degraded (partial votes or machine fallback)."""
        return set(self._degraded)

    def drain_fault_counters(self) -> Dict[str, int]:
        """Fault counters accumulated since the last drain (then reset).

        :class:`~repro.crowd.oracle.CrowdOracle` calls this after every
        batch and folds the counts into its
        :class:`~repro.crowd.stats.CrowdStats`.
        """
        counters = {key: value for key, value in
                    self._pending_faults.items() if value}
        self._pending_faults = dict.fromkeys(_FAULT_COUNTER_KEYS, 0)
        return counters

    def confidence(self, record_a: int, record_b: int) -> float:
        return self.confidence_batch([(record_a, record_b)])[
            canonical_pair(record_a, record_b)
        ]

    def majority_duplicate(self, record_a: int, record_b: int) -> bool:
        return self.confidence(record_a, record_b) > 0.5

    def prefetch(self, pairs: Iterable[Pair]) -> None:
        self.confidence_batch(list(pairs))
