"""Cluster-based HIT generation (CrowdER's cost trick).

Wang et al.'s CrowdER [46] observed that a HIT showing *k records* (asking
the worker to group them) elicits judgements on all k(k-1)/2 pairs at the
price of one HIT — far cheaper per pair than pair-based HITs, as long as
the records packed together actually have candidate pairs among them.  The
packing problem (cover all candidate pairs with few size-k record groups)
is NP-hard; CrowdER uses a greedy heuristic, reproduced here:

1. order candidate pairs by descending machine similarity;
2. for each not-yet-covered pair, try to place both records into an open
   group with spare capacity that already contains one of them (or seed a
   new group);
3. a pair is covered once both its records share a group.

:func:`cluster_based_hits` returns the groups plus coverage bookkeeping;
:func:`pairs_covered_by` derives which candidate pairs each group settles.
The companion benchmark (``benchmarks/test_ext_cluster_hits.py``) measures
the HIT savings against pair-based packing on the paper's datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.datasets.schema import canonical_pair
from repro.pruning.candidate import CandidateSet

Pair = Tuple[int, int]


@dataclass(frozen=True)
class RecordGroup:
    """One cluster-based HIT: a set of records shown together."""

    group_id: int
    records: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.records)


@dataclass(frozen=True)
class ClusterHitPlan:
    """The output of cluster-based HIT generation.

    Attributes:
        groups: The record groups (one HIT each).
        covered_pairs: Candidate pairs settled by some group.
        uncovered_pairs: Candidate pairs no group covers (they fall back to
            pair-based HITs).
    """

    groups: Tuple[RecordGroup, ...]
    covered_pairs: Tuple[Pair, ...]
    uncovered_pairs: Tuple[Pair, ...]

    @property
    def num_hits(self) -> int:
        return len(self.groups)

    def coverage(self) -> float:
        total = len(self.covered_pairs) + len(self.uncovered_pairs)
        return len(self.covered_pairs) / total if total else 1.0


def cluster_based_hits(
    candidates: CandidateSet,
    records_per_hit: int = 10,
    max_hits_per_record: int = 4,
) -> ClusterHitPlan:
    """Greedily pack candidate pairs into record groups.

    Args:
        candidates: The candidate set to cover.
        records_per_hit: Group capacity ``k`` (CrowdER uses ~10).
        max_hits_per_record: Cap on how many groups one record may join
            (prevents hub records from bloating the plan).

    Returns:
        The :class:`ClusterHitPlan`.
    """
    if records_per_hit < 2:
        raise ValueError(f"records_per_hit must be >= 2, got {records_per_hit}")
    if max_hits_per_record < 1:
        raise ValueError(
            f"max_hits_per_record must be >= 1, got {max_hits_per_record}"
        )

    groups: List[Set[int]] = []
    membership: Dict[int, List[int]] = {}
    covered: Set[Pair] = set()

    def appearances(record: int) -> int:
        return len(membership.get(record, ()))

    def join(group_index: int, record: int) -> None:
        group = groups[group_index]
        for other in group:
            covered.add(canonical_pair(record, other))
        group.add(record)
        membership.setdefault(record, []).append(group_index)

    for a, b in candidates.sorted_by_score(descending=True):
        pair = canonical_pair(a, b)
        if pair in covered:
            continue
        # Prefer an open group already holding one endpoint.
        placed = False
        for anchor, joiner in ((a, b), (b, a)):
            if placed:
                break
            for group_index in membership.get(anchor, ()):
                if (len(groups[group_index]) < records_per_hit
                        and appearances(joiner) < max_hits_per_record):
                    join(group_index, joiner)
                    placed = True
                    break
        if placed:
            continue
        # Seed a new group with both records, if their budgets allow.
        if (appearances(a) < max_hits_per_record
                and appearances(b) < max_hits_per_record):
            groups.append(set())
            group_index = len(groups) - 1
            join(group_index, a)
            join(group_index, b)

    covered_pairs = tuple(sorted(
        pair for pair in candidates.pairs if pair in covered
    ))
    uncovered_pairs = tuple(sorted(
        pair for pair in candidates.pairs if pair not in covered
    ))
    return ClusterHitPlan(
        groups=tuple(
            RecordGroup(group_id=index, records=tuple(sorted(group)))
            for index, group in enumerate(groups)
        ),
        covered_pairs=covered_pairs,
        uncovered_pairs=uncovered_pairs,
    )


def pairs_covered_by(group: RecordGroup,
                     candidates: CandidateSet) -> List[Pair]:
    """The candidate pairs a single group settles (its in-group candidate
    pairs — non-candidate in-group pairs carry no information the pipeline
    uses)."""
    members = group.records
    out: List[Pair] = []
    for i, a in enumerate(members):
        for b in members[i + 1:]:
            pair = canonical_pair(a, b)
            if pair in candidates:
                out.append(pair)
    return out


def hit_cost_comparison(
    candidates: CandidateSet,
    records_per_hit: int = 10,
    pairs_per_hit: int = 20,
    max_hits_per_record: int = 4,
) -> Dict[str, float]:
    """Pair-based vs cluster-based HIT cost for covering a candidate set.

    Two cost views are reported:

    - **HIT counts** — ``pair_based_hits`` vs ``cluster_based_hits``
      (groups plus pair-based fallback HITs for the uncovered remainder).
    - **Worker reading effort** — records displayed to a worker per pass
      over the task: a pair-based HIT shows 2 records per pair
      (``2 * |S|`` total), a cluster-based group shows its ``|group|``
      records once while settling all its in-group pairs.  This is the
      axis on which CrowdER's trick wins: the same pair coverage at a
      fraction of the records a worker must read.

    Also returns ``coverage`` — the fraction of candidate pairs the groups
    settle directly.
    """
    import math

    plan = cluster_based_hits(candidates, records_per_hit=records_per_hit,
                              max_hits_per_record=max_hits_per_record)
    pair_based = math.ceil(len(candidates) / pairs_per_hit)
    fallback = math.ceil(len(plan.uncovered_pairs) / pairs_per_hit)
    pair_based_records = 2.0 * len(candidates)
    cluster_records = (
        float(sum(len(group) for group in plan.groups))
        + 2.0 * len(plan.uncovered_pairs)
    )
    return {
        "pair_based_hits": float(pair_based),
        "cluster_based_hits": float(plan.num_hits + fallback),
        "groups": float(plan.num_hits),
        "fallback_hits": float(fallback),
        "pair_based_records_shown": pair_based_records,
        "cluster_based_records_shown": cluster_records,
        "coverage": plan.coverage(),
    }
